(* Golden regression tests: exact final load vectors for deterministic
   configurations (and seed-pinned randomized ones), captured from a
   verified build.  Any change to these values means the dynamics of an
   algorithm, the engine, the port numbering of a generator, or the PRNG
   stream has changed — which must be a deliberate, documented decision,
   never an accident of refactoring. *)

let check_loads name expected actual = Alcotest.(check (array int)) name expected actual

let run g balancer ~total ~steps =
  let n = Graphs.Graph.n g in
  let init = Core.Loads.point_mass ~n ~total in
  (Core.Engine.run ~graph:g ~balancer ~init ~steps ()).Core.Engine.final_loads

let test_rotor_router_cycle8 () =
  let g = Graphs.Gen.cycle 8 in
  check_loads "rotor-router cycle(8), 64 tokens, 10 steps"
    [| 11; 11; 8; 6; 5; 6; 7; 10 |]
    (run g (Core.Rotor_router.make g ~self_loops:2) ~total:64 ~steps:10)

let test_send_round_torus33 () =
  let g = Graphs.Gen.torus [ 3; 3 ] in
  check_loads "send-round torus(3x3), 100 tokens, 12 steps"
    [| 16; 15; 15; 15; 6; 6; 15; 6; 6 |]
    (run g (Core.Send_round.make g ~self_loops:8) ~total:100 ~steps:12)

let test_rotor_router_star_torus33 () =
  let g = Graphs.Gen.torus [ 3; 3 ] in
  check_loads "rotor-router* torus(3x3), 100 tokens, 12 steps"
    [| 11; 12; 12; 11; 11; 11; 10; 11; 11 |]
    (run g (Core.Rotor_router_star.make g) ~total:100 ~steps:12)

let test_send_floor_hypercube3 () =
  let g = Graphs.Gen.hypercube 3 in
  check_loads "send-floor Q3, 50 tokens, 15 steps"
    [| 8; 6; 6; 6; 6; 6; 6; 6 |]
    (run g (Core.Send_floor.make g ~self_loops:3) ~total:50 ~steps:15)

let test_random_extra_seeded () =
  (* Pins both the algorithm and the SplitMix64 stream. *)
  let g = Graphs.Gen.hypercube 3 in
  check_loads "random-extra Q3 seed 7, 50 tokens, 15 steps"
    [| 6; 6; 6; 7; 7; 6; 6; 6 |]
    (run g
       (Baselines.Random_extra.make (Prng.Splitmix.create 7) g ~self_loops:3)
       ~total:50 ~steps:15)

let test_mimic_torus33 () =
  let g = Graphs.Gen.torus [ 3; 3 ] in
  let init = Core.Loads.point_mass ~n:9 ~total:100 in
  let balancer = Baselines.Mimic.make g ~self_loops:4 ~init in
  check_loads "mimic torus(3x3), 100 tokens, 12 steps"
    [| 12; 10; 10; 10; 12; 12; 10; 12; 12 |]
    (Core.Engine.run ~graph:g ~balancer ~init ~steps:12 ()).Core.Engine.final_loads

let test_splitmix_stream_golden () =
  (* The raw PRNG stream itself: five pinned draws. *)
  let g = Prng.Splitmix.create 42 in
  Alcotest.(check (list int))
    "splitmix(42) int-100 stream"
    [ 70; 97; 85; 91; 89 ]
    (List.init 5 (fun _ -> Prng.Splitmix.int g 100))

let () =
  (* Guard: if the pinned PRNG stream ever changes, regenerate ALL seeded
     goldens, not just the failing one. *)
  Alcotest.run "goldens"
    [
      ( "deterministic dynamics",
        [
          Alcotest.test_case "rotor-router cycle8" `Quick test_rotor_router_cycle8;
          Alcotest.test_case "send-round torus33" `Quick test_send_round_torus33;
          Alcotest.test_case "rotor-router* torus33" `Quick
            test_rotor_router_star_torus33;
          Alcotest.test_case "send-floor Q3" `Quick test_send_floor_hypercube3;
          Alcotest.test_case "mimic torus33" `Quick test_mimic_torus33;
        ] );
      ( "seeded randomness",
        [
          Alcotest.test_case "random-extra seed 7" `Quick test_random_extra_seeded;
          Alcotest.test_case "splitmix stream" `Quick test_splitmix_stream_golden;
        ] );
    ]
