(* Tests for the SplitMix64 generator and sampling utilities. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_determinism () =
  let a = Prng.Splitmix.create 42 and b = Prng.Splitmix.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Splitmix.next64 a) (Prng.Splitmix.next64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.Splitmix.create 1 and b = Prng.Splitmix.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Splitmix.next64 a = Prng.Splitmix.next64 b then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Prng.Splitmix.create 7 in
  ignore (Prng.Splitmix.next64 a);
  let b = Prng.Splitmix.copy a in
  let xa = Prng.Splitmix.next64 a in
  let xb = Prng.Splitmix.next64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Prng.Splitmix.next64 a);
  (* advancing a further must not affect b *)
  let b2 = Prng.Splitmix.copy b in
  Alcotest.(check int64) "b unaffected" (Prng.Splitmix.next64 b) (Prng.Splitmix.next64 b2)

let test_split_diverges () =
  let a = Prng.Splitmix.create 9 in
  let b = Prng.Splitmix.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Splitmix.next64 a = Prng.Splitmix.next64 b then incr same
  done;
  check_bool "split stream differs" true (!same < 4)

let test_int_bounds () =
  let g = Prng.Splitmix.create 3 in
  for _ = 1 to 10_000 do
    let v = Prng.Splitmix.int g 7 in
    check_bool "in range" true (v >= 0 && v < 7)
  done

let test_int_rejects_bad_bound () =
  let g = Prng.Splitmix.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Prng.Splitmix.int g 0))

let test_int_in_range () =
  let g = Prng.Splitmix.create 4 in
  for _ = 1 to 1000 do
    let v = Prng.Splitmix.int_in g (-5) 5 in
    check_bool "in inclusive range" true (v >= -5 && v <= 5)
  done;
  check_int "singleton range" 3 (Prng.Splitmix.int_in g 3 3)

let test_int_uniformity () =
  let g = Prng.Splitmix.create 5 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.Splitmix.int g 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (abs (c - (n / 10)) < n / 50))
    counts

let test_float_range () =
  let g = Prng.Splitmix.create 6 in
  for _ = 1 to 10_000 do
    let v = Prng.Splitmix.float g 2.5 in
    check_bool "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_bernoulli_extremes () =
  let g = Prng.Splitmix.create 8 in
  for _ = 1 to 100 do
    check_bool "p=0 is false" false (Prng.Splitmix.bernoulli g 0.0);
    check_bool "p=1 is true" true (Prng.Splitmix.bernoulli g 1.0)
  done

let test_bernoulli_rate () =
  let g = Prng.Splitmix.create 11 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Prng.Splitmix.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_bool (Printf.sprintf "rate %.3f near 0.3" rate) true (abs_float (rate -. 0.3) < 0.01)

let test_bool_rate () =
  let g = Prng.Splitmix.create 12 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Prng.Splitmix.bool g then incr hits
  done;
  check_bool "fair coin" true (abs (!hits - (n / 2)) < n / 50)

(* --- Sample --- *)

let test_shuffle_is_permutation () =
  let g = Prng.Splitmix.create 13 in
  let a = Array.init 100 (fun i -> i) in
  Prng.Sample.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_permutation_valid () =
  let g = Prng.Splitmix.create 14 in
  let p = Prng.Sample.permutation g 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "valid permutation" (Array.init 50 (fun i -> i)) sorted

let test_choice_singleton () =
  let g = Prng.Splitmix.create 15 in
  check_int "only element" 7 (Prng.Sample.choice g [| 7 |])

let test_choice_empty () =
  let g = Prng.Splitmix.create 15 in
  Alcotest.check_raises "empty" (Invalid_argument "Sample.choice: empty array") (fun () ->
      ignore (Prng.Sample.choice g [||]))

let test_sample_without_replacement () =
  let g = Prng.Splitmix.create 16 in
  let s = Prng.Sample.sample_without_replacement g 10 100 in
  check_int "size" 10 (Array.length s);
  let seen = Hashtbl.create 10 in
  Array.iter
    (fun v ->
      check_bool "in range" true (v >= 0 && v < 100);
      check_bool "distinct" false (Hashtbl.mem seen v);
      Hashtbl.add seen v ())
    s

let test_sample_full () =
  let g = Prng.Splitmix.create 17 in
  let s = Prng.Sample.sample_without_replacement g 20 20 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "all elements" (Array.init 20 (fun i -> i)) sorted

let test_multinomial_conserves () =
  let g = Prng.Splitmix.create 18 in
  let occ = Prng.Sample.multinomial_tokens g ~tokens:1234 ~bins:17 in
  check_int "bins" 17 (Array.length occ);
  check_int "total conserved" 1234 (Array.fold_left ( + ) 0 occ)

let test_geometric_split_conserves () =
  let g = Prng.Splitmix.create 19 in
  for total = 0 to 50 do
    let parts = 1 + (total mod 7) in
    let s = Prng.Sample.geometric_split g ~total ~parts in
    check_int "parts" parts (Array.length s);
    check_int "total conserved" total (Array.fold_left ( + ) 0 s);
    Array.iter (fun x -> check_bool "non-negative" true (x >= 0)) s
  done

let prop_int_in_range =
  QCheck.Test.make ~name:"Splitmix.int always in range" ~count:1000
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.Splitmix.create seed in
      let v = Prng.Splitmix.int g bound in
      v >= 0 && v < bound)

let prop_split_conserves =
  QCheck.Test.make ~name:"geometric_split conserves mass" ~count:500
    QCheck.(pair (int_range 0 500) (int_range 1 50))
    (fun (total, parts) ->
      let g = Prng.Splitmix.create (total + (parts * 1000)) in
      let s = Prng.Sample.geometric_split g ~total ~parts in
      Array.fold_left ( + ) 0 s = total && Array.for_all (fun x -> x >= 0) s)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_bad_bound;
          Alcotest.test_case "int_in range" `Quick test_int_in_range;
          Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Slow test_bernoulli_rate;
          Alcotest.test_case "bool rate" `Slow test_bool_rate;
        ] );
      ( "sample",
        [
          Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "permutation valid" `Quick test_permutation_valid;
          Alcotest.test_case "choice singleton" `Quick test_choice_singleton;
          Alcotest.test_case "choice empty" `Quick test_choice_empty;
          Alcotest.test_case "sample without replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "sample full range" `Quick test_sample_full;
          Alcotest.test_case "multinomial conserves" `Quick test_multinomial_conserves;
          Alcotest.test_case "geometric split conserves" `Quick
            test_geometric_split_conserves;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_int_in_range;
          QCheck_alcotest.to_alcotest prop_split_conserves;
        ] );
    ]
