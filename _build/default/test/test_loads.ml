(* Tests for load vectors and initial distributions. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_totals () =
  check_int "total" 10 (Core.Loads.total [| 1; 2; 3; 4 |]);
  check_int "total empty-ish" 0 (Core.Loads.total [| 0; 0 |]);
  check_int "max" 4 (Core.Loads.max_load [| 1; 4; 2 |]);
  check_int "min" 1 (Core.Loads.min_load [| 1; 4; 2 |])

let test_discrepancy () =
  check_int "spread" 3 (Core.Loads.discrepancy [| 1; 4; 2 |]);
  check_int "flat" 0 (Core.Loads.discrepancy [| 5; 5; 5 |]);
  check_int "negative loads" 7 (Core.Loads.discrepancy [| -3; 4 |])

let test_average_balancedness () =
  Alcotest.(check (float 1e-9)) "average" 2.5 (Core.Loads.average [| 1; 4 |]);
  Alcotest.(check (float 1e-9)) "balancedness" 1.5 (Core.Loads.balancedness [| 1; 4 |])

let test_point_mass () =
  let x = Core.Loads.point_mass ~n:5 ~total:42 in
  check_int "node 0" 42 x.(0);
  check_int "total" 42 (Core.Loads.total x);
  check_int "discrepancy" 42 (Core.Loads.discrepancy x)

let test_bimodal () =
  let x = Core.Loads.bimodal ~n:6 ~high:10 ~low:2 in
  Alcotest.(check (array int)) "halves" [| 10; 10; 10; 2; 2; 2 |] x;
  let y = Core.Loads.bimodal ~n:5 ~high:10 ~low:2 in
  check_int "odd middle is low" 2 y.(2)

let test_uniform_random_conserves () =
  let g = Prng.Splitmix.create 1 in
  let x = Core.Loads.uniform_random g ~n:16 ~total:1000 in
  check_int "total" 1000 (Core.Loads.total x);
  Array.iter (fun v -> check_bool "non-negative" true (v >= 0)) x

let test_random_composition_conserves () =
  let g = Prng.Splitmix.create 2 in
  let x = Core.Loads.random_composition g ~n:9 ~total:77 in
  check_int "total" 77 (Core.Loads.total x)

let test_flat () =
  Alcotest.(check (array int)) "flat" [| 3; 3; 3 |] (Core.Loads.flat ~n:3 ~value:3)

let test_rejects_empty () =
  check_bool "empty max rejected" true
    (try
       ignore (Core.Loads.max_load [||]);
       false
     with Invalid_argument _ -> true)

let prop_distributions_conserve =
  QCheck.Test.make ~name:"all initial distributions conserve mass" ~count:200
    QCheck.(pair (int_range 1 100) (int_range 0 10_000))
    (fun (n, total) ->
      let g = Prng.Splitmix.create (n + total) in
      Core.Loads.total (Core.Loads.point_mass ~n ~total) = total
      && Core.Loads.total (Core.Loads.uniform_random g ~n ~total) = total
      && Core.Loads.total (Core.Loads.random_composition g ~n ~total) = total)

let prop_discrepancy_bounds_balancedness =
  QCheck.Test.make ~name:"balancedness ≤ discrepancy" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 50) (int_range 0 1000))
    (fun x ->
      Core.Loads.balancedness x <= float_of_int (Core.Loads.discrepancy x) +. 1e-9)

let () =
  Alcotest.run "loads"
    [
      ( "metrics",
        [
          Alcotest.test_case "totals" `Quick test_totals;
          Alcotest.test_case "discrepancy" `Quick test_discrepancy;
          Alcotest.test_case "average/balancedness" `Quick test_average_balancedness;
          Alcotest.test_case "rejects empty" `Quick test_rejects_empty;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "point mass" `Quick test_point_mass;
          Alcotest.test_case "bimodal" `Quick test_bimodal;
          Alcotest.test_case "uniform random" `Quick test_uniform_random_conserves;
          Alcotest.test_case "random composition" `Quick test_random_composition_conserves;
          Alcotest.test_case "flat" `Quick test_flat;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_distributions_conserve;
          QCheck_alcotest.to_alcotest prop_discrepancy_bounds_balancedness;
        ] );
    ]
