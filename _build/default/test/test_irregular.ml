(* Tests for the irregular-graph extension (the paper's §1.1 remark). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Igraph --- *)

let test_igraph_basic () =
  let g = Irregular.Igraph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  check_int "n" 4 (Irregular.Igraph.n g);
  check_int "hub degree" 3 (Irregular.Igraph.degree g 0);
  check_int "leaf degree" 1 (Irregular.Igraph.degree g 1);
  check_int "max degree" 3 (Irregular.Igraph.max_degree g);
  check_int "min degree" 1 (Irregular.Igraph.min_degree g);
  check_int "edges" 3 (Irregular.Igraph.edge_count g);
  check_bool "connected" true (Irregular.Igraph.is_connected g)

let test_igraph_isolated_vertex () =
  let g = Irregular.Igraph.of_edges ~n:3 [ (0, 1) ] in
  check_int "isolated degree" 0 (Irregular.Igraph.degree g 2);
  check_bool "disconnected" false (Irregular.Igraph.is_connected g)

let test_igraph_rejects_self_edge () =
  check_bool "self edge rejected" true
    (try
       ignore (Irregular.Igraph.of_edges ~n:2 [ (1, 1) ]);
       false
     with Invalid_argument _ -> true)

let test_wheel () =
  let g = Irregular.Igraph.wheel 9 in
  check_int "n" 9 (Irregular.Igraph.n g);
  check_int "hub" 8 (Irregular.Igraph.degree g 0);
  for u = 1 to 8 do
    check_int "rim degree" 3 (Irregular.Igraph.degree g u)
  done;
  check_bool "connected" true (Irregular.Igraph.is_connected g)

let test_star () =
  let g = Irregular.Igraph.star 6 in
  check_int "hub" 5 (Irregular.Igraph.degree g 0);
  check_int "leaf" 1 (Irregular.Igraph.degree g 3)

let test_barbell () =
  let g = Irregular.Igraph.barbell ~clique:4 ~path:3 in
  check_int "n" 10 (Irregular.Igraph.n g);
  check_bool "connected" true (Irregular.Igraph.is_connected g);
  (* Clique interior nodes have degree 3; the two bridge endpoints 4. *)
  check_int "clique corner" 4 (Irregular.Igraph.degree g 3);
  check_int "clique interior" 3 (Irregular.Igraph.degree g 0);
  check_int "path middle" 2 (Irregular.Igraph.degree g 4)

let test_random_connected () =
  let rng = Prng.Splitmix.create 7 in
  let g = Irregular.Igraph.random_connected rng ~n:40 ~extra_edges:20 in
  check_int "n" 40 (Irregular.Igraph.n g);
  check_bool "connected" true (Irregular.Igraph.is_connected g);
  check_bool "has extra edges" true (Irregular.Igraph.edge_count g > 39)

(* --- Ispectral --- *)

let test_transition_doubly_stochastic () =
  let g = Irregular.Igraph.wheel 8 in
  let cap = Irregular.Igraph.max_degree g + 1 in
  let p = Irregular.Ispectral.transition_matrix g ~capacity:cap in
  let sums = Linalg.Csr.row_sums p in
  Array.iter
    (fun s -> check_bool "row sum 1" true (abs_float (s -. 1.0) < 1e-12))
    sums;
  check_bool "symmetric" true (Linalg.Mat.is_symmetric (Linalg.Csr.to_dense p))

let test_gap_positive () =
  let g = Irregular.Igraph.barbell ~clique:4 ~path:2 in
  let cap = 2 * Irregular.Igraph.max_degree g in
  let gap = Irregular.Ispectral.eigenvalue_gap g ~capacity:cap in
  check_bool "gap in (0,1]" true (gap > 0.0 && gap <= 1.0);
  (* Barbells mix worse than wheels of similar size. *)
  let w = Irregular.Igraph.wheel 10 in
  let wgap = Irregular.Ispectral.eigenvalue_gap w ~capacity:(2 * 9) in
  check_bool "wheel mixes faster" true (wgap > gap)

(* --- Iengine + Ibalancer --- *)

let run_balancer mk g ~total ~steps =
  let n = Irregular.Igraph.n g in
  let init = Array.make n 0 in
  init.(n / 2) <- total;
  let balancer = mk g in
  Irregular.Iengine.run ~graph:g ~balancer ~init ~steps ()

let test_conservation_irregular () =
  let g = Irregular.Igraph.wheel 12 in
  let cap = 2 * Irregular.Igraph.max_degree g in
  List.iter
    (fun mk ->
      let r = run_balancer (fun g -> mk g) g ~total:1234 ~steps:100 in
      check_int "mass conserved" 1234
        (Array.fold_left ( + ) 0 r.Irregular.Iengine.final_loads))
    [
      Irregular.Ibalancer.rotor_router ~capacity:cap;
      Irregular.Ibalancer.send_floor ~capacity:cap;
      Irregular.Ibalancer.send_round ~capacity:cap;
    ]

let test_balances_wheel () =
  let g = Irregular.Igraph.wheel 16 in
  let cap = 2 * Irregular.Igraph.max_degree g in
  let r =
    run_balancer (Irregular.Ibalancer.rotor_router ~capacity:cap) g ~total:(16 * 50)
      ~steps:500
  in
  let disc =
    Array.fold_left max min_int r.Irregular.Iengine.final_loads
    - Array.fold_left min max_int r.Irregular.Iengine.final_loads
  in
  check_bool (Printf.sprintf "wheel balanced (got %d)" disc) true (disc <= cap)

let test_balances_barbell () =
  let g = Irregular.Igraph.barbell ~clique:5 ~path:4 in
  let cap = 2 * Irregular.Igraph.max_degree g in
  let gap = Irregular.Ispectral.eigenvalue_gap g ~capacity:cap in
  let n = Irregular.Igraph.n g in
  let steps =
    Irregular.Ispectral.horizon ~gap ~n ~initial_discrepancy:(n * 40) ~c:6.0
  in
  let r =
    run_balancer (Irregular.Ibalancer.send_round ~capacity:cap) g ~total:(n * 40) ~steps
  in
  let disc =
    Array.fold_left max min_int r.Irregular.Iengine.final_loads
    - Array.fold_left min max_int r.Irregular.Iengine.final_loads
  in
  check_bool (Printf.sprintf "barbell balanced (got %d)" disc) true (disc <= cap)

let test_capacity_validated () =
  let g = Irregular.Igraph.wheel 8 in
  check_bool "too-small capacity rejected" true
    (try
       ignore (Irregular.Ibalancer.rotor_router g ~capacity:(Irregular.Igraph.max_degree g));
       false
     with Invalid_argument _ -> true);
  check_bool "send_round needs 2*max" true
    (try
       ignore
         (Irregular.Ibalancer.send_round g
            ~capacity:(Irregular.Igraph.max_degree g + 1));
       false
     with Invalid_argument _ -> true)

let test_engine_invariant_enforced () =
  let g = Irregular.Igraph.star 5 in
  let cap = 6 in
  let leaky =
    {
      Irregular.Ibalancer.name = "leaky";
      capacity = cap;
      assign =
        (fun ~step:_ ~node:_ ~load ~ports ->
          Array.fill ports 0 cap 0;
          ports.(cap - 1) <- max 0 (load - 1));
    }
  in
  let init = Array.make 5 3 in
  check_bool "leak detected" true
    (try
       ignore (Irregular.Iengine.run ~graph:g ~balancer:leaky ~init ~steps:1 ());
       false
     with Irregular.Iengine.Invariant_violation _ -> true)

let prop_irregular_conservation =
  QCheck.Test.make ~name:"irregular engine conserves mass on random graphs" ~count:25
    QCheck.(triple (int_range 5 30) (int_range 0 15) (int_range 0 1000))
    (fun (n, extra, total) ->
      let rng = Prng.Splitmix.create (n + extra + total) in
      let g = Irregular.Igraph.random_connected rng ~n ~extra_edges:extra in
      let cap = Irregular.Igraph.max_degree g + 1 in
      let balancer = Irregular.Ibalancer.rotor_router g ~capacity:cap in
      let init = Array.make n 0 in
      init.(0) <- total;
      let r = Irregular.Iengine.run ~graph:g ~balancer ~init ~steps:30 () in
      Array.fold_left ( + ) 0 r.Irregular.Iengine.final_loads = total)

let prop_irregular_rotor_balances =
  QCheck.Test.make ~name:"rotor-router balances random irregular graphs" ~count:10
    QCheck.(int_range 8 24)
    (fun n ->
      let rng = Prng.Splitmix.create (n * 31) in
      let g = Irregular.Igraph.random_connected rng ~n ~extra_edges:n in
      let cap = 2 * Irregular.Igraph.max_degree g in
      let balancer = Irregular.Ibalancer.rotor_router g ~capacity:cap in
      let init = Array.make n 0 in
      init.(0) <- 64 * n;
      let gap = Irregular.Ispectral.eigenvalue_gap g ~capacity:cap in
      let steps =
        Irregular.Ispectral.horizon ~gap ~n ~initial_discrepancy:(64 * n) ~c:6.0
      in
      let r = Irregular.Iengine.run ~graph:g ~balancer ~init ~steps () in
      let hi = Array.fold_left max min_int r.Irregular.Iengine.final_loads in
      let lo = Array.fold_left min max_int r.Irregular.Iengine.final_loads in
      hi - lo <= 2 * cap)

let () =
  Alcotest.run "irregular"
    [
      ( "igraph",
        [
          Alcotest.test_case "basic" `Quick test_igraph_basic;
          Alcotest.test_case "isolated vertex" `Quick test_igraph_isolated_vertex;
          Alcotest.test_case "rejects self edge" `Quick test_igraph_rejects_self_edge;
          Alcotest.test_case "wheel" `Quick test_wheel;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "barbell" `Quick test_barbell;
          Alcotest.test_case "random connected" `Quick test_random_connected;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "doubly stochastic" `Quick test_transition_doubly_stochastic;
          Alcotest.test_case "gap positive" `Quick test_gap_positive;
        ] );
      ( "engine",
        [
          Alcotest.test_case "conservation" `Quick test_conservation_irregular;
          Alcotest.test_case "balances wheel" `Quick test_balances_wheel;
          Alcotest.test_case "balances barbell" `Quick test_balances_barbell;
          Alcotest.test_case "capacity validated" `Quick test_capacity_validated;
          Alcotest.test_case "invariant enforced" `Quick test_engine_invariant_enforced;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_irregular_conservation;
          QCheck_alcotest.to_alcotest prop_irregular_rotor_balances;
        ] );
    ]
