(* Tests for the Jacobi eigensolver and the Lemma A.1 mixing analysis. *)

let check_bool = Alcotest.(check bool)
let feq ?(eps = 1e-8) a b = abs_float (a -. b) < eps

(* --- Jacobi --- *)

let test_jacobi_diagonal () =
  let m = Linalg.Mat.init 3 (fun i j -> if i = j then float_of_int (3 - i) else 0.0) in
  let d = Linalg.Jacobi.decompose m in
  Alcotest.(check (array (float 1e-10))) "eigenvalues" [| 3.0; 2.0; 1.0 |]
    d.Linalg.Jacobi.eigenvalues

let test_jacobi_2x2 () =
  (* [[2 1];[1 2]]: eigenvalues 3 and 1. *)
  let m = Linalg.Mat.init 2 (fun i j -> if i = j then 2.0 else 1.0) in
  let d = Linalg.Jacobi.decompose m in
  check_bool "λ1" true (feq d.Linalg.Jacobi.eigenvalues.(0) 3.0);
  check_bool "λ2" true (feq d.Linalg.Jacobi.eigenvalues.(1) 1.0)

let test_jacobi_reconstruct () =
  let g = Prng.Splitmix.create 5 in
  let n = 8 in
  let half = Linalg.Mat.init n (fun _ _ -> Prng.Splitmix.float g 1.0) in
  let m = Linalg.Mat.init n (fun i j -> (Linalg.Mat.get half i j +. Linalg.Mat.get half j i) /. 2.0) in
  let d = Linalg.Jacobi.decompose m in
  let r = Linalg.Jacobi.reconstruct d in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check_bool "reconstructs" true (feq ~eps:1e-7 (Linalg.Mat.get m i j) (Linalg.Mat.get r i j))
    done
  done

let test_jacobi_rejects_asymmetric () =
  let m = Linalg.Mat.init 2 (fun i j -> float_of_int (i - j)) in
  check_bool "rejected" true
    (try
       ignore (Linalg.Jacobi.decompose m);
       false
     with Invalid_argument _ -> true)

let test_jacobi_matches_closed_form_cycle () =
  (* All eigenvalues of the lazy cycle walk are (2cos(2πk/n)+d°)/d⁺. *)
  let n = 8 in
  let g = Graphs.Gen.cycle n in
  let p = Graphs.Spectral.transition_matrix g ~self_loops:2 in
  let eigs = Linalg.Jacobi.eigenvalues_of_transition p in
  let expected =
    Array.init n (fun k ->
        ((2.0 *. cos (2.0 *. Float.pi *. float_of_int k /. float_of_int n)) +. 2.0) /. 4.0)
  in
  Array.sort (fun a b -> compare b a) expected;
  Array.iteri
    (fun i l -> check_bool (Printf.sprintf "eig %d" i) true (feq ~eps:1e-8 l expected.(i)))
    eigs

let test_jacobi_agrees_with_power_iteration () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let p = Graphs.Spectral.transition_matrix g ~self_loops:4 in
  let eigs = Linalg.Jacobi.eigenvalues_of_transition p in
  let lambda2_dense = abs_float eigs.(1) in
  let gap_power = Graphs.Spectral.eigenvalue_gap g ~self_loops:4 in
  check_bool "agree" true (feq ~eps:1e-5 (1.0 -. lambda2_dense) gap_power)

(* --- Mixing / Lemma A.1 --- *)

let test_power_zero_is_identity () =
  let g = Graphs.Gen.cycle 6 in
  let m = Graphs.Mixing.create g ~self_loops:2 in
  let p0 = Graphs.Mixing.power m 0 in
  check_bool "identity" true (feq (Linalg.Mat.get p0 0 0) 1.0);
  check_bool "off diag" true (feq (Linalg.Mat.get p0 0 1) 0.0)

let test_error_term_vanishes () =
  (* Λ_t → 0 as t grows: operator norm decreasing towards 0. *)
  let g = Graphs.Gen.complete 6 in
  let m = Graphs.Mixing.create g ~self_loops:5 in
  let e5 = Graphs.Mixing.error_operator_norm_inf m 5 in
  let e20 = Graphs.Mixing.error_operator_norm_inf m 20 in
  let e60 = Graphs.Mixing.error_operator_norm_inf m 60 in
  check_bool "decays" true (e20 < e5 && e60 < e20);
  check_bool "nearly gone" true (e60 < 1e-6)

let test_lemma_a1_i () =
  (* ‖Λ_t q‖∞ ≤ n²(1−µ)^t ‖q − q̄‖∞ for several t and q. *)
  let g = Graphs.Gen.torus [ 3; 3 ] in
  let m = Graphs.Mixing.create g ~self_loops:4 in
  let rng = Prng.Splitmix.create 3 in
  for _ = 1 to 5 do
    let q = Array.init 9 (fun _ -> Prng.Splitmix.float rng 10.0) in
    List.iter
      (fun t ->
        let lhs = Linalg.Vec.norm_inf (Graphs.Mixing.apply_error m t q) in
        let rhs = Graphs.Mixing.lemma_a1_i_bound m ~q t in
        check_bool (Printf.sprintf "t=%d: %.2e ≤ %.2e" t lhs rhs) true (lhs <= rhs +. 1e-12))
      [ 0; 1; 3; 10; 30 ]
  done

let test_error_orthogonal_to_uniform () =
  (* Λ_t annihilates the uniform vector: Λ_t 1 = 0 (doubly stochastic). *)
  let g = Graphs.Gen.cycle 7 in
  let m = Graphs.Mixing.create g ~self_loops:2 in
  let one = Array.make 7 1.0 in
  List.iter
    (fun t ->
      check_bool "kills uniform" true
        (Linalg.Vec.norm_inf (Graphs.Mixing.apply_error m t one) < 1e-10))
    [ 1; 4; 9 ]

let test_current_sum_bounds () =
  (* Appendix A.1: the current sum over a ≤ H is bounded by
     (i) 2 + 48√H for lazy walks, and (ii) √n (the telescoping
     eigenvalue bound).  Check both on a lazy cycle. *)
  let n = 12 in
  let g = Graphs.Gen.cycle n in
  let m = Graphs.Mixing.create g ~self_loops:2 in
  let h = 30 in
  let sum = Graphs.Mixing.current_sum m ~horizon:h in
  let bound_i = 2.0 +. (48.0 *. sqrt (float_of_int h)) in
  let bound_ii = 2.0 +. sqrt (float_of_int n) in
  check_bool (Printf.sprintf "(i): %.3f ≤ %.1f" sum bound_i) true (sum <= bound_i);
  check_bool (Printf.sprintf "(ii): %.3f ≤ %.3f" sum bound_ii) true (sum <= bound_ii)

let test_spectral_gap_consistent () =
  let g = Graphs.Gen.hypercube 3 in
  let m = Graphs.Mixing.create g ~self_loops:3 in
  let exact = Graphs.Spectral.hypercube_gap ~r:3 ~self_loops:3 in
  check_bool "gap matches closed form" true
    (feq ~eps:1e-8 (Graphs.Mixing.spectral_gap m) exact)

let prop_error_norm_decreasing =
  QCheck.Test.make ~name:"‖Λ_t‖∞ is non-increasing in t for lazy walks" ~count:10
    QCheck.(int_range 3 10)
    (fun n ->
      let g = Graphs.Gen.cycle n in
      let m = Graphs.Mixing.create g ~self_loops:2 in
      let prev = ref infinity in
      let ok = ref true in
      for t = 0 to 12 do
        let e = Graphs.Mixing.error_operator_norm_inf m t in
        if e > !prev +. 1e-9 then ok := false;
        prev := e
      done;
      !ok)

let () =
  Alcotest.run "mixing"
    [
      ( "jacobi",
        [
          Alcotest.test_case "diagonal" `Quick test_jacobi_diagonal;
          Alcotest.test_case "2x2" `Quick test_jacobi_2x2;
          Alcotest.test_case "reconstruct" `Quick test_jacobi_reconstruct;
          Alcotest.test_case "rejects asymmetric" `Quick test_jacobi_rejects_asymmetric;
          Alcotest.test_case "cycle closed form" `Quick test_jacobi_matches_closed_form_cycle;
          Alcotest.test_case "agrees with power iteration" `Quick
            test_jacobi_agrees_with_power_iteration;
        ] );
      ( "lemma A.1",
        [
          Alcotest.test_case "P^0 = I" `Quick test_power_zero_is_identity;
          Alcotest.test_case "error vanishes" `Quick test_error_term_vanishes;
          Alcotest.test_case "claim (i)" `Quick test_lemma_a1_i;
          Alcotest.test_case "kills uniform" `Quick test_error_orthogonal_to_uniform;
          Alcotest.test_case "current sum bounds" `Quick test_current_sum_bounds;
          Alcotest.test_case "gap consistent" `Quick test_spectral_gap_consistent;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_error_norm_decreasing ]);
    ]
