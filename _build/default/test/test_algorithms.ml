(* Tests for the paper's named algorithms: rotor-router, rotor-router*,
   SEND(⌊x/d+⌋) and SEND([x/d+]). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let assign_once balancer ~load =
  let dp = Core.Balancer.d_plus balancer in
  let ports = Array.make dp 0 in
  balancer.Core.Balancer.assign ~step:1 ~node:0 ~load ~ports;
  ports

(* --- default rotor order --- *)

let test_default_order_is_permutation () =
  List.iter
    (fun (d, d0) ->
      let ord = Core.Rotor_router.default_order ~degree:d ~self_loops:d0 in
      check_int "length" (d + d0) (Array.length ord);
      let sorted = Array.copy ord in
      Array.sort compare sorted;
      Alcotest.(check (array int)) "permutation" (Array.init (d + d0) (fun i -> i)) sorted)
    [ (2, 0); (2, 2); (3, 3); (4, 2); (6, 12); (1, 5) ]

let test_default_order_interleaves () =
  (* With d = d°, originals and self-loops must alternate. *)
  let ord = Core.Rotor_router.default_order ~degree:3 ~self_loops:3 in
  let kinds = Array.map (fun k -> k < 3) ord in
  for i = 0 to 4 do
    check_bool "alternating" true (kinds.(i) <> kinds.(i + 1))
  done

(* --- rotor-router --- *)

let test_rotor_router_round_robin () =
  let g = Graphs.Gen.cycle 4 in
  let bal = Core.Rotor_router.make g ~self_loops:2 in
  (* d+ = 4; load 6: every port gets 1, two ports get 2 starting at
     rotor 0 (order positions 0 and 1). *)
  let p1 = assign_once bal ~load:6 in
  check_int "total" 6 (Array.fold_left ( + ) 0 p1);
  Array.iter (fun v -> check_bool "floor share" true (v >= 1 && v <= 2)) p1;
  (* Rotor advanced by 2; next assignment's extras start 2 later. *)
  let p2 = assign_once bal ~load:6 in
  check_int "total 2" 6 (Array.fold_left ( + ) 0 p2);
  (* Across the two steps every port has received exactly 3 tokens. *)
  let cum = Array.map2 ( + ) p1 p2 in
  Array.iter (fun v -> check_int "perfect rotation" 3 v) cum

let test_rotor_router_zero_load () =
  let g = Graphs.Gen.cycle 4 in
  let bal = Core.Rotor_router.make g ~self_loops:1 in
  let p = assign_once bal ~load:0 in
  Array.iter (fun v -> check_int "all zero" 0 v) p

let test_rotor_router_exact_multiple () =
  let g = Graphs.Gen.cycle 4 in
  let bal = Core.Rotor_router.make g ~self_loops:2 in
  let p = assign_once bal ~load:12 in
  Array.iter (fun v -> check_int "equal shares" 3 v) p

let test_rotor_router_rejects_negative () =
  let g = Graphs.Gen.cycle 4 in
  let bal = Core.Rotor_router.make g ~self_loops:1 in
  check_bool "negative rejected" true
    (try
       ignore (assign_once bal ~load:(-1));
       false
     with Invalid_argument _ -> true)

let test_rotor_router_custom_order_validated () =
  let g = Graphs.Gen.cycle 4 in
  check_bool "bad order rejected" true
    (try
       ignore (Core.Rotor_router.make g ~self_loops:1 ~order:(fun _ -> [| 0; 0; 1 |]));
       false
     with Invalid_argument _ -> true)

let test_rotor_router_init_rotor () =
  let g = Graphs.Gen.cycle 4 in
  (* order = identity [0;1] with d° = 0; rotor at 1 sends the odd token
     to port 1. *)
  let bal =
    Core.Rotor_router.make g ~self_loops:0
      ~order:(fun _ -> [| 0; 1 |])
      ~init_rotor:(fun _ -> 1)
  in
  let p = assign_once bal ~load:3 in
  Alcotest.(check (array int)) "extra on port 1" [| 1; 2 |] p

let test_rotor_router_balances_complete_graph () =
  let n = 8 in
  let g = Graphs.Gen.complete n in
  let init = Core.Loads.point_mass ~n ~total:(n * n * 4) in
  let bal = Core.Rotor_router.make g ~self_loops:(n - 1) in
  let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:200 () in
  check_bool
    (Printf.sprintf "small discrepancy (got %d)"
       (Core.Loads.discrepancy r.Core.Engine.final_loads))
    true
    (Core.Loads.discrepancy r.Core.Engine.final_loads <= 2 * (n - 1))

(* --- rotor-router* --- *)

let test_rotor_router_star_special_loop () =
  let g = Graphs.Gen.torus [ 3; 3 ] in
  (* d = 4, d+ = 8.  Load 21: special self-loop (last port) gets
     ceil(21/8) = 3; the other 18 spread as 2 each over 7 ports with 4
     extras. *)
  let bal = Core.Rotor_router_star.make g in
  let p = assign_once bal ~load:21 in
  check_int "special" 3 p.(7);
  check_int "total" 21 (Array.fold_left ( + ) 0 p);
  for k = 0 to 6 do
    check_bool "round fair" true (p.(k) = 2 || p.(k) = 3)
  done

let test_rotor_router_star_self_loops_is_d () =
  let g = Graphs.Gen.hypercube 3 in
  let bal = Core.Rotor_router_star.make g in
  check_int "d° = d" 3 bal.Core.Balancer.self_loops

(* --- SEND variants --- *)

let test_send_floor_exact () =
  let g = Graphs.Gen.cycle 4 in
  (* d = 2, d° = 2, d+ = 4; load 11: originals get 2 each, self-loop 0
     gets 2 + 3, self-loop 1 gets 2. *)
  let bal = Core.Send_floor.make g ~self_loops:2 in
  let p = assign_once bal ~load:11 in
  Alcotest.(check (array int)) "assignment" [| 2; 2; 5; 2 |] p

let test_send_floor_requires_self_loop () =
  let g = Graphs.Gen.cycle 4 in
  check_bool "rejected" true
    (try
       ignore (Core.Send_floor.make g ~self_loops:0);
       false
     with Invalid_argument _ -> true)

let test_send_round_rounds_half_up () =
  let g = Graphs.Gen.cycle 4 in
  (* d = 2, d° = 2, d+ = 4; load 10: 10/4 = 2.5 rounds to 3: originals
     get 3 each; self-loops share 4 = 2 + 2. *)
  let bal = Core.Send_round.make g ~self_loops:2 in
  let p = assign_once bal ~load:10 in
  check_int "orig 0" 3 p.(0);
  check_int "orig 1" 3 p.(1);
  check_int "total" 10 (Array.fold_left ( + ) 0 p);
  (* load 9: 9/4 = 2.25 rounds down: originals get 2. *)
  let p2 = assign_once bal ~load:9 in
  check_int "orig rounds down" 2 p2.(0);
  check_int "total 2" 9 (Array.fold_left ( + ) 0 p2)

let test_send_round_requires_enough_self_loops () =
  let g = Graphs.Gen.torus [ 3; 3 ] in
  check_bool "d° < d rejected" true
    (try
       ignore (Core.Send_round.make g ~self_loops:3);
       false
     with Invalid_argument _ -> true)

let test_send_variants_are_stateless () =
  let g = Graphs.Gen.cycle 6 in
  let floor_bal = Core.Send_floor.make g ~self_loops:2 in
  let round_bal = Core.Send_round.make g ~self_loops:2 in
  check_bool "floor stateless" true floor_bal.Core.Balancer.props.stateless;
  check_bool "round stateless" true round_bal.Core.Balancer.props.stateless;
  (* Statelessness in action: same load => same assignment, twice. *)
  let a = assign_once floor_bal ~load:17 in
  let b = assign_once floor_bal ~load:17 in
  Alcotest.(check (array int)) "same assignment" a b

let test_rotor_router_is_stateful () =
  let g = Graphs.Gen.cycle 6 in
  let bal = Core.Rotor_router.make g ~self_loops:2 in
  check_bool "not stateless" false bal.Core.Balancer.props.stateless;
  let a = assign_once bal ~load:17 in
  let b = assign_once bal ~load:17 in
  check_bool "rotor moved" true (a <> b)

(* --- property tests --- *)

let graph_pool =
  [|
    Graphs.Gen.cycle 8;
    Graphs.Gen.torus [ 3; 4 ];
    Graphs.Gen.hypercube 3;
    Graphs.Gen.complete 6;
  |]

let prop_assignments_valid =
  QCheck.Test.make ~name:"all core algorithms produce valid assignments" ~count:300
    QCheck.(triple (int_range 0 3) (int_range 0 10_000) (int_range 0 2))
    (fun (gi, load, which) ->
      let g = graph_pool.(gi) in
      let d = Graphs.Graph.degree g in
      let bal =
        match which with
        | 0 -> Core.Rotor_router.make g ~self_loops:d
        | 1 -> Core.Send_floor.make g ~self_loops:d
        | _ -> Core.Send_round.make g ~self_loops:(2 * d)
      in
      let dp = Core.Balancer.d_plus bal in
      let ports = Array.make dp 0 in
      bal.Core.Balancer.assign ~step:1 ~node:0 ~load ~ports;
      match Core.Balancer.validate_assignment bal ~load ~ports with
      | Ok () ->
        (* Definition 2.1(i): every port gets at least ⌊x/d+⌋. *)
        Array.for_all (fun v -> v >= load / dp) ports
      | Error _ -> false)

let prop_send_round_round_fair =
  QCheck.Test.make ~name:"send-round is round-fair for every load" ~count:500
    QCheck.(int_range 0 100_000)
    (fun load ->
      let g = graph_pool.(1) in
      let bal = Core.Send_round.make g ~self_loops:12 in
      let dp = Core.Balancer.d_plus bal in
      let ports = Array.make dp 0 in
      bal.Core.Balancer.assign ~step:1 ~node:0 ~load ~ports;
      let q = load / dp in
      let ceil_share = if load mod dp > 0 then q + 1 else q in
      Array.for_all (fun v -> v = q || v = ceil_share) ports)

let prop_rotor_router_cumulative_rotation =
  QCheck.Test.make ~name:"rotor-router distributes exactly evenly over full cycles"
    ~count:100
    QCheck.(pair (int_range 0 3) (small_list (int_range 0 200)))
    (fun (gi, loads) ->
      let g = graph_pool.(gi) in
      let d = Graphs.Graph.degree g in
      let bal = Core.Rotor_router.make g ~self_loops:d in
      let dp = Core.Balancer.d_plus bal in
      let cum = Array.make dp 0 in
      let ports = Array.make dp 0 in
      List.iteri
        (fun i load ->
          bal.Core.Balancer.assign ~step:(i + 1) ~node:0 ~load ~ports;
          Array.iteri (fun k v -> cum.(k) <- cum.(k) + v) ports)
        loads;
      let lo = Array.fold_left min max_int cum and hi = Array.fold_left max 0 cum in
      hi - lo <= 1)

let () =
  Alcotest.run "algorithms"
    [
      ( "rotor order",
        [
          Alcotest.test_case "permutation" `Quick test_default_order_is_permutation;
          Alcotest.test_case "interleaves" `Quick test_default_order_interleaves;
        ] );
      ( "rotor-router",
        [
          Alcotest.test_case "round robin" `Quick test_rotor_router_round_robin;
          Alcotest.test_case "zero load" `Quick test_rotor_router_zero_load;
          Alcotest.test_case "exact multiple" `Quick test_rotor_router_exact_multiple;
          Alcotest.test_case "rejects negative" `Quick test_rotor_router_rejects_negative;
          Alcotest.test_case "order validated" `Quick
            test_rotor_router_custom_order_validated;
          Alcotest.test_case "init rotor" `Quick test_rotor_router_init_rotor;
          Alcotest.test_case "balances K8" `Quick test_rotor_router_balances_complete_graph;
          Alcotest.test_case "stateful" `Quick test_rotor_router_is_stateful;
        ] );
      ( "rotor-router*",
        [
          Alcotest.test_case "special loop" `Quick test_rotor_router_star_special_loop;
          Alcotest.test_case "d° = d" `Quick test_rotor_router_star_self_loops_is_d;
        ] );
      ( "send variants",
        [
          Alcotest.test_case "send-floor exact" `Quick test_send_floor_exact;
          Alcotest.test_case "send-floor needs loop" `Quick test_send_floor_requires_self_loop;
          Alcotest.test_case "send-round half up" `Quick test_send_round_rounds_half_up;
          Alcotest.test_case "send-round needs loops" `Quick
            test_send_round_requires_enough_self_loops;
          Alcotest.test_case "stateless" `Quick test_send_variants_are_stateless;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_assignments_valid;
          QCheck_alcotest.to_alcotest prop_send_round_round_fair;
          QCheck_alcotest.to_alcotest prop_rotor_router_cumulative_rotation;
        ] );
    ]
