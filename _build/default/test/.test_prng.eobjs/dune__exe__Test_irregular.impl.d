test/test_irregular.ml: Alcotest Array Irregular Linalg List Printf Prng QCheck QCheck_alcotest
