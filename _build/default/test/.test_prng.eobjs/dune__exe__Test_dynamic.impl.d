test/test_dynamic.ml: Alcotest Array Core Graphs Printf Prng QCheck QCheck_alcotest
