test/test_mixing.ml: Alcotest Array Float Graphs Linalg List Printf Prng QCheck QCheck_alcotest
