test/test_rotorwalk.mli:
