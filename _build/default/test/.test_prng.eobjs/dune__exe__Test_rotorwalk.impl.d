test/test_rotorwalk.ml: Alcotest Array Graphs List Printf Prng QCheck QCheck_alcotest Rotorwalk
