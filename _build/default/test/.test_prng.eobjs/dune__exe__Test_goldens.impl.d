test/test_goldens.ml: Alcotest Baselines Core Graphs List Prng
