test/test_analysis.ml: Alcotest Array Baselines Core Graphs List Printf Prng QCheck QCheck_alcotest String
