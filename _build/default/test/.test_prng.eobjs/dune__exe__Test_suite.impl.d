test/test_suite.ml: Alcotest Baselines Core Fun Graphs Harness List Printf Prng String Unix
