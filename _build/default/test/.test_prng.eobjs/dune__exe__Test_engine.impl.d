test/test_engine.ml: Alcotest Array Core Graphs List QCheck QCheck_alcotest
