test/test_dimexch.ml: Alcotest Array Baselines Core Graphs Hashtbl List Printf Prng QCheck QCheck_alcotest
