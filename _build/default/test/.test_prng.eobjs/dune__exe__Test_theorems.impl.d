test/test_theorems.ml: Alcotest Array Baselines Core Graphs List Printf Prng
