test/test_deviation.ml: Alcotest Core Graphs List Printf Prng QCheck QCheck_alcotest
