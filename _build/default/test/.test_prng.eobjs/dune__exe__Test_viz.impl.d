test/test_viz.ml: Alcotest Array Core Filename Graphs In_channel QCheck QCheck_alcotest String Sys Viz
