test/test_harness.ml: Alcotest Array Core Filename Graphs Harness In_channel List String Sys
