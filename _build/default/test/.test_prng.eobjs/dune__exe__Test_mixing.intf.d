test/test_mixing.mli:
