test/test_fairness.ml: Alcotest Array Baselines Core Graphs List Option Printf Prng QCheck QCheck_alcotest
