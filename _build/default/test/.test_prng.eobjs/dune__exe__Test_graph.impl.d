test/test_graph.ml: Alcotest Array Graphs List Prng QCheck QCheck_alcotest
