test/test_spectral.ml: Alcotest Array Graphs Linalg List Printf Prng QCheck QCheck_alcotest
