test/test_hetero.ml: Alcotest Array Core Graphs Hetero List Printf Prng QCheck QCheck_alcotest
