test/test_prng.ml: Alcotest Array Hashtbl Printf Prng QCheck QCheck_alcotest
