test/test_potential.ml: Alcotest Array Core Gen Graphs List QCheck QCheck_alcotest
