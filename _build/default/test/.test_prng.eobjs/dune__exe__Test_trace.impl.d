test/test_trace.ml: Alcotest Array Baselines Core Filename Graphs Prng QCheck QCheck_alcotest Sys Trace
