test/test_linalg.ml: Alcotest Array Graphs Linalg List Printf Prng QCheck QCheck_alcotest
