test/test_potential.mli:
