test/test_baselines.ml: Alcotest Array Baselines Core Graphs Linalg List Option Printf Prng QCheck QCheck_alcotest
