test/test_loads.ml: Alcotest Array Core Gen Prng QCheck QCheck_alcotest
