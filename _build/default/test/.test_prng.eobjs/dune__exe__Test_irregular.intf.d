test/test_irregular.mli:
