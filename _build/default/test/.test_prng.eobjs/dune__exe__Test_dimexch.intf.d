test/test_dimexch.mli:
