test/test_loads.mli:
