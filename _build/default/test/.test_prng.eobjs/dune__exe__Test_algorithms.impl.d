test/test_algorithms.ml: Alcotest Array Core Graphs List Printf QCheck QCheck_alcotest
