(* Tests for the graph representation, generators and structural
   properties. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sorted_neighbors g u =
  let a = Graphs.Graph.neighbors g u in
  Array.sort compare a;
  a

(* --- Graph representation --- *)

let test_of_edges_triangle () =
  let g = Graphs.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  check_int "n" 3 (Graphs.Graph.n g);
  check_int "degree" 2 (Graphs.Graph.degree g);
  check_int "edges" 3 (Graphs.Graph.edge_count g);
  Alcotest.(check (array int)) "nbrs of 0" [| 1; 2 |] (sorted_neighbors g 0)

let test_of_edges_rejects_self_edge () =
  Alcotest.check_raises "self edge"
    (Invalid_argument "Graph.of_edges: self-edges are not allowed") (fun () ->
      ignore (Graphs.Graph.of_edges ~n:2 [ (0, 0); (0, 1) ]))

let test_of_edges_rejects_irregular () =
  check_bool "irregular rejected" true
    (try
       ignore (Graphs.Graph.of_edges ~n:3 [ (0, 1) ]);
       false
     with Invalid_argument _ -> true)

let test_of_edges_rejects_out_of_range () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graphs.Graph.of_edges ~n:2 [ (0, 5) ]))

let test_reverse_port_involution () =
  let g = Graphs.Gen.torus [ 3; 3 ] in
  for u = 0 to Graphs.Graph.n g - 1 do
    for k = 0 to Graphs.Graph.degree g - 1 do
      let v = Graphs.Graph.neighbor g u k in
      let k' = Graphs.Graph.reverse_port g u k in
      check_int "reverse endpoint" u (Graphs.Graph.neighbor g v k');
      check_int "involution" k (Graphs.Graph.reverse_port g v k')
    done
  done

let test_parallel_edges_supported () =
  let g = Graphs.Graph.of_edges ~n:2 [ (0, 1); (0, 1) ] in
  check_int "degree" 2 (Graphs.Graph.degree g);
  check_int "multiplicity" 2 (Graphs.Graph.multiplicity g 0 1);
  check_bool "has parallel" true (Graphs.Graph.has_parallel_edges g)

let test_no_parallel_on_cycle () =
  check_bool "simple" false (Graphs.Graph.has_parallel_edges (Graphs.Gen.cycle 5))

let test_adjacency_flat () =
  let g = Graphs.Gen.cycle 4 in
  let adj = Graphs.Graph.adjacency g in
  check_int "length" (4 * 2) (Array.length adj);
  Graphs.Graph.iter_ports g 2 (fun k v ->
      check_int "flat matches" v adj.((2 * 2) + k))

(* --- Generators --- *)

let test_cycle_structure () =
  let g = Graphs.Gen.cycle 6 in
  check_int "n" 6 (Graphs.Graph.n g);
  check_int "d" 2 (Graphs.Graph.degree g);
  for u = 0 to 5 do
    let nbrs = sorted_neighbors g u in
    let expect = [| (u + 5) mod 6; (u + 1) mod 6 |] in
    Array.sort compare expect;
    Alcotest.(check (array int)) "cycle neighbors" expect nbrs
  done

let test_complete_structure () =
  let g = Graphs.Gen.complete 5 in
  check_int "d" 4 (Graphs.Graph.degree g);
  check_int "m" 10 (Graphs.Graph.edge_count g);
  check_bool "connected" true (Graphs.Props.is_connected g)

let test_complete_bipartite () =
  let g = Graphs.Gen.complete_bipartite 3 in
  check_int "n" 6 (Graphs.Graph.n g);
  check_int "d" 3 (Graphs.Graph.degree g);
  check_bool "bipartite" true (Graphs.Props.is_bipartite g)

let test_hypercube_structure () =
  let g = Graphs.Gen.hypercube 4 in
  check_int "n" 16 (Graphs.Graph.n g);
  check_int "d" 4 (Graphs.Graph.degree g);
  check_bool "connected" true (Graphs.Props.is_connected g);
  check_bool "bipartite" true (Graphs.Props.is_bipartite g);
  check_int "diameter" 4 (Graphs.Props.diameter g)

let test_torus_2d () =
  let g = Graphs.Gen.torus [ 4; 5 ] in
  check_int "n" 20 (Graphs.Graph.n g);
  check_int "d" 4 (Graphs.Graph.degree g);
  check_bool "connected" true (Graphs.Props.is_connected g);
  check_bool "no parallel" false (Graphs.Graph.has_parallel_edges g)

let test_torus_3d () =
  let g = Graphs.Gen.torus [ 3; 3; 3 ] in
  check_int "n" 27 (Graphs.Graph.n g);
  check_int "d" 6 (Graphs.Graph.degree g);
  check_bool "connected" true (Graphs.Props.is_connected g)

let test_torus_1d_is_cycle () =
  let g = Graphs.Gen.torus [ 7 ] in
  check_int "d" 2 (Graphs.Graph.degree g);
  check_int "diameter" 3 (Graphs.Props.diameter g)

let test_circulant () =
  let g = Graphs.Gen.circulant 8 [ 1; 2 ] in
  check_int "d" 4 (Graphs.Graph.degree g);
  let nbrs = sorted_neighbors g 0 in
  Alcotest.(check (array int)) "circulant neighbors" [| 1; 2; 6; 7 |] nbrs

let test_circulant_antipodal () =
  let g = Graphs.Gen.circulant 6 [ 1; 3 ] in
  check_int "d with antipodal offset" 3 (Graphs.Graph.degree g)

let test_clique_circulant_has_clique () =
  let d = 7 in
  let g = Graphs.Gen.clique_circulant ~n:20 ~d in
  check_int "d" d (Graphs.Graph.degree g);
  let h = d / 2 in
  (* C = {0..h-1} must be a clique. *)
  for i = 0 to h - 1 do
    for j = 0 to h - 1 do
      if i <> j then check_int "clique edge" 1 (Graphs.Graph.multiplicity g i j)
    done
  done

let test_petersen () =
  let g = Graphs.Gen.petersen () in
  check_int "n" 10 (Graphs.Graph.n g);
  check_int "d" 3 (Graphs.Graph.degree g);
  check_int "diameter" 2 (Graphs.Props.diameter g);
  Alcotest.(check (option int)) "girth" (Some 5) (Graphs.Props.girth g);
  Alcotest.(check (option int)) "odd girth" (Some 5) (Graphs.Props.odd_girth g);
  check_bool "connected" true (Graphs.Props.is_connected g)

let test_random_regular_valid () =
  let rng = Prng.Splitmix.create 123 in
  List.iter
    (fun (n, d) ->
      let g = Graphs.Gen.random_regular rng ~n ~d in
      check_int "n" n (Graphs.Graph.n g);
      check_int "d" d (Graphs.Graph.degree g);
      check_bool "connected" true (Graphs.Props.is_connected g);
      check_bool "simple" false (Graphs.Graph.has_parallel_edges g))
    [ (16, 3); (32, 4); (64, 6); (20, 8) ]

let test_random_regular_rejects_odd () =
  let rng = Prng.Splitmix.create 1 in
  check_bool "odd nd rejected" true
    (try
       ignore (Graphs.Gen.random_regular rng ~n:5 ~d:3);
       false
     with Invalid_argument _ -> true)

(* --- Props --- *)

let test_bfs_distances_cycle () =
  let g = Graphs.Gen.cycle 7 in
  let d = Graphs.Props.bfs_distances g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 3; 2; 1 |] d

let test_diameter_known () =
  check_int "cycle 8" 4 (Graphs.Props.diameter (Graphs.Gen.cycle 8));
  check_int "cycle 9" 4 (Graphs.Props.diameter (Graphs.Gen.cycle 9));
  check_int "K5" 1 (Graphs.Props.diameter (Graphs.Gen.complete 5));
  check_int "Q3" 3 (Graphs.Props.diameter (Graphs.Gen.hypercube 3))

let test_bipartite_known () =
  check_bool "even cycle" true (Graphs.Props.is_bipartite (Graphs.Gen.cycle 6));
  check_bool "odd cycle" false (Graphs.Props.is_bipartite (Graphs.Gen.cycle 7));
  check_bool "hypercube" true (Graphs.Props.is_bipartite (Graphs.Gen.hypercube 5));
  check_bool "K4" false (Graphs.Props.is_bipartite (Graphs.Gen.complete 4))

let test_girth_known () =
  Alcotest.(check (option int)) "cycle 9" (Some 9) (Graphs.Props.girth (Graphs.Gen.cycle 9));
  Alcotest.(check (option int)) "K4" (Some 3) (Graphs.Props.girth (Graphs.Gen.complete 4));
  Alcotest.(check (option int)) "Q3" (Some 4) (Graphs.Props.girth (Graphs.Gen.hypercube 3));
  Alcotest.(check (option int)) "parallel edge pair" (Some 2)
    (Graphs.Props.girth (Graphs.Graph.of_edges ~n:2 [ (0, 1); (0, 1) ]))

let test_odd_girth_known () =
  Alcotest.(check (option int)) "odd cycle 9" (Some 9)
    (Graphs.Props.odd_girth (Graphs.Gen.cycle 9));
  Alcotest.(check (option int)) "even cycle bipartite" None
    (Graphs.Props.odd_girth (Graphs.Gen.cycle 8));
  Alcotest.(check (option int)) "K4 triangle" (Some 3)
    (Graphs.Props.odd_girth (Graphs.Gen.complete 4));
  Alcotest.(check (option int)) "phi of 9-cycle" (Some 4)
    (Graphs.Props.phi (Graphs.Gen.cycle 9))

let test_eccentricity_disconnected () =
  let g = Graphs.Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check_bool "disconnected" false (Graphs.Props.is_connected g);
  check_bool "eccentricity raises" true
    (try
       ignore (Graphs.Props.eccentricity g 0);
       false
     with Failure _ -> true)

(* --- Property tests --- *)

let prop_generators_regular_connected =
  QCheck.Test.make ~name:"generators produce connected regular graphs" ~count:30
    QCheck.(int_range 3 20)
    (fun n ->
      let checks g = Graphs.Props.is_connected g && Graphs.Graph.degree g > 0 in
      checks (Graphs.Gen.cycle n)
      && checks (Graphs.Gen.complete (max 2 n))
      && checks (Graphs.Gen.torus [ n; 3 ]))

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"BFS distances satisfy edge Lipschitz" ~count:30
    QCheck.(int_range 4 30)
    (fun n ->
      let g = Graphs.Gen.cycle n in
      let dist = Graphs.Props.bfs_distances g 0 in
      let ok = ref true in
      for u = 0 to n - 1 do
        Graphs.Graph.iter_ports g u (fun _ v ->
            if abs (dist.(u) - dist.(v)) > 1 then ok := false)
      done;
      !ok)

let prop_random_regular_simple =
  QCheck.Test.make ~name:"random regular graphs are simple and regular" ~count:15
    QCheck.(pair (int_range 10 40) (int_range 3 5))
    (fun (n, d) ->
      let n = if n * d mod 2 = 1 then n + 1 else n in
      let rng = Prng.Splitmix.create ((n * 1000) + d) in
      let g = Graphs.Gen.random_regular rng ~n ~d in
      Graphs.Graph.degree g = d
      && (not (Graphs.Graph.has_parallel_edges g))
      && Graphs.Props.is_connected g)

let () =
  Alcotest.run "graphs"
    [
      ( "representation",
        [
          Alcotest.test_case "triangle" `Quick test_of_edges_triangle;
          Alcotest.test_case "rejects self edge" `Quick test_of_edges_rejects_self_edge;
          Alcotest.test_case "rejects irregular" `Quick test_of_edges_rejects_irregular;
          Alcotest.test_case "rejects out of range" `Quick
            test_of_edges_rejects_out_of_range;
          Alcotest.test_case "reverse port involution" `Quick
            test_reverse_port_involution;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges_supported;
          Alcotest.test_case "cycle simple" `Quick test_no_parallel_on_cycle;
          Alcotest.test_case "flat adjacency" `Quick test_adjacency_flat;
        ] );
      ( "generators",
        [
          Alcotest.test_case "cycle" `Quick test_cycle_structure;
          Alcotest.test_case "complete" `Quick test_complete_structure;
          Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
          Alcotest.test_case "hypercube" `Quick test_hypercube_structure;
          Alcotest.test_case "torus 2d" `Quick test_torus_2d;
          Alcotest.test_case "torus 3d" `Quick test_torus_3d;
          Alcotest.test_case "torus 1d" `Quick test_torus_1d_is_cycle;
          Alcotest.test_case "circulant" `Quick test_circulant;
          Alcotest.test_case "circulant antipodal" `Quick test_circulant_antipodal;
          Alcotest.test_case "clique circulant" `Quick test_clique_circulant_has_clique;
          Alcotest.test_case "petersen" `Quick test_petersen;
          Alcotest.test_case "random regular" `Quick test_random_regular_valid;
          Alcotest.test_case "random regular odd nd" `Quick
            test_random_regular_rejects_odd;
        ] );
      ( "props",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances_cycle;
          Alcotest.test_case "diameter" `Quick test_diameter_known;
          Alcotest.test_case "bipartite" `Quick test_bipartite_known;
          Alcotest.test_case "girth" `Quick test_girth_known;
          Alcotest.test_case "odd girth" `Quick test_odd_girth_known;
          Alcotest.test_case "disconnected" `Quick test_eccentricity_disconnected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_generators_regular_connected;
          QCheck_alcotest.to_alcotest prop_bfs_triangle_inequality;
          QCheck_alcotest.to_alcotest prop_random_regular_simple;
        ] );
    ]
