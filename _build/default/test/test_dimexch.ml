(* Tests for the dimension-exchange (matching model) balancers. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_edge_coloring_proper () =
  List.iter
    (fun g ->
      let classes = Baselines.Dimexch.edge_coloring g in
      (* Proper: within a class, no node appears twice. *)
      Array.iter
        (fun cls ->
          let seen = Hashtbl.create 16 in
          Array.iter
            (fun (u, v) ->
              check_bool "u unused" false (Hashtbl.mem seen u);
              check_bool "v unused" false (Hashtbl.mem seen v);
              Hashtbl.add seen u ();
              Hashtbl.add seen v ())
            cls)
        classes;
      (* Complete: all edges covered once. *)
      let total = Array.fold_left (fun acc cls -> acc + Array.length cls) 0 classes in
      check_int "all edges colored" (Graphs.Graph.edge_count g) total;
      (* Bounded: at most 2d - 1 colors. *)
      check_bool "color bound" true
        (Array.length classes <= (2 * Graphs.Graph.degree g) - 1))
    [ Graphs.Gen.cycle 8; Graphs.Gen.hypercube 4; Graphs.Gen.torus [ 4; 4 ] ]

let test_hypercube_coloring_is_dimensional () =
  (* The greedy coloring of a hypercube listed dimension-by-dimension
     uses exactly d colors. *)
  let g = Graphs.Gen.hypercube 4 in
  check_int "d colors" 4 (Array.length (Baselines.Dimexch.edge_coloring g))

let test_balancing_circuit_conserves () =
  let g = Graphs.Gen.hypercube 4 in
  let init = Core.Loads.point_mass ~n:16 ~total:1000 in
  let r = Baselines.Dimexch.run Baselines.Dimexch.Balancing_circuit g ~init ~steps:100 in
  check_int "mass" 1000 (Core.Loads.total r.Baselines.Dimexch.final_loads)

let test_balancing_circuit_constant_discrepancy () =
  (* The dimension-exchange contrast: constant discrepancy, beating the
     Ω(d) diffusive lower bound. *)
  let g = Graphs.Gen.hypercube 5 in
  let init = Core.Loads.point_mass ~n:32 ~total:3210 in
  let r = Baselines.Dimexch.run Baselines.Dimexch.Balancing_circuit g ~init ~steps:500 in
  let disc = Core.Loads.discrepancy r.Baselines.Dimexch.final_loads in
  check_bool (Printf.sprintf "constant discrepancy (got %d)" disc) true (disc <= 3)

let test_random_matching_conserves () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:555 in
  let rng = Prng.Splitmix.create 5 in
  let r =
    Baselines.Dimexch.run (Baselines.Dimexch.Random_matching rng) g ~init ~steps:200
  in
  check_int "mass" 555 (Core.Loads.total r.Baselines.Dimexch.final_loads)

let test_random_matching_balances () =
  let rng_g = Prng.Splitmix.create 11 in
  let g = Graphs.Gen.random_regular rng_g ~n:32 ~d:4 in
  let init = Core.Loads.point_mass ~n:32 ~total:3200 in
  let rng = Prng.Splitmix.create 6 in
  let r =
    Baselines.Dimexch.run (Baselines.Dimexch.Random_matching rng) g ~init ~steps:800
  in
  let disc = Core.Loads.discrepancy r.Baselines.Dimexch.final_loads in
  check_bool (Printf.sprintf "balanced (got %d)" disc) true (disc <= 6)

let test_stop_at_discrepancy () =
  let g = Graphs.Gen.hypercube 4 in
  let init = Core.Loads.point_mass ~n:16 ~total:1600 in
  let r =
    Baselines.Dimexch.run ~stop_at_discrepancy:8 Baselines.Dimexch.Balancing_circuit g
      ~init ~steps:10_000
  in
  match r.Baselines.Dimexch.reached_target with
  | None -> Alcotest.fail "never reached"
  | Some t -> check_bool "early" true (t < 10_000)

let test_series_monotone_under_circuit () =
  (* Pairwise averaging can only shrink the spread between the matched
     pair; global discrepancy is non-increasing under any matching. *)
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.bimodal ~n:16 ~high:100 ~low:0 in
  let r = Baselines.Dimexch.run Baselines.Dimexch.Balancing_circuit g ~init ~steps:100 in
  let prev = ref max_int in
  Array.iter
    (fun (_, d) ->
      check_bool "non-increasing" true (d <= !prev);
      prev := d)
    r.Baselines.Dimexch.series

let prop_pair_balance_conserves =
  QCheck.Test.make ~name:"matching steps conserve mass on random inputs" ~count:50
    QCheck.(pair (int_range 2 5) (int_range 0 2000))
    (fun (r, total) ->
      let g = Graphs.Gen.hypercube r in
      let n = Graphs.Graph.n g in
      let rng = Prng.Splitmix.create (r + total) in
      let init = Core.Loads.uniform_random rng ~n ~total in
      let res =
        Baselines.Dimexch.run (Baselines.Dimexch.Random_matching rng) g ~init ~steps:50
      in
      Core.Loads.total res.Baselines.Dimexch.final_loads = total)

let () =
  Alcotest.run "dimexch"
    [
      ( "edge coloring",
        [
          Alcotest.test_case "proper" `Quick test_edge_coloring_proper;
          Alcotest.test_case "hypercube dimensional" `Quick
            test_hypercube_coloring_is_dimensional;
        ] );
      ( "balancing",
        [
          Alcotest.test_case "circuit conserves" `Quick test_balancing_circuit_conserves;
          Alcotest.test_case "circuit constant discrepancy" `Quick
            test_balancing_circuit_constant_discrepancy;
          Alcotest.test_case "random matching conserves" `Quick
            test_random_matching_conserves;
          Alcotest.test_case "random matching balances" `Quick test_random_matching_balances;
          Alcotest.test_case "stop at discrepancy" `Quick test_stop_at_discrepancy;
          Alcotest.test_case "series monotone" `Quick test_series_monotone_under_circuit;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_pair_balance_conserves ]);
    ]
