(* Tests for the spectral machinery: transition matrices, numerical
   eigenvalue gaps vs closed forms, and balancing horizons. *)

let check_bool = Alcotest.(check bool)
let feq ?(eps = 1e-6) a b = abs_float (a -. b) < eps

let test_transition_matrix_stochastic () =
  List.iter
    (fun (g, d0) ->
      let p = Graphs.Spectral.transition_matrix g ~self_loops:d0 in
      let sums = Linalg.Csr.row_sums p in
      Array.iter (fun s -> check_bool "row sum 1" true (feq ~eps:1e-12 s 1.0)) sums;
      let dense = Linalg.Csr.to_dense p in
      check_bool "symmetric" true (Linalg.Mat.is_symmetric dense))
    [
      (Graphs.Gen.cycle 6, 2);
      (Graphs.Gen.hypercube 3, 3);
      (Graphs.Gen.complete 5, 0);
      (Graphs.Gen.torus [ 3; 4 ], 4);
    ]

let test_transition_matrix_entries () =
  let g = Graphs.Gen.cycle 4 in
  let p = Graphs.Spectral.transition_matrix g ~self_loops:2 in
  (* d+ = 4: each neighbor 1/4, self 2/4. *)
  check_bool "self" true (feq (Linalg.Csr.get p 1 1) 0.5);
  check_bool "neighbor" true (feq (Linalg.Csr.get p 1 2) 0.25);
  check_bool "non-neighbor" true (feq (Linalg.Csr.get p 0 2) 0.0)

let test_gap_matches_closed_form_cycle () =
  List.iter
    (fun n ->
      let g = Graphs.Gen.cycle n in
      let numeric = Graphs.Spectral.eigenvalue_gap g ~self_loops:2 in
      let exact = Graphs.Spectral.cycle_gap ~n ~self_loops:2 in
      check_bool
        (Printf.sprintf "cycle %d: %.8f vs %.8f" n numeric exact)
        true
        (feq ~eps:1e-5 numeric exact))
    [ 4; 8; 16; 32 ]

let test_gap_matches_closed_form_hypercube () =
  List.iter
    (fun r ->
      let g = Graphs.Gen.hypercube r in
      let numeric = Graphs.Spectral.eigenvalue_gap g ~self_loops:r in
      let exact = Graphs.Spectral.hypercube_gap ~r ~self_loops:r in
      check_bool
        (Printf.sprintf "Q%d: %.8f vs %.8f" r numeric exact)
        true
        (feq ~eps:1e-5 numeric exact))
    [ 3; 4; 5 ]

let test_gap_matches_closed_form_complete () =
  let n = 8 in
  let g = Graphs.Gen.complete n in
  let numeric = Graphs.Spectral.eigenvalue_gap g ~self_loops:(n - 1) in
  let exact = Graphs.Spectral.complete_gap ~n ~self_loops:(n - 1) in
  check_bool "K8" true (feq ~eps:1e-5 numeric exact)

let test_gap_matches_closed_form_torus () =
  let side = 5 in
  let g = Graphs.Gen.torus [ side; side ] in
  let numeric = Graphs.Spectral.eigenvalue_gap g ~self_loops:4 in
  let exact = Graphs.Spectral.torus2d_gap ~side ~self_loops:4 in
  check_bool
    (Printf.sprintf "torus %dx%d: %.8f vs %.8f" side side numeric exact)
    true
    (feq ~eps:1e-5 numeric exact)

let test_circulant_gap_closed_form () =
  (* circulant(n, [1]) is the cycle: the general formula must agree. *)
  List.iter
    (fun n ->
      check_bool "matches cycle form" true
        (feq
           (Graphs.Spectral.circulant_gap ~n ~offsets:[ 1 ] ~self_loops:2)
           (Graphs.Spectral.cycle_gap ~n ~self_loops:2)))
    [ 5; 8; 13 ];
  (* And against the numerical estimator on a denser circulant. *)
  let n = 16 and offsets = [ 1; 3; 8 ] in
  let g = Graphs.Gen.circulant n offsets in
  let d0 = Graphs.Graph.degree g in
  let numeric = Graphs.Spectral.eigenvalue_gap g ~self_loops:d0 in
  let exact = Graphs.Spectral.circulant_gap ~n ~offsets ~self_loops:d0 in
  check_bool
    (Printf.sprintf "circulant: %.8f vs %.8f" numeric exact)
    true
    (feq ~eps:1e-5 numeric exact)

let test_gap_monotone_in_expansion () =
  (* The expander should have a much larger gap than the cycle of the
     same size. *)
  let n = 64 in
  let cyc = Graphs.Spectral.eigenvalue_gap (Graphs.Gen.cycle n) ~self_loops:2 in
  let rng = Prng.Splitmix.create 5 in
  let exp_g = Graphs.Gen.random_regular rng ~n ~d:6 in
  let expander = Graphs.Spectral.eigenvalue_gap exp_g ~self_loops:6 in
  check_bool
    (Printf.sprintf "expander %.4f >> cycle %.6f" expander cyc)
    true (expander > 10.0 *. cyc)

let test_horizon_sane () =
  let t = Graphs.Spectral.horizon ~gap:0.1 ~n:100 ~initial_discrepancy:50 ~c:4.0 in
  check_bool "positive" true (t >= 1);
  (* 4 * ln(100 * 52) / 0.1 = 4 * 8.56 / 0.1 ≈ 342 *)
  check_bool (Printf.sprintf "magnitude %d" t) true (t > 300 && t < 400);
  let t2 = Graphs.Spectral.horizon ~gap:0.1 ~n:100 ~initial_discrepancy:5000 ~c:4.0 in
  check_bool "grows with K" true (t2 > t)

let test_horizon_requires_positive_gap () =
  check_bool "bad gap rejected" true
    (try
       ignore (Graphs.Spectral.horizon ~gap:0.0 ~n:10 ~initial_discrepancy:1 ~c:1.0);
       false
     with Invalid_argument _ -> true)

let test_continuous_balancing_time () =
  let g = Graphs.Gen.complete 8 in
  let init = Array.make 8 0.0 in
  init.(0) <- 800.0;
  match Graphs.Spectral.continuous_balancing_time g ~self_loops:7 ~init () with
  | None -> Alcotest.fail "did not converge"
  | Some t ->
    check_bool (Printf.sprintf "converged at %d" t) true (t > 0 && t < 100);
    (* Already balanced input: time 0. *)
    (match
       Graphs.Spectral.continuous_balancing_time g ~self_loops:7
         ~init:(Array.make 8 3.0) ()
     with
    | Some 0 -> ()
    | _ -> Alcotest.fail "flat input should balance at time 0")

let test_continuous_balancing_time_bounded () =
  let g = Graphs.Gen.cycle 16 in
  let init = Array.make 16 0.0 in
  init.(0) <- 160.0;
  match
    Graphs.Spectral.continuous_balancing_time g ~self_loops:2 ~init ~max_steps:3 ()
  with
  | None -> ()
  | Some t -> Alcotest.failf "should not converge in 3 steps (got %d)" t

let prop_gap_in_unit_interval =
  QCheck.Test.make ~name:"spectral gap always in (0,1]" ~count:20
    QCheck.(int_range 3 24)
    (fun n ->
      let g = Graphs.Gen.cycle n in
      let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:2 in
      gap > 0.0 && gap <= 1.0)

let () =
  Alcotest.run "spectral"
    [
      ( "transition",
        [
          Alcotest.test_case "stochastic + symmetric" `Quick
            test_transition_matrix_stochastic;
          Alcotest.test_case "entries" `Quick test_transition_matrix_entries;
        ] );
      ( "gaps",
        [
          Alcotest.test_case "cycle closed form" `Quick test_gap_matches_closed_form_cycle;
          Alcotest.test_case "hypercube closed form" `Quick
            test_gap_matches_closed_form_hypercube;
          Alcotest.test_case "complete closed form" `Quick
            test_gap_matches_closed_form_complete;
          Alcotest.test_case "torus closed form" `Quick test_gap_matches_closed_form_torus;
          Alcotest.test_case "circulant closed form" `Quick test_circulant_gap_closed_form;
          Alcotest.test_case "expander vs cycle" `Quick test_gap_monotone_in_expansion;
        ] );
      ( "horizon",
        [
          Alcotest.test_case "sane magnitude" `Quick test_horizon_sane;
          Alcotest.test_case "rejects zero gap" `Quick test_horizon_requires_positive_gap;
          Alcotest.test_case "continuous balancing time" `Quick
            test_continuous_balancing_time;
          Alcotest.test_case "continuous time bounded" `Quick
            test_continuous_balancing_time_bounded;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_gap_in_unit_interval ]);
    ]
