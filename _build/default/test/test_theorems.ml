(* Integration tests: each of the paper's theorems, exercised end-to-end
   at small scale.

   Upper bounds are checked with explicit constants that are generous
   but far below what a failing algorithm would produce; lower-bound
   constructions are checked exactly (they are steady states / exact
   period-2 oscillations). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mixing_horizon g ~self_loops ~init ~c =
  let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops in
  Graphs.Spectral.horizon ~gap ~n:(Graphs.Graph.n g)
    ~initial_discrepancy:(Core.Loads.discrepancy init) ~c

(* --- Theorem 2.3: cumulatively fair balancers after O(T) --- *)

let run_after_t g ~balancer ~init ~c =
  let steps = mixing_horizon g ~self_loops:balancer.Core.Balancer.self_loops ~init ~c in
  let r = Core.Engine.run ~graph:g ~balancer ~init ~steps () in
  Core.Loads.discrepancy r.Core.Engine.final_loads

let test_thm23_expander () =
  (* Claim (i): O(d √(log n / µ)) on a good expander — in absolute terms
     a small constant times d for these sizes. *)
  let rng = Prng.Splitmix.create 2 in
  let n = 128 and d = 6 in
  let g = Graphs.Gen.random_regular rng ~n ~d in
  let init = Core.Loads.point_mass ~n ~total:(64 * n) in
  let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:d in
  let bound =
    int_of_float
      (4.0 *. float_of_int d *. sqrt (log (float_of_int n) /. gap))
  in
  List.iter
    (fun balancer ->
      let disc = run_after_t g ~balancer ~init ~c:4.0 in
      check_bool
        (Printf.sprintf "%s on expander: %d ≤ %d" balancer.Core.Balancer.name disc bound)
        true (disc <= bound))
    [
      Core.Rotor_router.make g ~self_loops:d;
      Core.Send_floor.make g ~self_loops:d;
      Core.Send_round.make g ~self_loops:d;
    ]

let test_thm23_cycle_sqrt_n () =
  (* Claim (ii): O(d √n) on the cycle. *)
  let n = 64 and d = 2 in
  let g = Graphs.Gen.cycle n in
  let init = Core.Loads.point_mass ~n ~total:(16 * n) in
  let bound = int_of_float (4.0 *. float_of_int d *. sqrt (float_of_int n)) in
  List.iter
    (fun balancer ->
      let disc = run_after_t g ~balancer ~init ~c:4.0 in
      check_bool
        (Printf.sprintf "%s on cycle: %d ≤ %d" balancer.Core.Balancer.name disc bound)
        true (disc <= bound))
    [
      Core.Rotor_router.make g ~self_loops:d;
      Core.Send_floor.make g ~self_loops:d;
      Core.Send_round.make g ~self_loops:d;
    ]

let test_thm23_much_better_than_initial () =
  (* Sanity on the statement's premise: after T the discrepancy is a
     tiny fraction of K. *)
  let g = Graphs.Gen.torus [ 8; 8 ] in
  let n = 64 in
  let init = Core.Loads.point_mass ~n ~total:(1000 * n) in
  let balancer = Core.Rotor_router.make g ~self_loops:4 in
  let disc = run_after_t g ~balancer ~init ~c:4.0 in
  check_bool (Printf.sprintf "K=64000 collapsed to %d" disc) true (disc < 100)

let test_thm23_claim_iii_minimal_laziness () =
  (* Claim (iii): for ANY d⁺ ≥ d+1 — even a single self-loop — the
     discrepancy after T is O((δ+1)·d·log n/µ). *)
  let g = Graphs.Gen.torus [ 8; 8 ] in
  let n = 64 and d = 4 in
  let init = Core.Loads.point_mass ~n ~total:(64 * n) in
  let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:1 in
  let bound = int_of_float (2.0 *. float_of_int d *. log (float_of_int n) /. gap) in
  List.iter
    (fun balancer ->
      let disc = run_after_t g ~balancer ~init ~c:4.0 in
      check_bool
        (Printf.sprintf "%s with d°=1: %d ≤ %d" balancer.Core.Balancer.name disc bound)
        true (disc <= bound))
    [ Core.Rotor_router.make g ~self_loops:1; Core.Send_floor.make g ~self_loops:1 ]

(* --- Lemma 3.4: every node dips near the average in every window --- *)

let test_lemma34_window_dip () =
  (* After the burn-in t ≥ 16·log(nK)/µ, every node's load must dip to
     x̄ + δd⁺ + 2r + 1/2 + λ within every window of length
     T̂ = O(d·log n/(µ(λ+1))).  Check with λ = 0 and the loose r ≤ d⁺
     of Proposition A.2, over four consecutive windows. *)
  let g = Graphs.Gen.torus [ 8; 8 ] in
  let n = 64 and d = 4 in
  let dp = 2 * d in
  let init = Core.Loads.point_mass ~n ~total:(100 * n) in
  let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:d in
  let burn_in = mixing_horizon g ~self_loops:d ~init ~c:16.0 in
  let window =
    max 1 (int_of_float (8.0 *. float_of_int d *. log (float_of_int n) /. gap))
  in
  let threshold =
    Core.Loads.average init +. float_of_int dp +. (2.0 *. float_of_int dp) +. 0.5
  in
  let windows = 4 in
  let steps = burn_in + (windows * window) in
  (* min load per node within each window *)
  let window_min = Array.make_matrix windows n max_int in
  let hook t loads =
    if t > burn_in then begin
      let w = (t - burn_in - 1) / window in
      if w < windows then
        for u = 0 to n - 1 do
          if loads.(u) < window_min.(w).(u) then window_min.(w).(u) <- loads.(u)
        done
    end
  in
  let balancer = Core.Rotor_router.make g ~self_loops:d in
  ignore (Core.Engine.run ~hook ~graph:g ~balancer ~init ~steps ());
  for w = 0 to windows - 1 do
    for u = 0 to n - 1 do
      check_bool
        (Printf.sprintf "window %d node %d dips (min %d ≤ %.1f)" w u
           window_min.(w).(u) threshold)
        true
        (float_of_int window_min.(w).(u) <= threshold)
    done
  done

(* --- Theorem 3.3: good s-balancers reach O(d) --- *)

let test_thm33_send_round_reaches_od () =
  (* SEND([x/d+]) with d+ = 4d: a good s-balancer with s = Ω(d); must
     reach (2δ+1)d+ + 4d° = d+ + 4d° discrepancy (δ = 0). *)
  List.iter
    (fun (g, label) ->
      let n = Graphs.Graph.n g in
      let d = Graphs.Graph.degree g in
      let d0 = 3 * d in
      let dp = d + d0 in
      let init = Core.Loads.point_mass ~n ~total:(100 * n) in
      let balancer = Core.Send_round.make g ~self_loops:d0 in
      let target = dp + (4 * d0) in
      let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:d0 in
      let logn = log (float_of_int n) in
      let steps =
        mixing_horizon g ~self_loops:d0 ~init ~c:4.0
        + int_of_float (8.0 *. logn *. logn /. gap)
      in
      let r =
        Core.Engine.run ~stop_at_discrepancy:target ~graph:g ~balancer ~init ~steps ()
      in
      match r.Core.Engine.reached_target with
      | Some _ -> ()
      | None ->
        Alcotest.failf "%s: never reached O(d) discrepancy %d (final %d)" label target
          (Core.Loads.discrepancy r.Core.Engine.final_loads))
    [
      (Graphs.Gen.torus [ 6; 6 ], "torus 6x6");
      (Graphs.Gen.hypercube 5, "hypercube 5");
      (Graphs.Gen.cycle 32, "cycle 32");
    ]

let test_thm33_rotor_router_star_reaches_od () =
  let g = Graphs.Gen.torus [ 6; 6 ] in
  let n = 36 and d = 4 in
  let init = Core.Loads.point_mass ~n ~total:(100 * n) in
  let balancer = Core.Rotor_router_star.make g in
  (* δ = 1, d+ = 2d, d° = d: target (2·1+1)·2d + 4d = 10d. *)
  let target = 10 * d in
  let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:d in
  let logn = log (float_of_int n) in
  let steps =
    mixing_horizon g ~self_loops:d ~init ~c:4.0
    + int_of_float (8.0 *. float_of_int d *. logn *. logn /. gap)
  in
  let r =
    Core.Engine.run ~stop_at_discrepancy:target ~graph:g ~balancer ~init ~steps ()
  in
  check_bool "reached O(d)" true (r.Core.Engine.reached_target <> None)

let test_thm33_faster_with_larger_s () =
  (* Larger s (more self-loops) must not be slower to reach the O(d)
     band — compare time-to-target for d° = d+1 vs d° = 3d. *)
  let g = Graphs.Gen.torus [ 6; 6 ] in
  let n = 36 and d = 4 in
  let init = Core.Loads.point_mass ~n ~total:(200 * n) in
  let time_for d0 =
    let balancer = Core.Send_round.make g ~self_loops:d0 in
    let target = (d + d0) + (4 * d0) in
    let r =
      Core.Engine.run ~stop_at_discrepancy:target ~graph:g ~balancer ~init
        ~steps:200_000 ()
    in
    (r.Core.Engine.reached_target, target)
  in
  match (time_for (d + 1), time_for (3 * d)) with
  | (Some _, _), (Some _, _) -> ()
  | (None, t1), _ -> Alcotest.failf "small s never reached %d" t1
  | _, (None, t2) -> Alcotest.failf "large s never reached %d" t2

(* --- Theorem 4.1: round-fair but not cumulatively fair is stuck --- *)

let test_thm41_steady_state () =
  List.iter
    (fun (g, label) ->
      let balancer, init = Baselines.Adversary_roundfair.make g in
      let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:50 () in
      Alcotest.(check (array int)) (label ^ ": loads frozen") init r.Core.Engine.final_loads)
    [ (Graphs.Gen.cycle 16, "cycle"); (Graphs.Gen.torus [ 4; 4 ], "torus") ]

let test_thm41_discrepancy_omega_d_diam () =
  let g = Graphs.Gen.cycle 20 in
  let d = 2 in
  let diam = Graphs.Props.diameter g in
  let expected = Baselines.Adversary_roundfair.expected_discrepancy g in
  check_bool
    (Printf.sprintf "expected %d ≥ c·d·diam = %d" expected (d * diam / 2))
    true
    (expected >= d * diam / 2);
  let balancer, init = Baselines.Adversary_roundfair.make g in
  let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:200 () in
  check_int "discrepancy never improves" expected
    (Core.Loads.discrepancy r.Core.Engine.final_loads)

let test_thm41_flows_are_round_fair_like () =
  (* The construction's per-node flow spread is ≤ 1 (the proof's
     |f(e1) - f(e2)| ≤ 1 observation) — audit a few nodes directly. *)
  let g = Graphs.Gen.torus [ 5; 5 ] in
  let balancer, init = Baselines.Adversary_roundfair.make g in
  let dp = Core.Balancer.d_plus balancer in
  let d = Graphs.Graph.degree g in
  let ports = Array.make dp 0 in
  for u = 0 to Graphs.Graph.n g - 1 do
    balancer.Core.Balancer.assign ~step:1 ~node:u ~load:init.(u) ~ports;
    let lo = ref max_int and hi = ref min_int in
    for k = 0 to d - 1 do
      lo := min !lo ports.(k);
      hi := max !hi ports.(k)
    done;
    check_bool "spread ≤ 1" true (!hi - !lo <= 1)
  done

(* --- Theorem 4.2: stateless algorithms are stuck at Ω(d) --- *)

let test_thm42_frozen_forever () =
  List.iter
    (fun d ->
      let n = 4 * d in
      let g = Baselines.Adversary_stateless.graph ~n ~d in
      let balancer, init = Baselines.Adversary_stateless.make g ~d in
      let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:100 () in
      Alcotest.(check (array int))
        (Printf.sprintf "d=%d: loads frozen" d)
        init r.Core.Engine.final_loads;
      let disc = Core.Loads.discrepancy r.Core.Engine.final_loads in
      check_bool
        (Printf.sprintf "d=%d: discrepancy %d ≥ d/2 - 1 = %d" d disc ((d / 2) - 1))
        true
        (disc >= (d / 2) - 1))
    [ 6; 8; 10; 13 ]

let test_thm42_general_rules_frozen () =
  (* The theorem quantifies over ALL stateless rules; exercise three
     qualitatively different ones and observe the same freeze. *)
  let d = 10 in
  let ell = (d / 2) - 1 in
  let g = Baselines.Adversary_stateless.graph ~n:40 ~d in
  let rules =
    [
      ( "unit-send",
        fun x ->
          let v = Array.make (d + 1) 0 in
          let s = min x d in
          for j = 0 to s - 1 do
            v.(j) <- 1
          done;
          v.(d) <- x - s;
          v );
      ( "front-loaded",
        (* All load on the first slot when small, else keep. *)
        fun x ->
          let v = Array.make (d + 1) 0 in
          if x <= ell then v.(0) <- x else v.(d) <- x;
          v );
      ( "pairs",
        (* Two tokens per slot. *)
        fun x ->
          let v = Array.make (d + 1) 0 in
          let rec fill j rem =
            if rem > 0 && j < d then begin
              let t = min 2 rem in
              v.(j) <- t;
              fill (j + 1) (rem - t)
            end
            else v.(d) <- rem
          in
          fill 0 x;
          v );
    ]
  in
  List.iter
    (fun (label, rule) ->
      let balancer, init = Baselines.Adversary_stateless.make_general g ~d ~rule in
      let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:200 () in
      Alcotest.(check (array int)) (label ^ ": frozen") init r.Core.Engine.final_loads)
    rules

let test_thm42_unit_send_is_stateless () =
  let d = 8 in
  let g = Baselines.Adversary_stateless.graph ~n:32 ~d in
  let balancer, _ = Baselines.Adversary_stateless.make g ~d in
  check_bool "stateless" true balancer.Core.Balancer.props.stateless

(* --- Theorem 4.3: rotor-router without self-loops on odd cycles --- *)

let test_thm43_period_two () =
  let n = 9 in
  let balancer, init = Baselines.Odd_cycle_adversary.setup ~n ~base_flow:(n - 1) in
  let g = Baselines.Odd_cycle_adversary.graph ~n in
  let r2 = Core.Engine.run ~graph:g ~balancer ~init ~steps:2 () in
  Alcotest.(check (array int)) "period 2" init r2.Core.Engine.final_loads

let test_thm43_discrepancy_never_improves () =
  List.iter
    (fun n ->
      let phi = (n - 1) / 2 in
      let balancer, init = Baselines.Odd_cycle_adversary.setup ~n ~base_flow:n in
      let g = Baselines.Odd_cycle_adversary.graph ~n in
      let init_disc = Core.Loads.discrepancy init in
      (* Run an odd number of steps then one more: both phases at full
         discrepancy. *)
      let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:101 () in
      let disc = Core.Loads.discrepancy r.Core.Engine.final_loads in
      check_bool
        (Printf.sprintf "n=%d: discrepancy %d stays ≥ 2dφ - 1 = %d" n disc
           ((4 * phi) - 1))
        true
        (disc >= (4 * phi) - 1);
      check_int (Printf.sprintf "n=%d: same in both phases" n) init_disc disc;
      (* Node 0 oscillates between (L+φ)·d and (L-φ)·d. *)
      let r1 = Core.Engine.run ~graph:g ~balancer:(fst (Baselines.Odd_cycle_adversary.setup ~n ~base_flow:n)) ~init ~steps:1 () in
      check_int
        (Printf.sprintf "n=%d: node 0 trough" n)
        (2 * (n - phi))
        r1.Core.Engine.final_loads.(0))
    [ 5; 9; 15; 33 ]

let test_thm43_amplitude_formula () =
  let n = 21 in
  let balancer, init = Baselines.Odd_cycle_adversary.setup ~n ~base_flow:n in
  let g = Baselines.Odd_cycle_adversary.graph ~n in
  let r1 = Core.Engine.run ~graph:g ~balancer ~init ~steps:1 () in
  let peak = init.(0) and trough = r1.Core.Engine.final_loads.(0) in
  check_int "peak-to-peak = 2dφ" (Baselines.Odd_cycle_adversary.expected_amplitude ~n)
    (peak - trough)

(* --- The contrast rows of Table 1 (dimension exchange beats Ω(d)) --- *)

let test_diffusive_vs_dimexch_contrast () =
  (* On the hypercube the balancing circuit reaches ≤ 3 while the Thm
     4.2 bound says no stateless diffusive algorithm can be forced
     below c·d in general. *)
  let g = Graphs.Gen.hypercube 5 in
  let init = Core.Loads.point_mass ~n:32 ~total:3200 in
  let r = Baselines.Dimexch.run Baselines.Dimexch.Balancing_circuit g ~init ~steps:400 in
  check_bool "dimension exchange constant" true
    (Core.Loads.discrepancy r.Baselines.Dimexch.final_loads <= 3)

let () =
  Alcotest.run "theorems"
    [
      ( "theorem 2.3",
        [
          Alcotest.test_case "expander sqrt(log n / mu)" `Slow test_thm23_expander;
          Alcotest.test_case "cycle sqrt(n)" `Slow test_thm23_cycle_sqrt_n;
          Alcotest.test_case "collapses K" `Slow test_thm23_much_better_than_initial;
          Alcotest.test_case "lemma 3.4 window dip" `Slow test_lemma34_window_dip;
          Alcotest.test_case "claim (iii) minimal laziness" `Slow
            test_thm23_claim_iii_minimal_laziness;
        ] );
      ( "theorem 3.3",
        [
          Alcotest.test_case "send-round reaches O(d)" `Slow
            test_thm33_send_round_reaches_od;
          Alcotest.test_case "rotor-router* reaches O(d)" `Slow
            test_thm33_rotor_router_star_reaches_od;
          Alcotest.test_case "s speeds up" `Slow test_thm33_faster_with_larger_s;
        ] );
      ( "theorem 4.1",
        [
          Alcotest.test_case "steady state" `Quick test_thm41_steady_state;
          Alcotest.test_case "omega(d diam)" `Quick test_thm41_discrepancy_omega_d_diam;
          Alcotest.test_case "flows round-fair" `Quick test_thm41_flows_are_round_fair_like;
        ] );
      ( "theorem 4.2",
        [
          Alcotest.test_case "frozen forever" `Quick test_thm42_frozen_forever;
          Alcotest.test_case "general rules frozen" `Quick test_thm42_general_rules_frozen;
          Alcotest.test_case "stateless" `Quick test_thm42_unit_send_is_stateless;
        ] );
      ( "theorem 4.3",
        [
          Alcotest.test_case "period two" `Quick test_thm43_period_two;
          Alcotest.test_case "never improves" `Quick test_thm43_discrepancy_never_improves;
          Alcotest.test_case "amplitude formula" `Quick test_thm43_amplitude_formula;
        ] );
      ( "contrast",
        [ Alcotest.test_case "dimexch beats Ω(d)" `Quick test_diffusive_vs_dimexch_contrast ] );
    ]
