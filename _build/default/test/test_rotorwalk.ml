(* Tests for single-agent rotor walks vs random walks (§1.2 related
   work: deterministic random walks / Propp machines). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_step_cycles_ports () =
  let g = Graphs.Gen.complete 4 in
  let w = Rotorwalk.Walk.create g in
  (* Node 0 fired 3 times visits each of its 3 neighbors once. *)
  let targets = List.init 3 (fun _ -> Rotorwalk.Walk.step w 0) in
  let sorted = List.sort_uniq compare targets in
  check_int "three distinct neighbors" 3 (List.length sorted)

let test_rotor_state_advances () =
  let g = Graphs.Gen.cycle 5 in
  let w = Rotorwalk.Walk.create g in
  let a = Rotorwalk.Walk.step w 0 in
  let b = Rotorwalk.Walk.step w 0 in
  check_bool "alternates neighbors" true (a <> b);
  let c = Rotorwalk.Walk.step w 0 in
  check_int "period 2 on degree-2 node" a c

let test_init_rotor_respected () =
  let g = Graphs.Gen.cycle 5 in
  let w0 = Rotorwalk.Walk.create g in
  let w1 = Rotorwalk.Walk.create g ~init_rotor:(fun _ -> 1) in
  check_bool "different first hop" true (Rotorwalk.Walk.step w0 0 <> Rotorwalk.Walk.step w1 0)

let test_walk_stays_on_graph () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let w = Rotorwalk.Walk.create g in
  let final = Rotorwalk.Walk.walk w ~start:5 ~steps:1000 in
  check_bool "valid node" true (final >= 0 && final < 16)

let test_cover_time_within_yanovski_bound () =
  List.iter
    (fun g ->
      let w = Rotorwalk.Walk.create g in
      match Rotorwalk.Walk.cover_time w ~start:0 with
      | None -> Alcotest.fail "rotor walk did not cover"
      | Some t ->
        let bound = Rotorwalk.Walk.yanovski_bound g in
        check_bool (Printf.sprintf "cover %d ≤ 2mD = %d" t bound) true (t <= bound))
    [
      Graphs.Gen.cycle 17;
      Graphs.Gen.torus [ 5; 5 ];
      Graphs.Gen.hypercube 5;
      Graphs.Gen.complete 9;
      Graphs.Gen.random_regular (Prng.Splitmix.create 3) ~n:50 ~d:4;
    ]

let test_cover_time_cap () =
  let g = Graphs.Gen.cycle 100 in
  let w = Rotorwalk.Walk.create g in
  match Rotorwalk.Walk.cover_time ~cap:10 w ~start:0 with
  | None -> ()
  | Some t -> Alcotest.failf "cannot cover 100-cycle in 10 steps (claimed %d)" t

let test_visits_count_total () =
  let g = Graphs.Gen.cycle 6 in
  let w = Rotorwalk.Walk.create g in
  let v = Rotorwalk.Walk.visits w ~start:0 ~steps:120 in
  check_int "total visits" 121 (Array.fold_left ( + ) 0 v);
  (* Rotor walks equidistribute visits on vertex-transitive graphs:
     after many steps, per-node visit counts are within a small band. *)
  let hi = Array.fold_left max 0 v and lo = Array.fold_left min max_int v in
  check_bool (Printf.sprintf "visit spread %d-%d" lo hi) true (hi - lo <= 4)

let test_random_walk_covers () =
  let g = Graphs.Gen.complete 8 in
  let rng = Prng.Splitmix.create 5 in
  match Rotorwalk.Walk.random_cover_time rng g ~start:0 with
  | None -> Alcotest.fail "random walk did not cover K8"
  | Some t -> check_bool "positive" true (t >= 7)

let test_random_hitting_time () =
  let g = Graphs.Gen.cycle 8 in
  let rng = Prng.Splitmix.create 6 in
  (match Rotorwalk.Walk.random_hitting_time rng g ~src:0 ~dst:0 with
  | Some 0 -> ()
  | _ -> Alcotest.fail "hitting self is 0");
  match Rotorwalk.Walk.random_hitting_time rng g ~src:0 ~dst:4 with
  | None -> Alcotest.fail "never hit antipode"
  | Some t -> check_bool "at least distance" true (t >= 4)

let prop_rotor_walk_deterministic =
  QCheck.Test.make ~name:"rotor walks are reproducible" ~count:50
    QCheck.(pair (int_range 3 20) (int_range 1 500))
    (fun (n, steps) ->
      let g = Graphs.Gen.cycle n in
      let a = Rotorwalk.Walk.walk (Rotorwalk.Walk.create g) ~start:0 ~steps in
      let b = Rotorwalk.Walk.walk (Rotorwalk.Walk.create g) ~start:0 ~steps in
      a = b)

let prop_cover_bound_random_regular =
  QCheck.Test.make ~name:"rotor cover within 2mD on random regular graphs" ~count:10
    QCheck.(int_range 10 40)
    (fun n ->
      let n = if n mod 2 = 1 then n + 1 else n in
      let g = Graphs.Gen.random_regular (Prng.Splitmix.create n) ~n ~d:3 in
      match Rotorwalk.Walk.cover_time (Rotorwalk.Walk.create g) ~start:0 with
      | None -> false
      | Some t -> t <= Rotorwalk.Walk.yanovski_bound g)

let () =
  Alcotest.run "rotorwalk"
    [
      ( "mechanics",
        [
          Alcotest.test_case "cycles ports" `Quick test_step_cycles_ports;
          Alcotest.test_case "rotor advances" `Quick test_rotor_state_advances;
          Alcotest.test_case "init rotor" `Quick test_init_rotor_respected;
          Alcotest.test_case "stays on graph" `Quick test_walk_stays_on_graph;
        ] );
      ( "cover times",
        [
          Alcotest.test_case "within 2mD" `Quick test_cover_time_within_yanovski_bound;
          Alcotest.test_case "cap respected" `Quick test_cover_time_cap;
          Alcotest.test_case "visit counts" `Quick test_visits_count_total;
          Alcotest.test_case "random walk covers" `Quick test_random_walk_covers;
          Alcotest.test_case "hitting time" `Quick test_random_hitting_time;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_rotor_walk_deterministic;
          QCheck_alcotest.to_alcotest prop_cover_bound_random_regular;
        ] );
    ]
