(* Tests for equation (7) (Core.Deviation), communication accounting
   (Core.Comm), the reference engine differential check, the bipartite
   double cover, and the extra load profiles. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Deviation / equation (7) --- *)

let test_deviation_shrinks_with_window () =
  let g = Graphs.Gen.torus [ 6; 6 ] in
  let n = 36 and d = 4 in
  let init = Core.Loads.point_mass ~n ~total:(20 * n) in
  let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:d in
  let burn_in =
    Graphs.Spectral.horizon ~gap ~n ~initial_discrepancy:(20 * n) ~c:8.0
  in
  let balancer = Core.Rotor_router.make g ~self_loops:d in
  let stats =
    Core.Deviation.measure ~graph:g ~balancer ~init ~burn_in ~windows:[ 1; 8; 64 ] ()
  in
  (match stats with
  | [ w1; _w8; w64 ] ->
    check_int "windows ordered" 1 w1.Core.Deviation.window;
    (* Longer windows average out the rounding noise. *)
    check_bool
      (Printf.sprintf "64-window (%.2f) ≤ 1-window (%.2f) + slack"
         w64.Core.Deviation.max_deviation w1.Core.Deviation.max_deviation)
      true
      (w64.Core.Deviation.max_deviation <= w1.Core.Deviation.max_deviation +. 0.5);
    check_bool "already balanced: small deviation" true
      (w1.Core.Deviation.max_deviation < 10.0);
    check_bool "long window very tight" true (w64.Core.Deviation.max_deviation < 5.0)
  | _ -> Alcotest.fail "expected three stats");
  ()

let test_deviation_within_eq7_bound () =
  (* The measured LHS of (7) must sit below the explicit RHS computed
     with the audited δ, the Prop A.2 remainder bound and the exact
     current sum (dense, small graph). *)
  let g = Graphs.Gen.cycle 12 in
  let d = 2 and d0 = 2 in
  let dp = d + d0 in
  let n = 12 in
  let init = Core.Loads.point_mass ~n ~total:(8 * n) in
  let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:d0 in
  let burn_in = Graphs.Spectral.horizon ~gap ~n ~initial_discrepancy:(8 * n) ~c:16.0 in
  let mix = Graphs.Mixing.create g ~self_loops:d0 in
  let current_sum =
    Graphs.Mixing.current_sum mix
      ~horizon:(int_of_float (24.0 *. log (float_of_int n) /. gap))
  in
  List.iter
    (fun window ->
      let balancer = Core.Rotor_router.make g ~self_loops:d0 in
      let stats =
        Core.Deviation.measure ~graph:g ~balancer ~init ~burn_in ~windows:[ window ] ()
      in
      let lhs = (List.hd stats).Core.Deviation.max_deviation in
      let rhs =
        Core.Deviation.rhs_bound ~delta:1 ~d_plus:dp ~remainder:dp ~current_sum ~window
      in
      check_bool (Printf.sprintf "T̂=%d: %.3f ≤ %.3f" window lhs rhs) true (lhs <= rhs))
    [ 1; 4; 32 ]

let test_deviation_rejects_bad_args () =
  let g = Graphs.Gen.cycle 4 in
  let balancer = Core.Send_floor.make g ~self_loops:1 in
  check_bool "bad window" true
    (try
       ignore
         (Core.Deviation.measure ~graph:g ~balancer ~init:[| 4; 0; 0; 0 |] ~burn_in:0
            ~windows:[ 0 ] ());
       false
     with Invalid_argument _ -> true)

(* --- Comm --- *)

let test_comm_counts_exactly_on_fixture () =
  (* send-floor on a 4-cycle, flat loads 8, d° = 2, d⁺ = 4: every node
     sends ⌊8/4⌋ = 2 on each of 2 original edges = 4 tokens/node/step. *)
  let g = Graphs.Gen.cycle 4 in
  let balancer, finish = Core.Comm.wrap (Core.Send_floor.make g ~self_loops:2) in
  let init = Core.Loads.flat ~n:4 ~value:8 in
  ignore (Core.Engine.run ~graph:g ~balancer ~init ~steps:10 ());
  let r = finish () in
  check_int "steps" 10 r.Core.Comm.steps;
  check_int "total" (10 * 4 * 4) r.Core.Comm.total_tokens_moved;
  check_int "per-step" (4 * 4) r.Core.Comm.max_step_tokens;
  check_int "last step" (4 * 4) r.Core.Comm.final_step_tokens;
  check_int "edge load" 2 r.Core.Comm.max_edge_load

let test_comm_self_loops_reduce_traffic () =
  (* Diffusive schemes shuttle ≈ x·d/d⁺ tokens per round even once
     balanced (the gross-flow price of needing no neighbor info); adding
     self-loops cuts the per-round traffic proportionally.  d° = 3d
     should move about half the tokens of d° = d at steady state. *)
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.flat ~n:16 ~value:64 in
  let measure d0 =
    let balancer, report = Core.Comm.wrap (Core.Send_floor.make g ~self_loops:d0) in
    ignore (Core.Engine.run ~graph:g ~balancer ~init ~steps:50 ());
    report ()
  in
  let lazy1 = measure 4 and lazy3 = measure 12 in
  (* exact: flat 64, d⁺=8: 8/port × 4 edges × 16 nodes = 512/step;
     d⁺=16: 4/port → 256/step. *)
  check_int "d°=d idle traffic" 512 lazy1.Core.Comm.final_step_tokens;
  check_int "d°=3d idle traffic" 256 lazy3.Core.Comm.final_step_tokens;
  check_bool "total halves" true
    (lazy3.Core.Comm.total_tokens_moved * 2 = lazy1.Core.Comm.total_tokens_moved)

let test_comm_transparent () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:555 in
  let plain =
    Core.Engine.run ~graph:g ~balancer:(Core.Send_round.make g ~self_loops:4) ~init
      ~steps:30 ()
  in
  let wrapped, _ = Core.Comm.wrap (Core.Send_round.make g ~self_loops:4) in
  let seen = Core.Engine.run ~graph:g ~balancer:wrapped ~init ~steps:30 () in
  Alcotest.(check (array int)) "identical" plain.Core.Engine.final_loads
    seen.Core.Engine.final_loads

(* --- reference engine differential --- *)

let test_reference_engine_agrees () =
  List.iter
    (fun (label, g, mk) ->
      let n = Graphs.Graph.n g in
      let init = Core.Loads.point_mass ~n ~total:(7 * n) in
      let fast =
        (Core.Engine.run ~graph:g ~balancer:(mk ()) ~init ~steps:20 ()).Core.Engine
          .final_loads
      in
      let slow = Core.Engine_ref.run ~graph:g ~balancer:(mk ()) ~init ~steps:20 in
      Alcotest.(check (array int)) (label ^ ": engines agree") fast slow)
    [
      ( "rotor-router/cycle",
        Graphs.Gen.cycle 9,
        fun () -> Core.Rotor_router.make (Graphs.Gen.cycle 9) ~self_loops:2 );
      ( "send-round/torus",
        Graphs.Gen.torus [ 3; 3 ],
        fun () -> Core.Send_round.make (Graphs.Gen.torus [ 3; 3 ]) ~self_loops:8 );
      ( "rotor-router*/K5",
        Graphs.Gen.complete 5,
        fun () -> Core.Rotor_router_star.make (Graphs.Gen.complete 5) );
    ]

let prop_engines_differential =
  QCheck.Test.make ~name:"optimized and reference engines always agree" ~count:30
    QCheck.(triple (int_range 3 10) (int_range 0 120) (int_range 0 2))
    (fun (n, total, which) ->
      let g = Graphs.Gen.cycle n in
      let mk () =
        match which with
        | 0 -> Core.Rotor_router.make g ~self_loops:2
        | 1 -> Core.Send_floor.make g ~self_loops:2
        | _ -> Core.Send_round.make g ~self_loops:2
      in
      let rng = Prng.Splitmix.create (n + total) in
      let init = Core.Loads.uniform_random rng ~n ~total in
      let fast =
        (Core.Engine.run ~graph:g ~balancer:(mk ()) ~init ~steps:12 ()).Core.Engine
          .final_loads
      in
      let slow = Core.Engine_ref.run ~graph:g ~balancer:(mk ()) ~init ~steps:12 in
      fast = slow)

(* --- double cover --- *)

let test_double_cover_structure () =
  let g = Graphs.Gen.cycle 5 in
  let dc = Graphs.Gen.bipartite_double_cover g in
  check_int "2n nodes" 10 (Graphs.Graph.n dc);
  check_int "same degree" 2 (Graphs.Graph.degree dc);
  check_bool "bipartite" true (Graphs.Props.is_bipartite dc);
  (* Double cover of an odd cycle is the single 2n-cycle: connected. *)
  check_bool "connected (base non-bipartite)" true (Graphs.Props.is_connected dc);
  check_int "it is C10" 5 (Graphs.Props.diameter dc)

let test_double_cover_of_bipartite_disconnects () =
  let g = Graphs.Gen.cycle 6 in
  let dc = Graphs.Gen.bipartite_double_cover g in
  check_bool "disconnected (base bipartite)" false (Graphs.Props.is_connected dc)

let test_double_cover_petersen () =
  let dc = Graphs.Gen.bipartite_double_cover (Graphs.Gen.petersen ()) in
  check_int "20 nodes" 20 (Graphs.Graph.n dc);
  check_bool "bipartite" true (Graphs.Props.is_bipartite dc);
  check_bool "connected" true (Graphs.Props.is_connected dc)

(* --- load profiles --- *)

let test_staircase () =
  Alcotest.(check (array int)) "staircase" [| 0; 3; 6; 9 |]
    (Core.Loads.staircase ~n:4 ~step:3)

let test_exponential_decay () =
  Alcotest.(check (array int)) "decay" [| 16; 8; 4; 2; 1; 0 |]
    (Core.Loads.exponential_decay ~n:6 ~top:16)

let () =
  Alcotest.run "deviation"
    [
      ( "equation (7)",
        [
          Alcotest.test_case "windows average out noise" `Quick
            test_deviation_shrinks_with_window;
          Alcotest.test_case "within eq(7) bound" `Quick test_deviation_within_eq7_bound;
          Alcotest.test_case "rejects bad args" `Quick test_deviation_rejects_bad_args;
        ] );
      ( "communication",
        [
          Alcotest.test_case "exact fixture" `Quick test_comm_counts_exactly_on_fixture;
          Alcotest.test_case "self-loops reduce traffic" `Quick
            test_comm_self_loops_reduce_traffic;
          Alcotest.test_case "transparent" `Quick test_comm_transparent;
        ] );
      ( "reference engine",
        [
          Alcotest.test_case "agree on fixtures" `Quick test_reference_engine_agrees;
          QCheck_alcotest.to_alcotest prop_engines_differential;
        ] );
      ( "double cover",
        [
          Alcotest.test_case "odd cycle" `Quick test_double_cover_structure;
          Alcotest.test_case "even cycle disconnects" `Quick
            test_double_cover_of_bipartite_disconnects;
          Alcotest.test_case "petersen" `Quick test_double_cover_petersen;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "staircase" `Quick test_staircase;
          Alcotest.test_case "exponential" `Quick test_exponential_decay;
        ] );
    ]
