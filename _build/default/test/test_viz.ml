(* Tests for the SVG plotting library. *)

let check_bool = Alcotest.(check bool)
let contains s sub =
  let ls = String.length s and lu = String.length sub in
  let rec go i = i + lu <= ls && (String.sub s i lu = sub || go (i + 1)) in
  go 0

let count_occurrences s sub =
  let ls = String.length s and lu = String.length sub in
  let rec go i acc =
    if i + lu > ls then acc
    else if String.sub s i lu = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* --- Svg primitives --- *)

let test_escape () =
  Alcotest.(check string) "amp" "a&amp;b" (Viz.Svg.escape_text "a&b");
  Alcotest.(check string) "angle" "&lt;tag&gt;" (Viz.Svg.escape_text "<tag>");
  Alcotest.(check string) "quote" "&quot;x&apos;" (Viz.Svg.escape_text "\"x'")

let test_document_structure () =
  let doc =
    Viz.Svg.document ~width:100.0 ~height:50.0
      [
        Viz.Svg.rect ~x:0.0 ~y:0.0 ~w:10.0 ~h:10.0 ~fill:"#ff0000" ();
        Viz.Svg.circle ~cx:5.0 ~cy:5.0 ~r:2.0 ~fill:"#00ff00";
        Viz.Svg.line ~x1:0.0 ~y1:0.0 ~x2:9.0 ~y2:9.0 ~stroke:"#000000" ();
        Viz.Svg.text ~x:1.0 ~y:1.0 "hello & goodbye";
      ]
  in
  let s = Viz.Svg.to_string doc in
  check_bool "xml header" true (contains s "<?xml");
  check_bool "viewBox" true (contains s "viewBox=\"0 0 100.00 50.00\"");
  check_bool "rect" true (contains s "<rect");
  check_bool "circle" true (contains s "<circle");
  check_bool "line" true (contains s "<line");
  check_bool "escaped text" true (contains s "hello &amp; goodbye");
  check_bool "closes" true (contains s "</svg>")

let test_polyline () =
  let s =
    Viz.Svg.to_string
      (Viz.Svg.document ~width:10.0 ~height:10.0
         [ Viz.Svg.polyline ~points:[ (0.0, 0.0); (1.0, 2.0); (3.0, 1.0) ] ~stroke:"#123456" () ])
  in
  check_bool "points attr" true (contains s "points=\"0.00,0.00 1.00,2.00 3.00,1.00\"");
  check_bool "unfilled" true (contains s "fill=\"none\"")

let test_color_ramps () =
  Alcotest.(check string) "gray low" "#ffffff" (Viz.Svg.gray 0.0);
  Alcotest.(check string) "gray high" "#000000" (Viz.Svg.gray 1.0);
  Alcotest.(check string) "gray clamped" "#000000" (Viz.Svg.gray 5.0);
  Alcotest.(check string) "heat low" "#ffffff" (Viz.Svg.heat 0.0);
  check_bool "heat high is reddish" true (String.sub (Viz.Svg.heat 1.0) 1 2 = "cc");
  check_bool "heat mid has green" true (Viz.Svg.heat 0.5 <> Viz.Svg.heat 1.0)

let test_write_file () =
  let path = Filename.temp_file "loadbal" ".svg" in
  Viz.Svg.write ~path
    (Viz.Svg.document ~width:10.0 ~height:10.0
       [ Viz.Svg.circle ~cx:5.0 ~cy:5.0 ~r:1.0 ~fill:"#000000" ]);
  let ic = open_in path in
  let content = In_channel.input_all ic in
  close_in ic;
  Sys.remove path;
  check_bool "file has svg" true (contains content "<svg")

(* --- Plots --- *)

let test_torus_heatmap () =
  let loads = Array.init 16 (fun i -> i) in
  let doc = Viz.Plots.torus_heatmap ~side:4 ~loads ~title:"t" () in
  let s = Viz.Svg.to_string doc in
  Alcotest.(check int) "16 cells" 16 (count_occurrences s "<rect");
  check_bool "legend" true (contains s "min 0 (white) .. max 15 (red)")

let test_torus_heatmap_flat () =
  (* Flat loads must not divide by zero. *)
  let doc = Viz.Plots.torus_heatmap ~side:3 ~loads:(Array.make 9 7) () in
  check_bool "renders" true (String.length (Viz.Svg.to_string doc) > 0)

let test_torus_heatmap_rejects_mismatch () =
  check_bool "rejected" true
    (try
       ignore (Viz.Plots.torus_heatmap ~side:4 ~loads:(Array.make 9 0) ());
       false
     with Invalid_argument _ -> true)

let test_cycle_heatmap () =
  let doc = Viz.Plots.cycle_heatmap ~loads:(Array.init 12 (fun i -> i * i)) () in
  let s = Viz.Svg.to_string doc in
  Alcotest.(check int) "12 dots" 12 (count_occurrences s "<circle")

let test_discrepancy_plot () =
  let s1 = [| (0, 100); (10, 50); (20, 10) |] in
  let s2 = [| (0, 100); (10, 80); (20, 60) |] in
  let doc =
    Viz.Plots.discrepancy_plot ~series:[ s1; s2 ] ~labels:[ "fast"; "slow" ]
      ~title:"race" ()
  in
  let s = Viz.Svg.to_string doc in
  Alcotest.(check int) "two curves" 2 (count_occurrences s "<polyline");
  check_bool "legend fast" true (contains s ">fast</text>");
  check_bool "legend slow" true (contains s ">slow</text>");
  check_bool "title" true (contains s ">race</text>")

let test_discrepancy_plot_log () =
  let s1 = [| (0, 1000); (5, 10); (10, 1) |] in
  let doc = Viz.Plots.discrepancy_plot ~series:[ s1 ] ~labels:[ "x" ] ~log_y:true () in
  check_bool "log label" true (contains (Viz.Svg.to_string doc) "log disc")

let test_discrepancy_plot_rejects () =
  check_bool "label mismatch" true
    (try
       ignore (Viz.Plots.discrepancy_plot ~series:[ [| (0, 1) |] ] ~labels:[] ());
       false
     with Invalid_argument _ -> true);
  check_bool "empty series" true
    (try
       ignore (Viz.Plots.discrepancy_plot ~series:[ [||] ] ~labels:[ "x" ] ());
       false
     with Invalid_argument _ -> true)

let test_end_to_end_with_engine () =
  (* Produce a real plot from a real run — the integration the examples
     rely on. *)
  let g = Graphs.Gen.torus [ 6; 6 ] in
  let init = Core.Loads.point_mass ~n:36 ~total:720 in
  let r =
    Core.Engine.run ~sample_every:5 ~graph:g
      ~balancer:(Core.Rotor_router.make g ~self_loops:4)
      ~init ~steps:100 ()
  in
  let curve =
    Viz.Plots.discrepancy_plot ~series:[ r.Core.Engine.series ]
      ~labels:[ "rotor-router" ] ()
  in
  let heat = Viz.Plots.torus_heatmap ~side:6 ~loads:r.Core.Engine.final_loads () in
  check_bool "curve ok" true (String.length (Viz.Svg.to_string curve) > 200);
  check_bool "heat ok" true (String.length (Viz.Svg.to_string heat) > 200)

let prop_heatmap_cell_count =
  QCheck.Test.make ~name:"heatmap emits side² cells" ~count:30
    QCheck.(int_range 1 12)
    (fun side ->
      let loads = Array.init (side * side) (fun i -> i mod 5) in
      let s = Viz.Svg.to_string (Viz.Plots.torus_heatmap ~side ~loads ()) in
      count_occurrences s "<rect" = side * side)

let () =
  Alcotest.run "viz"
    [
      ( "svg",
        [
          Alcotest.test_case "escape" `Quick test_escape;
          Alcotest.test_case "document" `Quick test_document_structure;
          Alcotest.test_case "polyline" `Quick test_polyline;
          Alcotest.test_case "color ramps" `Quick test_color_ramps;
          Alcotest.test_case "write file" `Quick test_write_file;
        ] );
      ( "plots",
        [
          Alcotest.test_case "torus heatmap" `Quick test_torus_heatmap;
          Alcotest.test_case "flat heatmap" `Quick test_torus_heatmap_flat;
          Alcotest.test_case "heatmap mismatch" `Quick test_torus_heatmap_rejects_mismatch;
          Alcotest.test_case "cycle heatmap" `Quick test_cycle_heatmap;
          Alcotest.test_case "discrepancy plot" `Quick test_discrepancy_plot;
          Alcotest.test_case "log plot" `Quick test_discrepancy_plot_log;
          Alcotest.test_case "rejects bad input" `Quick test_discrepancy_plot_rejects;
          Alcotest.test_case "end to end" `Quick test_end_to_end_with_engine;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_heatmap_cell_count ]);
    ]
