(** Sampling utilities built on {!Splitmix}. *)

val shuffle : Splitmix.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : Splitmix.t -> int -> int array
(** [permutation g n] is a uniformly random permutation of [0..n-1]. *)

val choice : Splitmix.t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val sample_without_replacement : Splitmix.t -> int -> int -> int array
(** [sample_without_replacement g k n] draws [k] distinct values from
    [0..n-1], in random order.  @raise Invalid_argument if [k > n] or
    [k < 0]. *)

val multinomial_tokens : Splitmix.t -> tokens:int -> bins:int -> int array
(** [multinomial_tokens g ~tokens ~bins] throws [tokens] indivisible
    tokens independently and uniformly into [bins] bins and returns the
    occupancy vector.  Used by the randomized-diffusion baselines. *)

val geometric_split : Splitmix.t -> total:int -> parts:int -> int array
(** [geometric_split g ~total ~parts] returns a uniformly random
    composition of [total] into [parts] non-negative summands (stars and
    bars).  Used to produce adversarial-ish random initial loads. *)
