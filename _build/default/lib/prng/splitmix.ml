(* SplitMix64, after Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014).  The golden-gamma constant and the
   two finalizers are the reference ones. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy g = { state = g.state }

let next64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = next64 g in
  { state = mix64 s }

let int g bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (next64 g) 2) land mask in
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then draw () else r
  in
  draw ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Splitmix.int_in: empty range";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (next64 g) 1L = 1L

let float g bound =
  (* 53 uniform bits mapped into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next64 g) 11) in
  let u = float_of_int bits /. 9007199254740992.0 in
  u *. bound

let bernoulli g p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float g 1.0 < p
