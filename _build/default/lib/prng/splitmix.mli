(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All randomized components of the library draw from this generator so
    that every simulation is reproducible from a single integer seed.
    The generator is splittable: {!split} derives an independent stream,
    which lets parallel experiment sweeps share a master seed without
    correlating their draws. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from a 63-bit seed.  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy g] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be
    positive.  @raise Invalid_argument otherwise. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p] (clamped to
    [\[0, 1\]]). *)
