lib/prng/sample.mli: Splitmix
