lib/prng/sample.ml: Array Splitmix
