lib/prng/splitmix.mli:
