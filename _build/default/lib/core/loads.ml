let require_nonempty name a =
  if Array.length a = 0 then invalid_arg ("Loads." ^ name ^ ": empty load vector")

let total a = Array.fold_left ( + ) 0 a

let max_load a =
  require_nonempty "max_load" a;
  Array.fold_left max a.(0) a

let min_load a =
  require_nonempty "min_load" a;
  Array.fold_left min a.(0) a

let discrepancy a = max_load a - min_load a

let average a =
  require_nonempty "average" a;
  float_of_int (total a) /. float_of_int (Array.length a)

let balancedness a = float_of_int (max_load a) -. average a

let initial_discrepancy = discrepancy

let point_mass ~n ~total =
  if n <= 0 then invalid_arg "Loads.point_mass: n <= 0";
  if total < 0 then invalid_arg "Loads.point_mass: negative total";
  let a = Array.make n 0 in
  a.(0) <- total;
  a

let uniform_random g ~n ~total =
  if n <= 0 then invalid_arg "Loads.uniform_random: n <= 0";
  Prng.Sample.multinomial_tokens g ~tokens:total ~bins:n

let bimodal ~n ~high ~low =
  if n <= 0 then invalid_arg "Loads.bimodal: n <= 0";
  Array.init n (fun i -> if i < n / 2 then high else low)

let random_composition g ~n ~total =
  if n <= 0 then invalid_arg "Loads.random_composition: n <= 0";
  Prng.Sample.geometric_split g ~total ~parts:n

let flat ~n ~value =
  if n <= 0 then invalid_arg "Loads.flat: n <= 0";
  Array.make n value

let staircase ~n ~step =
  if n <= 0 then invalid_arg "Loads.staircase: n <= 0";
  if step < 0 then invalid_arg "Loads.staircase: negative step";
  Array.init n (fun i -> i * step)

let exponential_decay ~n ~top =
  if n <= 0 then invalid_arg "Loads.exponential_decay: n <= 0";
  if top < 0 then invalid_arg "Loads.exponential_decay: negative top";
  Array.init n (fun i -> if i >= 62 then 0 else top lsr i)
