(** The token-coloring argument of Lemma 3.5, executable.

    The proof of Lemma 3.5 colors the m tokens black and red: node u
    holds exactly min(x_t(u), c·d⁺) black tokens, and the circulation
    rules are

    (1) no edge (or self-loop) ever carries more than c black tokens;
    (2) at the start of each step, red tokens are recolored black so the
        count returns to min(x_t(u), c·d⁺) — and {e only} red→black
        recolorings are ever needed.

    φ_t(c) is then the number of red tokens, so monotonicity and the
    quantified drop ∆_t(c,u) follow from counting recolorings.

    This module executes those rules alongside a live engine run of a
    good s-balancer and checks each step of the argument numerically:

    - feasibility of rule (1): when x_t(u) ≤ c·d⁺ every port carries at
      most c tokens (this is where round-fairness enters);
    - no black→red recoloring is ever forced (black arrivals never
      exceed min(x_{t+1}, c·d⁺));
    - the recoloring count at u dominates the lemma's ∆_t(c,u);
    - φ_t(c) equals m − (total black), i.e. the number of red tokens.

    A violation of any check falsifies the lemma on this run; the report
    says which (they never fire for genuine good s-balancers). *)

type report = {
  c : int;
  steps_checked : int;
  rule1_ok : bool;
      (** every port of every ≤-threshold node carried ≤ c tokens *)
  no_forced_downgrade : bool;
      (** black arrivals never exceeded the new black quota *)
  drop_dominated : bool;
      (** per-node recolorings ≥ Lemma 3.5's ∆_t(c,u) every step *)
  phi_equals_red : bool;
      (** φ_t(c) = #red tokens at every step *)
  total_recolored : int; (** = φ_1(c) − φ_final(c) when all checks pass *)
}

val check :
  graph:Graphs.Graph.t ->
  balancer:Balancer.t ->
  s:int ->
  c:int ->
  init:int array ->
  steps:int ->
  report
(** Run [balancer] for [steps] rounds from [init] while executing the
    coloring argument at threshold [c] with self-preference [s].  The
    balancer must be fresh (not previously stepped). *)

val check_gap :
  graph:Graphs.Graph.t ->
  balancer:Balancer.t ->
  s:int ->
  c:int ->
  init:int array ->
  steps:int ->
  report
(** The symmetric argument of Lemma 3.7: black quota min(x, c·d⁺ + s),
    rule (1) caps black tokens at c per {e original} edge, and
    s-self-preference lets up to s′ = min(x − c·d⁺, s) self-loops carry
    c+1 black when the node is above the threshold.  φ′_t(c) is then
    the number of missing-black slots, (c·d⁺+s)·n − Σ black; the report
    fields have the same meaning with ∆′ in place of ∆ and
    [total_recolored] = φ′ drop. *)
