lib/core/fairness.ml: Array Format
