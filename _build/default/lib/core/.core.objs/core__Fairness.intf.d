lib/core/fairness.mli: Format
