lib/core/rotor_router_star.ml: Array Balancer Graphs Rotor_router
