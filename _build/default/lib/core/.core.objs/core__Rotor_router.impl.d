lib/core/rotor_router.ml: Array Balancer Graphs Printf
