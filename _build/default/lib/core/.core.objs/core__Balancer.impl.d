lib/core/balancer.ml: Array Printf
