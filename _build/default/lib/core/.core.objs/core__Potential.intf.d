lib/core/potential.mli:
