lib/core/dynamic.ml: Array Engine Graphs List Loads Prng
