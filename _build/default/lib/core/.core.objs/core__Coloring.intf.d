lib/core/coloring.mli: Balancer Graphs
