lib/core/comm.mli: Balancer Format
