lib/core/potential.ml: Array List
