lib/core/comm.ml: Array Balancer Format Tap
