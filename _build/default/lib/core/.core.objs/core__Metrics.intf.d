lib/core/metrics.mli:
