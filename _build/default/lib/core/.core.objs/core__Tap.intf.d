lib/core/tap.mli: Balancer
