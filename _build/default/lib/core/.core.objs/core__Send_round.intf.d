lib/core/send_round.mli: Balancer Graphs
