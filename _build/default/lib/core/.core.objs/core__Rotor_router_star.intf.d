lib/core/rotor_router_star.mli: Balancer Graphs
