lib/core/engine_ref.ml: Array Balancer Graphs List Printf
