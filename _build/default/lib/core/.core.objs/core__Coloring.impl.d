lib/core/coloring.ml: Array Balancer Engine Graphs Loads Potential Tap
