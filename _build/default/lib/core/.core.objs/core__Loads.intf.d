lib/core/loads.mli: Prng
