lib/core/remainder.mli: Balancer
