lib/core/metrics.ml: Array Buffer List Loads
