lib/core/rotor_router.mli: Balancer Graphs
