lib/core/deviation.ml: Array Engine Graphs Hashtbl List Loads
