lib/core/engine.mli: Balancer Fairness Graphs
