lib/core/balancer.mli: Result
