lib/core/dynamic.mli: Balancer Graphs Prng
