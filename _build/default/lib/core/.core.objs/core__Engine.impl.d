lib/core/engine.ml: Array Balancer Fairness Graphs List Option Printf
