lib/core/send_floor.ml: Array Balancer Graphs Printf
