lib/core/loads.ml: Array Prng
