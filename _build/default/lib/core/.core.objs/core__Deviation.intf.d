lib/core/deviation.mli: Balancer Graphs
