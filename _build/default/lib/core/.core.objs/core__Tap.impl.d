lib/core/tap.ml: Balancer
