lib/core/send_round.ml: Array Balancer Graphs Printf
