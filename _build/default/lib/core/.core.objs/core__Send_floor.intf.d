lib/core/send_floor.mli: Balancer Graphs
