lib/core/remainder.ml: Array Balancer Tap
