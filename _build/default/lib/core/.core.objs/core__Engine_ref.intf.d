lib/core/engine_ref.mli: Balancer Graphs
