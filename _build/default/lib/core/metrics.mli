(** Time-series metrics beyond the engine's built-in discrepancy
    series: balancedness, the quadratic potential Σ(x−x̄)² that
    continuous-diffusion analyses contract, and load extrema — recorded
    through an engine hook, rendered as tables or Unicode sparklines. *)

type sample = {
  step : int;
  discrepancy : int;
  balancedness : float; (** max − average *)
  quadratic : float;    (** Σ_v (x_v − x̄)² *)
  max_load : int;
  min_load : int;
}

type t

val recorder : ?every:int -> unit -> t * (int -> int array -> unit)
(** [recorder ~every ()] returns a collector and an engine hook that
    samples every [every]-th step (default 1).  Feed step 0 by calling
    the hook manually with the initial loads if wanted. *)

val samples : t -> sample array
(** Samples in step order. *)

val quadratic_potential : int array -> float

val sparkline : ?width:int -> float array -> string
(** Render a series as a Unicode sparkline (▁▂▃▄▅▆▇█), resampled to
    [width] (default: series length, capped at 60).  Empty input gives
    an empty string. *)

val discrepancy_sparkline : ?width:int -> t -> string
(** Sparkline of the recorded discrepancy series. *)
