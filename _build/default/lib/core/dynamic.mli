(** Open-system balancing: tokens keep arriving (and optionally
    departing) while the balancer runs — the regime production systems
    actually face, one synchronous balancing step per round.

    The paper's guarantees are for the closed system, but its algorithms
    are local and restart-free, so they apply verbatim; this module
    measures the steady-state discrepancy band they hold under load. *)

type injection =
  | Uniform_batch of { rng : Prng.Splitmix.t; per_round : int }
      (** [per_round] tokens thrown at uniform random nodes each round *)
  | Point_batch of { node : int; per_round : int }
      (** adversarial: the whole batch lands on one node *)
  | Max_loaded_batch of { per_round : int }
      (** worst case: the batch lands on the currently fullest node *)

type departure =
  | No_departure
  | Uniform_work of { rng : Prng.Splitmix.t; per_round : int }
      (** each round, up to [per_round] tokens complete at uniform
          random non-empty nodes *)

type result = {
  rounds_run : int;
  final_loads : int array;
  series : (int * int) array;     (** per-round discrepancy *)
  steady_mean : float;            (** mean discrepancy over the second half *)
  steady_p95 : float;
  steady_max : int;
  total_injected : int;
  total_departed : int;
}

val run :
  ?departure:departure ->
  graph:Graphs.Graph.t ->
  balancer:Balancer.t ->
  injection:injection ->
  init:int array ->
  rounds:int ->
  unit ->
  result
(** Each round: inject, (optionally) depart, then one balancing step.
    The balancer's internal state (rotors, accumulators) persists across
    rounds. *)
