type window_stat = {
  window : int;
  start_step : int;
  max_deviation : float;
}

let measure ~graph ~balancer ~init ~burn_in ~windows () =
  if burn_in < 0 then invalid_arg "Deviation.measure: negative burn-in";
  List.iter (fun w -> if w < 1 then invalid_arg "Deviation.measure: window < 1") windows;
  let n = Graphs.Graph.n graph in
  let horizon = List.fold_left max 1 windows in
  let steps = burn_in + horizon in
  let xbar = Loads.average init in
  (* Running prefix sums of the post-burn-in loads per node. *)
  let sums = Array.make n 0 in
  let snapshots =
    (* For each requested window, capture the sums at offset = window. *)
    Hashtbl.create (List.length windows)
  in
  let hook t loads =
    if t > burn_in then begin
      for u = 0 to n - 1 do
        sums.(u) <- sums.(u) + loads.(u)
      done;
      let offset = t - burn_in in
      if List.mem offset windows then Hashtbl.replace snapshots offset (Array.copy sums)
    end
  in
  ignore (Engine.run ~hook ~graph ~balancer ~init ~steps ());
  List.map
    (fun w ->
      let s =
        match Hashtbl.find_opt snapshots w with
        | Some s -> s
        | None -> assert false
      in
      let dev = ref 0.0 in
      Array.iter
        (fun total ->
          let avg = float_of_int total /. float_of_int w in
          let d = abs_float (avg -. xbar) in
          if d > !dev then dev := d)
        s;
      { window = w; start_step = burn_in; max_deviation = !dev })
    windows

let rhs_bound ~delta ~d_plus ~remainder ~current_sum ~window =
  let a = float_of_int ((delta * d_plus) + (2 * remainder)) in
  let b = float_of_int ((delta * d_plus) + remainder) *. (1.0 +. current_sum) in
  0.25 +. a +. (b /. float_of_int window)
