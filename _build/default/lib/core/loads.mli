(** Load vectors and the metrics the paper states its results in. *)

val total : int array -> int
val max_load : int array -> int
val min_load : int array -> int

val discrepancy : int array -> int
(** max load − min load (the paper's central quantity). *)

val average : int array -> float

val balancedness : int array -> float
(** max load − average load (the paper's "balancedness" gap). *)

val initial_discrepancy : int array -> int
(** Alias of {!discrepancy}; the paper's K when applied to x₁. *)

(** {1 Initial distributions} *)

val point_mass : n:int -> total:int -> int array
(** All [total] tokens on node 0. *)

val uniform_random : Prng.Splitmix.t -> n:int -> total:int -> int array
(** Tokens thrown independently and uniformly at nodes. *)

val bimodal : n:int -> high:int -> low:int -> int array
(** First half of the nodes get [high], second half [low] (odd [n]: the
    middle node gets [low]). *)

val random_composition : Prng.Splitmix.t -> n:int -> total:int -> int array
(** Uniformly random composition of [total] over the [n] nodes —
    heavier-tailed than {!uniform_random}. *)

val flat : n:int -> value:int -> int array

val staircase : n:int -> step:int -> int array
(** Node i gets i·step tokens — the graded profile the Theorem 4.1
    adversary sustains. *)

val exponential_decay : n:int -> top:int -> int array
(** Node i gets max(top / 2^i, 0) tokens — a heavy-head profile. *)
