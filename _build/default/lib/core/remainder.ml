type report = {
  max_abs_remainder : int;
  remainder_bound : int;
  bound_ok : bool;
  observations : int;
}

let wrap (a : Balancer.t) =
  if a.Balancer.self_loops < 1 then
    invalid_arg "Remainder.wrap: balancer has no self-loops";
  let d = a.Balancer.degree in
  let dp = Balancer.d_plus a in
  let max_rem = ref 0 in
  let observations = ref 0 in
  let on_assign ~step:_ ~node:_ ~load:_ ~ports =
    incr observations;
    (* A′ gives every self-loop exactly what original port 0 sends, so
       all d⁺ cumulative flows advance in lock-step with edge 0 and the
       all-edge spread of A′ equals A's original-edge spread.  The
       remainder is whatever A kept beyond those virtual self-loop
       sends. *)
    let self_total = ref 0 in
    for k = d to dp - 1 do
      self_total := !self_total + ports.(k)
    done;
    let r = !self_total - (a.Balancer.self_loops * ports.(0)) in
    if abs r > !max_rem then max_rem := abs r
  in
  let finish () =
    {
      max_abs_remainder = !max_rem;
      remainder_bound = dp;
      bound_ok = !max_rem <= dp;
      observations = !observations;
    }
  in
  (Tap.wrap a ~on_assign, finish)
