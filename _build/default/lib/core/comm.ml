type report = {
  steps : int;
  total_tokens_moved : int;
  max_step_tokens : int;
  final_step_tokens : int;
  max_edge_load : int;
}

let wrap (b : Balancer.t) =
  let d = b.Balancer.degree in
  let total = ref 0 in
  let max_step = ref 0 in
  let max_edge = ref 0 in
  let current_step = ref 0 in
  let step_tokens = ref 0 in
  let last_complete = ref 0 in
  let flush_step () =
    if !step_tokens > !max_step then max_step := !step_tokens;
    last_complete := !step_tokens;
    step_tokens := 0
  in
  let on_assign ~step ~node:_ ~load:_ ~ports =
    if step <> !current_step then begin
      if !current_step > 0 then flush_step ();
      current_step := step
    end;
    for k = 0 to d - 1 do
      let v = max 0 ports.(k) in
      total := !total + v;
      step_tokens := !step_tokens + v;
      if v > !max_edge then max_edge := v
    done
  in
  let finish () =
    if !current_step > 0 then flush_step ();
    {
      steps = !current_step;
      total_tokens_moved = !total;
      max_step_tokens = !max_step;
      final_step_tokens = !last_complete;
      max_edge_load = !max_edge;
    }
  in
  (Tap.wrap b ~on_assign, finish)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>steps: %d@ tokens moved: %d@ busiest round: %d@ last round: %d@ \
     max single-edge transfer: %d@]"
    r.steps r.total_tokens_moved r.max_step_tokens r.final_step_tokens r.max_edge_load
