(** SEND(⌊x/d⁺⌋): the stateless cumulatively 0-fair balancer
    (Observation 2.2).

    A node with load x sends exactly ⌊x/d⁺⌋ tokens over every original
    edge; the remaining x − d·⌊x/d⁺⌋ tokens go to the self-loops, each
    of which receives at least ⌊x/d⁺⌋ (the excess x mod d⁺ is placed on
    the first self-loop). *)

val make : Graphs.Graph.t -> self_loops:int -> Balancer.t
(** @raise Invalid_argument if [self_loops < 1] — the excess needs a
    self-loop to sit on. *)
