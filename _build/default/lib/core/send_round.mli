(** SEND([x/d⁺]): the stateless round-to-nearest balancer
    (Observations 2.2 and 3.2).

    A node with load x sends [x/d⁺] — x/d⁺ rounded to the nearest
    integer, half up — over every original edge.  The remaining tokens
    are spread over the self-loops one extra token per loop, so that
    every port receives ⌊x/d⁺⌋ or ⌈x/d⁺⌉ (round-fairness).

    Class membership (verified by the {!Fairness} auditor):
    - cumulatively 0-fair for any d° ≥ d;
    - a good s-balancer with s = ⌈(d⁺ − 2d) / 2⌉ for d⁺ > 2d.  (The
      paper's Observation 3.2 states s = d⁺ − 2d; rounding half {e up}
      makes the originals take ⌈⌉ whenever x mod d⁺ ≥ d⁺/2, which leaves
      only x mod d⁺ − d ≥ (d⁺ − 2d)/2 ceil-tokens for the self-loops,
      so the literal algorithm self-prefers at level (d⁺ − 2d)/2.  The
      asymptotics of Theorem 3.3 are unchanged: d° ≥ 3d still gives
      s = Ω(d).) *)

val make : Graphs.Graph.t -> self_loops:int -> Balancer.t
(** @raise Invalid_argument if [self_loops < degree] — rounding up needs
    d° ≥ d so the self-loops can absorb the deficit. *)
