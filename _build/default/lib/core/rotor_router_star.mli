(** ROTOR-ROUTER*, the good 1-balancer variant (Observation 3.2).

    Each node has d° = d self-loops, so d⁺ = 2d.  One special self-loop
    always receives ⌈x/(2d)⌉ tokens; the remaining x − ⌈x/(2d)⌉ tokens
    are distributed by an ordinary rotor-router over the other 2d − 1
    ports (the d original edges and the d − 1 plain self-loops). *)

val make : ?init_rotor:(int -> int) -> Graphs.Graph.t -> Balancer.t
(** [make g] builds ROTOR-ROUTER* for [g].  [init_rotor u] (default 0)
    is node [u]'s starting rotor position over its 2d − 1 rotor ports. *)
