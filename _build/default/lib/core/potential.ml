let phi ~d_plus ~c loads =
  let thresh = c * d_plus in
  Array.fold_left (fun acc x -> acc + max (x - thresh) 0) 0 loads

let phi' ~d_plus ~s ~c loads =
  let thresh = (c * d_plus) + s in
  Array.fold_left (fun acc x -> acc + max (thresh - x) 0) 0 loads

(* Appendix B.2 closed form: max{min{x_{t-1}-cd+, s} - max{x_t-cd+, 0}, 0}. *)
let drop ~d_plus ~s ~c ~before ~after =
  let t = c * d_plus in
  max (min (before - t) s - max (after - t) 0) 0

(* Appendix B.3 closed form:
   max{min{x_t - x_{t-1}, s, x_t - cd+, cd+ + s - x_{t-1}}, 0}. *)
let drop' ~d_plus ~s ~c ~before ~after =
  let t = c * d_plus in
  max (min (min (after - before) s) (min (after - t) (t + s - before))) 0

let c_ladder ~d_plus ~lo_load ~hi_load =
  if d_plus <= 0 then invalid_arg "Potential.c_ladder";
  let c_lo = int_of_float (ceil (float_of_int lo_load /. float_of_int d_plus)) in
  let c_hi = hi_load / d_plus in
  if c_hi < c_lo then []
  else List.init (c_hi - c_lo + 1) (fun i -> c_lo + i)

type trace = { c : int; values : (int * int) array }

let tracker ~d_plus ~s ~cs () =
  let cs = Array.of_list cs in
  let acc = Array.map (fun _ -> ref []) cs in
  let acc' = Array.map (fun _ -> ref []) cs in
  let hook step loads =
    Array.iteri
      (fun i c ->
        acc.(i) := (step, phi ~d_plus ~c loads) :: !(acc.(i));
        acc'.(i) := (step, phi' ~d_plus ~s ~c loads) :: !(acc'.(i)))
      cs
  in
  let finish () =
    let mk source =
      Array.to_list
        (Array.mapi
           (fun i c -> { c; values = Array.of_list (List.rev !(source.(i))) })
           cs)
    in
    (mk acc, mk acc')
  in
  (hook, finish)
