(** A deliberately naive reference engine for differential testing.

    Moves tokens one at a time through association lists — slow, obvious
    and independent of {!Engine}'s optimized array code.  Any divergence
    between the two on the same balancer assignments is a bug in one of
    them; the test suite compares them on randomized configurations. *)

val run :
  graph:Graphs.Graph.t ->
  balancer:Balancer.t ->
  init:int array ->
  steps:int ->
  int array
(** Final loads after [steps] synchronous rounds.  The balancer must be
    fresh and is consumed (internal state advances).  Invariants are
    checked with plain exceptions (Failure). *)
