(** The synchronous balancing engine.

    Executes the paper's model (§1.3): in every step, every node runs
    its balancer's [assign] simultaneously on its current load; tokens
    placed on original ports move to the neighbor, tokens placed on
    self-loop ports stay.  Conservation and non-negative sends are
    enforced on every assignment. *)

exception Invariant_violation of string
(** Raised when a balancer breaks conservation or sends a negative
    token count on an original edge. *)

type result = {
  steps_run : int;
  final_loads : int array;
  series : (int * int) array;
  (** (step, discrepancy) samples: step 0, every [sample_every]-th step,
      and the final step. *)
  min_load_seen : int;
  (** Minimum entry of any load vector during the run — negative iff the
      algorithm produced negative load (the NL column of Table 1). *)
  reached_target : int option;
  (** First step at which discrepancy ≤ [stop_at_discrepancy], if that
      option was given and reached. *)
  fairness : Fairness.report option; (** present iff [audit] was set *)
}

val run :
  ?audit:bool ->
  ?sample_every:int ->
  ?hook:(int -> int array -> unit) ->
  ?stop_at_discrepancy:int ->
  graph:Graphs.Graph.t ->
  balancer:Balancer.t ->
  init:int array ->
  steps:int ->
  unit ->
  result
(** [run ~graph ~balancer ~init ~steps ()] executes [steps] synchronous
    rounds from the initial load vector [init].

    - [audit] (default false): track cumulative flows and class
      membership via {!Fairness}; costs a second O(n·d⁺) pass per step.
    - [sample_every] (default 1): discrepancy series granularity.
    - [hook]: called as [hook t loads] after each step [t ≥ 1] with the
      current load vector (not a copy — do not mutate).
    - [stop_at_discrepancy]: stop early once the discrepancy is ≤ the
      given value; [result.reached_target] records when.

    @raise Invalid_argument if the balancer's degree does not match the
    graph or [init] has the wrong length.
    @raise Invariant_violation on a misbehaving balancer. *)

val discrepancy_after :
  graph:Graphs.Graph.t -> balancer:Balancer.t -> init:int array -> steps:int -> int
(** Convenience: final discrepancy of an unaudited run. *)
