(** Observation taps: wrap a balancer so every port assignment is also
    fed to an observer, without changing the dynamics.

    Several analysis tools (the Proposition A.2 remainder transformation
    in {!Remainder}, the Lemma 3.5 token-coloring checker in
    {!Coloring}) need to see each node's per-step assignment; wrapping
    keeps the engine oblivious. *)

val wrap :
  Balancer.t ->
  on_assign:(step:int -> node:int -> load:int -> ports:int array -> unit) ->
  Balancer.t
(** [wrap b ~on_assign] behaves exactly like [b]; after each inner
    [assign] the observer sees the same arguments and the filled [ports]
    buffer.  The observer must not mutate [ports]. *)
