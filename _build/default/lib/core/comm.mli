(** Communication accounting: how many tokens actually cross edges.

    The paper's NC column is about {e control} information; this module
    measures the {e data} traffic — tokens sent over original edges per
    round — which is what a deployment pays for.  Self-loop tokens are
    free (they stay put). *)

type report = {
  steps : int;
  total_tokens_moved : int;   (** over original edges, summed over the run *)
  max_step_tokens : int;      (** busiest round *)
  final_step_tokens : int;    (** traffic in the last round — the idle cost *)
  max_edge_load : int;        (** largest single-edge transfer in one round *)
}

val wrap : Balancer.t -> Balancer.t * (unit -> report)
(** Observe a balancer's traffic; behaviour is unchanged. *)

val pp_report : Format.formatter -> report -> unit
