type report = {
  c : int;
  steps_checked : int;
  rule1_ok : bool;
  no_forced_downgrade : bool;
  drop_dominated : bool;
  phi_equals_red : bool;
  total_recolored : int;
}

let check_gap ~graph ~balancer ~s ~c ~init ~steps =
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in
  let dp = Balancer.d_plus balancer in
  let threshold = c * dp in
  let quota_cap = threshold + s in
  let adj = Graphs.Graph.adjacency graph in
  let black = Array.map (fun x -> min x quota_cap) init in
  let black_in = Array.make n 0 in
  let before = Array.make n 0 in
  let rule1_ok = ref true in
  let no_forced_downgrade = ref true in
  let drop_dominated = ref true in
  let phi_equals_red = ref true in
  let total_recolored = ref 0 in
  let steps_checked = ref 0 in
  let on_assign ~step:_ ~node ~load ~ports =
    before.(node) <- load;
    let base = node * d in
    let kept = ref 0 in
    if load <= threshold then begin
      (* All tokens black; every port (edge or self-loop) may carry at
         most c of them — round-fairness makes ports ≤ ⌈x/d⁺⌉ ≤ c. *)
      if black.(node) <> load then rule1_ok := false;
      for k = 0 to dp - 1 do
        if ports.(k) > c then rule1_ok := false;
        let bsend = min ports.(k) c in
        if k < d then begin
          let v = adj.(base + k) in
          black_in.(v) <- black_in.(v) + bsend
        end
        else kept := !kept + bsend
      done
    end
    else begin
      (* black = c·d⁺ + s′: exactly c per original edge, and c+1 on s′
         self-loops that carry at least c+1 tokens (s-self-preference
         guarantees they exist). *)
      let s' = max (min (load - threshold) s) 0 in
      if black.(node) <> threshold + s' then rule1_ok := false;
      let promoted = ref 0 in
      for k = 0 to dp - 1 do
        if ports.(k) < c then rule1_ok := false;
        let bsend =
          if k >= d && !promoted < s' && ports.(k) >= c + 1 then begin
            incr promoted;
            c + 1
          end
          else c
        in
        if k < d then begin
          let v = adj.(base + k) in
          black_in.(v) <- black_in.(v) + min bsend ports.(k)
        end
        else kept := !kept + min bsend ports.(k)
      done;
      if !promoted < s' then rule1_ok := false
    end;
    black_in.(node) <- black_in.(node) + !kept
  in
  let hook _t loads =
    incr steps_checked;
    let quota_sum = ref 0 in
    for u = 0 to n - 1 do
      let quota = min loads.(u) quota_cap in
      quota_sum := !quota_sum + quota;
      if black_in.(u) > quota then no_forced_downgrade := false;
      let recolored = quota - min black_in.(u) quota in
      total_recolored := !total_recolored + recolored;
      let claimed =
        Potential.drop' ~d_plus:dp ~s ~c ~before:before.(u) ~after:loads.(u)
      in
      if recolored < claimed then drop_dominated := false;
      black.(u) <- quota;
      black_in.(u) <- 0
    done;
    (* φ′_t(c) = (c·d⁺ + s)·n − Σ black. *)
    if Potential.phi' ~d_plus:dp ~s ~c loads <> (quota_cap * n) - !quota_sum then
      phi_equals_red := false
  in
  let tapped = Tap.wrap balancer ~on_assign in
  ignore (Engine.run ~hook ~graph ~balancer:tapped ~init ~steps ());
  {
    c;
    steps_checked = !steps_checked;
    rule1_ok = !rule1_ok;
    no_forced_downgrade = !no_forced_downgrade;
    drop_dominated = !drop_dominated;
    phi_equals_red = !phi_equals_red;
    total_recolored = !total_recolored;
  }

let check ~graph ~balancer ~s ~c ~init ~steps =
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in
  let dp = Balancer.d_plus balancer in
  let threshold = c * dp in
  let m = Loads.total init in
  let adj = Graphs.Graph.adjacency graph in
  (* black.(u): black tokens held at the start of the step (the proof's
     |L⁻(u)| = min(x, c·d⁺)); black_in accumulates arrivals. *)
  let black = Array.map (fun x -> min x threshold) init in
  let black_in = Array.make n 0 in
  let before = Array.make n 0 in
  let rule1_ok = ref true in
  let no_forced_downgrade = ref true in
  let drop_dominated = ref true in
  let phi_equals_red = ref true in
  let total_recolored = ref 0 in
  let steps_checked = ref 0 in
  let on_assign ~step:_ ~node ~load ~ports =
    before.(node) <- load;
    let all_black = load <= threshold in
    (if all_black && black.(node) <> load then
       (* Bookkeeping broken — treat as a rule violation rather than
          silently diverging. *)
       rule1_ok := false);
    let base = node * d in
    let kept = ref 0 in
    for k = 0 to dp - 1 do
      let bsend =
        if all_black then begin
          (* Every token is black; rule (1) demands ports ≤ c. *)
          if ports.(k) > c then rule1_ok := false;
          min ports.(k) c
        end
        else begin
          (* Exactly c black per edge; feasible iff the port carries ≥ c
             tokens — round-fairness guarantees it. *)
          if ports.(k) < c then rule1_ok := false;
          min ports.(k) c
        end
      in
      if k < d then begin
        let v = adj.(base + k) in
        black_in.(v) <- black_in.(v) + bsend
      end
      else kept := !kept + bsend
    done;
    black_in.(node) <- black_in.(node) + !kept
  in
  let hook _t loads =
    incr steps_checked;
    let quota_sum = ref 0 in
    for u = 0 to n - 1 do
      let quota = min loads.(u) threshold in
      quota_sum := !quota_sum + quota;
      if black_in.(u) > quota then no_forced_downgrade := false;
      let recolored = quota - min black_in.(u) quota in
      total_recolored := !total_recolored + recolored;
      let claimed =
        Potential.drop ~d_plus:dp ~s ~c ~before:before.(u) ~after:loads.(u)
      in
      if recolored < claimed then drop_dominated := false;
      black.(u) <- quota;
      black_in.(u) <- 0
    done;
    (* φ_t(c) must equal the number of red tokens m − Σ black. *)
    if Potential.phi ~d_plus:dp ~c loads <> m - !quota_sum then
      phi_equals_red := false
  in
  let tapped = Tap.wrap balancer ~on_assign in
  ignore (Engine.run ~hook ~graph ~balancer:tapped ~init ~steps ());
  {
    c;
    steps_checked = !steps_checked;
    rule1_ok = !rule1_ok;
    no_forced_downgrade = !no_forced_downgrade;
    drop_dominated = !drop_dominated;
    phi_equals_red = !phi_equals_red;
    total_recolored = !total_recolored;
  }
