(** The potential functions of Section 3.

    φ_t(c)  = Σ_v max{x_t(v) − c·d⁺, 0}       (tokens above height c·d⁺)
    φ′_t(c) = Σ_v max{c·d⁺ + s − x_t(v), 0}   (gaps below height c·d⁺ + s)

    Lemma 3.5 (resp. 3.7) proves φ (resp. φ′) non-increasing for good
    s-balancers, with a quantified drop ∆_t(c,u) (resp. ∆′_t(c,u)) per
    node.  These are exported so tests and the E8 experiment can verify
    the lemmas on live runs. *)

val phi : d_plus:int -> c:int -> int array -> int
(** φ(c) of a load vector. *)

val phi' : d_plus:int -> s:int -> c:int -> int array -> int
(** φ′(c) of a load vector. *)

val drop : d_plus:int -> s:int -> c:int -> before:int -> after:int -> int
(** ∆_t(c, u) of Lemma 3.5 for one node whose load went from [before]
    to [after] in one step. *)

val drop' : d_plus:int -> s:int -> c:int -> before:int -> after:int -> int
(** ∆′_t(c, u) of Lemma 3.7. *)

val c_ladder : d_plus:int -> lo_load:int -> hi_load:int -> int list
(** All thresholds c with c·d⁺ in [\[lo_load, hi_load\]] — the ladder the
    proof of Theorem 3.3 walks down. *)

type trace = { c : int; values : (int * int) array (** (step, φ) *) }

val tracker :
  d_plus:int -> s:int -> cs:int list -> unit ->
  (int -> int array -> unit) * (unit -> trace list * trace list)
(** [tracker ~d_plus ~s ~cs ()] returns an engine hook and a finalizer.
    The hook records φ(c) and φ′(c) at every step for each [c] in [cs];
    the finalizer returns the (φ traces, φ′ traces). *)
