type sample = {
  step : int;
  discrepancy : int;
  balancedness : float;
  quadratic : float;
  max_load : int;
  min_load : int;
}

type t = { mutable acc : sample list }

let quadratic_potential loads =
  let avg = Loads.average loads in
  Array.fold_left
    (fun s x ->
      let dx = float_of_int x -. avg in
      s +. (dx *. dx))
    0.0 loads

let sample_of ~step loads =
  {
    step;
    discrepancy = Loads.discrepancy loads;
    balancedness = Loads.balancedness loads;
    quadratic = quadratic_potential loads;
    max_load = Loads.max_load loads;
    min_load = Loads.min_load loads;
  }

let recorder ?(every = 1) () =
  if every <= 0 then invalid_arg "Metrics.recorder: every must be positive";
  let t = { acc = [] } in
  let hook step loads =
    if step mod every = 0 then t.acc <- sample_of ~step loads :: t.acc
  in
  (t, hook)

let samples t = Array.of_list (List.rev t.acc)

let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?width series =
  let len = Array.length series in
  if len = 0 then ""
  else begin
    let width = match width with Some w -> max 1 w | None -> min len 60 in
    let lo = Array.fold_left min series.(0) series in
    let hi = Array.fold_left max series.(0) series in
    let span = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
    let buf = Buffer.create (width * 3) in
    for i = 0 to width - 1 do
      (* Nearest-sample resampling onto the requested width. *)
      let idx =
        if width = 1 then 0 else i * (len - 1) / (width - 1)
      in
      let v = (series.(idx) -. lo) /. span in
      let level = min 7 (max 0 (int_of_float (v *. 7.999))) in
      Buffer.add_string buf blocks.(level)
    done;
    Buffer.contents buf
  end

let discrepancy_sparkline ?width t =
  sparkline ?width
    (Array.map (fun s -> float_of_int s.discrepancy) (samples t))
