let wrap (b : Balancer.t) ~on_assign =
  {
    b with
    Balancer.assign =
      (fun ~step ~node ~load ~ports ->
        b.Balancer.assign ~step ~node ~load ~ports;
        on_assign ~step ~node ~load ~ports);
  }
