(** The ROTOR-ROUTER (Propp machine) balancer.

    Every node owns a rotor over a cyclic ordering of its d⁺ ports
    (original edges and self-loops).  With load x, the node sends one
    token along the port under the rotor, advances the rotor, and
    repeats — so every port receives ⌊x/d⁺⌋ tokens and the x mod d⁺
    ports starting at the rotor receive one extra; the rotor ends up
    advanced by x mod d⁺ positions.

    The paper shows (Observation 2.2) that this is cumulatively 1-fair
    whenever the cyclic order visits the original edges "spread out";
    with the default order — original edges and self-loops interleaved
    as evenly as possible — the audited δ is 1 for d° ≥ d.  Theorem 4.3
    uses the d° = 0 instance with an adversarial initial rotor
    configuration, which {!make} supports via [init_rotor] and
    [order]. *)

val make :
  ?order:(int -> int array) ->
  ?init_rotor:(int -> int) ->
  Graphs.Graph.t ->
  self_loops:int ->
  Balancer.t
(** [make g ~self_loops] builds a rotor-router balancer for [g] with
    [self_loops] self-loop ports per node.

    - [order u] must be a permutation of [0 .. d⁺-1] giving node [u]'s
      cyclic port order (default: original edges and self-loops
      interleaved round-robin).
    - [init_rotor u] is the starting rotor position of node [u] as an
      index into that order (default 0).

    @raise Invalid_argument if an order is not a permutation or an
    initial rotor position is out of range. *)

val default_order : degree:int -> self_loops:int -> int array
(** The interleaved default order, exposed for tests. *)
