(** The central computation of the Theorem 2.3 proof, executable:
    equation (7) bounds the deviation between a node's {e time-averaged}
    load over a window of length T̂ and the global average x̄:

    ‖ (Σ_(t<τ≤t+T̂) x_τ) / T̂ − x̄ ‖∞
      ≤ 1/4 + (δd⁺ + 2r) + ((δd⁺ + r) + Σ current terms) / T̂.

    With T̂ = 1 this becomes the discrepancy bound of the theorem; with
    larger T̂ it is the window-averaging device behind Lemma 3.4.  This
    module measures the left side on live runs, for a ladder of window
    lengths, so the inequality (and its qualitative consequence: longer
    windows average out the rounding noise) can be verified
    numerically. *)

type window_stat = {
  window : int;          (** T̂ *)
  start_step : int;      (** t: the window covers (t, t + T̂] *)
  max_deviation : float; (** ‖window-average − x̄‖∞ *)
}

val measure :
  graph:Graphs.Graph.t ->
  balancer:Balancer.t ->
  init:int array ->
  burn_in:int ->
  windows:int list ->
  unit ->
  window_stat list
(** Run for [burn_in + max windows] steps; for every requested window
    length T̂, accumulate the post-burn-in loads over (burn_in,
    burn_in + T̂] and report the worst per-node deviation of the window
    average from x̄.  The balancer must be fresh. *)

val rhs_bound : delta:int -> d_plus:int -> remainder:int -> current_sum:float -> window:int -> float
(** The right side of equation (7) with explicit constants:
    1/4 + (δ·d⁺ + 2r) + ((δ·d⁺ + r)·(1 + current_sum)) / T̂. *)
