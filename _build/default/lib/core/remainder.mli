(** The Proposition A.2 transformation, executable.

    The proposition: every cumulatively δ-fair balancer A can be
    reformulated as an algorithm A′ that (1) sends exactly the same load
    over every original edge in every round, and (2) is cumulatively
    δ-fair over {e all} edges including self-loops, at the cost of
    holding a per-node remainder r_t(u) with |r_t(u)| ≤ d⁺.

    The reformulation is pure bookkeeping — tokens "on a self-loop" and
    tokens "in the remainder" both stay at the node, so A and A′ have
    identical load dynamics.  This module materializes A′ alongside a
    live run of A: every self-loop of A′ carries exactly what original
    edge 0 carries (so the all-edge cumulative spread of A′ equals A's
    original-edge spread ≤ δ), and whatever A kept beyond that is the
    remainder.  The report verifies the proposition's |r| ≤ d⁺ bound. *)

type report = {
  max_abs_remainder : int; (** max over nodes and steps of |r_t(u)| *)
  remainder_bound : int;   (** d⁺ — the proposition's bound *)
  bound_ok : bool;         (** max_abs_remainder ≤ d⁺? *)
  observations : int;
}

val wrap : Balancer.t -> Balancer.t * (unit -> report)
(** [wrap a] returns a balancer with identical behaviour plus a
    finalizer producing the A′ audit.
    @raise Invalid_argument if [a] has no self-loops (then A′ = A and
    there is nothing to transform). *)
