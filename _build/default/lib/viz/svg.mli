(** Minimal dependency-free SVG generation — enough for the plots this
    repository produces (load heatmaps, discrepancy curves).  Documents
    are built from shapes and serialized with {!to_string}/{!write}. *)

type shape

val rect :
  x:float -> y:float -> w:float -> h:float -> ?stroke:string -> fill:string ->
  unit -> shape

val circle : cx:float -> cy:float -> r:float -> fill:string -> shape

val line :
  x1:float -> y1:float -> x2:float -> y2:float -> ?width:float -> stroke:string ->
  unit -> shape

val polyline : points:(float * float) list -> ?width:float -> stroke:string -> unit -> shape
(** Unfilled path through the points. *)

val text :
  x:float -> y:float -> ?size:float -> ?anchor:string -> string -> shape
(** [anchor] is the SVG [text-anchor] (default ["start"]). *)

type t

val document : width:float -> height:float -> shape list -> t

val to_string : t -> string
(** A standalone [<svg>] element with [viewBox] and XML header. *)

val write : path:string -> t -> unit

val escape_text : string -> string
(** XML-escape ampersand, angle brackets and both quote characters
    (exposed for tests). *)

val gray : float -> string
(** [gray v] maps v ∈ [0,1] to a #rrggbb gray (0 = white, 1 = black),
    clamping out-of-range values. *)

val heat : float -> string
(** [heat v] maps v ∈ [0,1] to a white→orange→red ramp, clamped. *)
