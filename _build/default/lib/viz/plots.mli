(** Ready-made plots for the balancing experiments. *)

val torus_heatmap :
  side:int -> loads:int array -> ?cell:float -> ?title:string -> unit -> Svg.t
(** Render a side×side torus load vector as a heat grid (node [i] at row
    [i / side], column [i mod side]); color scales from the minimum to
    the maximum load.  @raise Invalid_argument if lengths mismatch. *)

val cycle_heatmap : loads:int array -> ?title:string -> unit -> Svg.t
(** Render a cycle's loads as a ring of colored nodes. *)

val discrepancy_plot :
  series:(int * int) array list ->
  labels:string list ->
  ?title:string ->
  ?log_y:bool ->
  unit ->
  Svg.t
(** Line plot of one or more (step, discrepancy) series with a legend.
    [log_y] (default false) plots log₁₀(1 + y).
    @raise Invalid_argument on empty input or label/series mismatch. *)
