lib/viz/plots.mli: Svg
