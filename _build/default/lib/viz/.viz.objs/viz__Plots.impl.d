lib/viz/plots.ml: Array List Printf Svg
