lib/viz/svg.mli:
