type shape = string

let f2s v =
  (* Compact float formatting: drop the trailing dot OCaml prints. *)
  let s = Printf.sprintf "%.2f" v in
  s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rect ~x ~y ~w ~h ?stroke ~fill () =
  let stroke_attr =
    match stroke with
    | None -> ""
    | Some s -> Printf.sprintf " stroke=\"%s\"" (escape_text s)
  in
  Printf.sprintf "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" fill=\"%s\"%s/>"
    (f2s x) (f2s y) (f2s w) (f2s h) (escape_text fill) stroke_attr

let circle ~cx ~cy ~r ~fill =
  Printf.sprintf "<circle cx=\"%s\" cy=\"%s\" r=\"%s\" fill=\"%s\"/>" (f2s cx) (f2s cy)
    (f2s r) (escape_text fill)

let line ~x1 ~y1 ~x2 ~y2 ?(width = 1.0) ~stroke () =
  Printf.sprintf
    "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"%s\" stroke-width=\"%s\"/>"
    (f2s x1) (f2s y1) (f2s x2) (f2s y2) (escape_text stroke) (f2s width)

let polyline ~points ?(width = 1.0) ~stroke () =
  let pts =
    String.concat " " (List.map (fun (x, y) -> Printf.sprintf "%s,%s" (f2s x) (f2s y)) points)
  in
  Printf.sprintf
    "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"%s\"/>" pts
    (escape_text stroke) (f2s width)

let text ~x ~y ?(size = 12.0) ?(anchor = "start") content =
  Printf.sprintf
    "<text x=\"%s\" y=\"%s\" font-size=\"%s\" text-anchor=\"%s\" \
     font-family=\"sans-serif\">%s</text>"
    (f2s x) (f2s y) (f2s size) (escape_text anchor) (escape_text content)

type t = { width : float; height : float; shapes : shape list }

let document ~width ~height shapes = { width; height; shapes }

let to_string doc =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%s\" height=\"%s\" \
        viewBox=\"0 0 %s %s\">\n"
       (f2s doc.width) (f2s doc.height) (f2s doc.width) (f2s doc.height));
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    doc.shapes;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write ~path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string doc))

let clamp01 v = if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v

let gray v =
  let v = clamp01 v in
  let level = int_of_float ((1.0 -. v) *. 255.0) in
  Printf.sprintf "#%02x%02x%02x" level level level

let heat v =
  let v = clamp01 v in
  (* white (1,1,1) -> orange (1, .55, 0) -> red (.8, 0, 0) *)
  let lerp a b t = a +. ((b -. a) *. t) in
  let r, g, b =
    if v < 0.5 then
      let t = v *. 2.0 in
      (1.0, lerp 1.0 0.55 t, lerp 1.0 0.0 t)
    else
      let t = (v -. 0.5) *. 2.0 in
      (lerp 1.0 0.8 t, lerp 0.55 0.0 t, 0.0)
  in
  Printf.sprintf "#%02x%02x%02x"
    (int_of_float (r *. 255.0))
    (int_of_float (g *. 255.0))
    (int_of_float (b *. 255.0))
