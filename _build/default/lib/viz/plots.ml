let minmax loads =
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (loads.(0), loads.(0))
    loads

let normalize ~lo ~hi x =
  if hi = lo then 0.5 else float_of_int (x - lo) /. float_of_int (hi - lo)

let title_bar ~width title =
  match title with
  | None -> ([], 0.0)
  | Some t -> ([ Svg.text ~x:(width /. 2.0) ~y:16.0 ~size:14.0 ~anchor:"middle" t ], 24.0)

let torus_heatmap ~side ~loads ?(cell = 14.0) ?title () =
  if side <= 0 || Array.length loads <> side * side then
    invalid_arg "Plots.torus_heatmap: side² must equal the load vector length";
  let lo, hi = minmax loads in
  let width = (float_of_int side *. cell) +. 20.0 in
  let header, y0 = title_bar ~width title in
  let cells = ref [] in
  for row = 0 to side - 1 do
    for col = 0 to side - 1 do
      let v = normalize ~lo ~hi loads.((row * side) + col) in
      cells :=
        Svg.rect
          ~x:(10.0 +. (float_of_int col *. cell))
          ~y:(y0 +. 10.0 +. (float_of_int row *. cell))
          ~w:cell ~h:cell ~stroke:"#cccccc" ~fill:(Svg.heat v) ()
        :: !cells
    done
  done;
  let legend =
    [
      Svg.text ~x:10.0
        ~y:(y0 +. 24.0 +. (float_of_int side *. cell))
        ~size:10.0
        (Printf.sprintf "min %d (white) .. max %d (red)" lo hi);
    ]
  in
  Svg.document ~width
    ~height:(y0 +. 34.0 +. (float_of_int side *. cell))
    (header @ List.rev !cells @ legend)

let pi = 4.0 *. atan 1.0

let cycle_heatmap ~loads ?title () =
  let n = Array.length loads in
  if n = 0 then invalid_arg "Plots.cycle_heatmap: empty load vector";
  let lo, hi = minmax loads in
  let radius = max 60.0 (float_of_int n *. 2.2) in
  let size = (2.0 *. radius) +. 60.0 in
  let header, y0 = title_bar ~width:size title in
  let cx = size /. 2.0 and cy = y0 +. radius +. 20.0 in
  let dots =
    List.init n (fun i ->
        let angle = 2.0 *. pi *. float_of_int i /. float_of_int n in
        let x = cx +. (radius *. cos angle) and y = cy +. (radius *. sin angle) in
        Svg.circle ~cx:x ~cy:y
          ~r:(max 2.5 (radius /. float_of_int n *. 2.0))
          ~fill:(Svg.heat (normalize ~lo ~hi loads.(i))))
  in
  let legend =
    [
      Svg.text ~x:cx ~y:cy ~anchor:"middle" ~size:10.0
        (Printf.sprintf "min %d .. max %d" lo hi);
    ]
  in
  Svg.document ~width:size ~height:(y0 +. (2.0 *. radius) +. 40.0)
    (header @ dots @ legend)

let palette =
  [| "#d62728"; "#1f77b4"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b"; "#17becf" |]

let discrepancy_plot ~series ~labels ?title ?(log_y = false) () =
  if series = [] || List.length series <> List.length labels then
    invalid_arg "Plots.discrepancy_plot: need one label per non-empty series";
  List.iter
    (fun s -> if Array.length s = 0 then invalid_arg "Plots.discrepancy_plot: empty series")
    series;
  let width = 520.0 and height = 320.0 in
  let header, y0 = title_bar ~width title in
  let ml = 50.0 and mr = 120.0 and mt = y0 +. 12.0 and mb = 34.0 in
  let plot_w = width -. ml -. mr and plot_h = height -. mt -. mb in
  let transform_y v = if log_y then log10 (1.0 +. v) else v in
  let max_x =
    List.fold_left
      (fun acc s -> Array.fold_left (fun a (t, _) -> max a t) acc s)
      1 series
  in
  let max_y =
    List.fold_left
      (fun acc s ->
        Array.fold_left (fun a (_, v) -> max a (transform_y (float_of_int v))) acc s)
      1e-9 series
  in
  let sx t = ml +. (float_of_int t /. float_of_int max_x *. plot_w) in
  let sy v = mt +. plot_h -. (transform_y v /. max_y *. plot_h) in
  let axes =
    [
      Svg.line ~x1:ml ~y1:mt ~x2:ml ~y2:(mt +. plot_h) ~stroke:"#000000" ();
      Svg.line ~x1:ml ~y1:(mt +. plot_h) ~x2:(ml +. plot_w) ~y2:(mt +. plot_h)
        ~stroke:"#000000" ();
      Svg.text ~x:(ml +. (plot_w /. 2.0)) ~y:(height -. 8.0) ~anchor:"middle" ~size:11.0
        "step";
      Svg.text ~x:12.0 ~y:(mt +. (plot_h /. 2.0)) ~size:11.0
        (if log_y then "log disc" else "disc");
      Svg.text ~x:(ml +. plot_w) ~y:(mt +. plot_h +. 14.0) ~anchor:"end" ~size:10.0
        (string_of_int max_x);
    ]
  in
  let curves =
    List.mapi
      (fun i s ->
        let color = palette.(i mod Array.length palette) in
        let points =
          Array.to_list (Array.map (fun (t, v) -> (sx t, sy (float_of_int v))) s)
        in
        Svg.polyline ~points ~width:1.5 ~stroke:color ())
      series
  in
  let legend =
    List.mapi
      (fun i label ->
        let color = palette.(i mod Array.length palette) in
        let y = mt +. 14.0 +. (float_of_int i *. 16.0) in
        [
          Svg.line ~x1:(ml +. plot_w +. 8.0) ~y1:(y -. 4.0) ~x2:(ml +. plot_w +. 28.0)
            ~y2:(y -. 4.0) ~width:2.0 ~stroke:color ();
          Svg.text ~x:(ml +. plot_w +. 32.0) ~y ~size:10.0 label;
        ])
      labels
    |> List.concat
  in
  Svg.document ~width ~height:(height +. y0) (header @ axes @ curves @ legend)
