lib/linalg/jacobi.ml: Array Csr Mat
