lib/linalg/eigen.ml: Array Csr Prng Vec
