lib/linalg/jacobi.mli: Csr Mat
