lib/linalg/csr.ml: Array List Mat
