lib/linalg/eigen.mli: Csr Vec
