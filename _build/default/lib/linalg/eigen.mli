(** Eigenvalue estimation for the (symmetric, doubly stochastic)
    transition matrices arising from regular balancing graphs.

    The matrices we feed in are reversible random-walk matrices of
    regular graphs: real spectrum in [-1, 1], top eigenvalue 1 with the
    (normalized) all-ones eigenvector.  The second eigenvalue is found by
    power iteration after deflating the uniform direction. *)

type result = {
  value : float;      (** converged eigenvalue estimate *)
  iterations : int;   (** iterations actually used *)
  residual : float;   (** ‖A v − λ v‖₂ at exit *)
}

val power_iteration :
  ?max_iter:int -> ?tol:float -> ?seed:int ->
  (Vec.t -> Vec.t) -> int -> result
(** [power_iteration apply n] estimates the dominant eigenvalue (in
    absolute value) of the linear operator [apply] on dimension [n].
    Defaults: [max_iter = 50_000], [tol = 1e-12], [seed = 1]. *)

val second_eigenvalue :
  ?max_iter:int -> ?tol:float -> ?seed:int -> Csr.t -> result
(** [second_eigenvalue p] estimates λ₂, the largest-magnitude eigenvalue
    of the doubly stochastic matrix [p] orthogonal to the all-ones
    vector.  For lazy walks (≥ d self-loops per node) the spectrum is
    non-negative, so this is exactly the paper's λ₂. *)

val spectral_gap : ?max_iter:int -> ?tol:float -> ?seed:int -> Csr.t -> float
(** [spectral_gap p] is µ = 1 − λ₂, clamped to [(0, 1\]] — a λ₂ estimate
    marginally above 1 due to round-off is treated as the smallest
    positive gap the solver can resolve. *)
