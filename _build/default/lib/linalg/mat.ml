type t = { n : int; a : float array }

let make n v =
  if n < 0 then invalid_arg "Mat.make";
  { n; a = Array.make (n * n) v }

let init n f =
  if n < 0 then invalid_arg "Mat.init";
  { n; a = Array.init (n * n) (fun k -> f (k / n) (k mod n)) }

let dim m = m.n

let get m i j =
  if i < 0 || i >= m.n || j < 0 || j >= m.n then invalid_arg "Mat.get";
  m.a.((i * m.n) + j)

let set m i j v =
  if i < 0 || i >= m.n || j < 0 || j >= m.n then invalid_arg "Mat.set";
  m.a.((i * m.n) + j) <- v

let identity n = init n (fun i j -> if i = j then 1.0 else 0.0)

let mul_vec m v =
  if Array.length v <> m.n then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.n (fun i ->
      let s = ref 0.0 in
      let base = i * m.n in
      for j = 0 to m.n - 1 do
        s := !s +. (m.a.(base + j) *. v.(j))
      done;
      !s)

let mul x y =
  if x.n <> y.n then invalid_arg "Mat.mul: dimension mismatch";
  let n = x.n in
  let z = make n 0.0 in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let xik = x.a.((i * n) + k) in
      if xik <> 0.0 then
        for j = 0 to n - 1 do
          z.a.((i * n) + j) <- z.a.((i * n) + j) +. (xik *. y.a.((k * n) + j))
        done
    done
  done;
  z

let transpose m = init m.n (fun i j -> get m j i)

let row_sums m =
  Array.init m.n (fun i ->
      let s = ref 0.0 in
      for j = 0 to m.n - 1 do
        s := !s +. m.a.((i * m.n) + j)
      done;
      !s)

let is_stochastic ?(eps = 1e-9) m =
  let ok = ref true in
  for i = 0 to m.n - 1 do
    let s = ref 0.0 in
    for j = 0 to m.n - 1 do
      let v = m.a.((i * m.n) + j) in
      if v < -.eps then ok := false;
      s := !s +. v
    done;
    if abs_float (!s -. 1.0) > eps then ok := false
  done;
  !ok

let is_symmetric ?(eps = 1e-9) m =
  let ok = ref true in
  for i = 0 to m.n - 1 do
    for j = i + 1 to m.n - 1 do
      if abs_float (get m i j -. get m j i) > eps then ok := false
    done
  done;
  !ok

let pp ppf m =
  for i = 0 to m.n - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.n - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%8.4f" (get m i j)
    done;
    Format.fprintf ppf "]@."
  done
