(** Dense square float matrices (row-major).

    Used only at test scale (small n) for cross-checking the sparse
    spectral code; the simulators themselves never materialize dense
    matrices. *)

type t

val make : int -> float -> t
val init : int -> (int -> int -> float) -> t
val dim : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val identity : int -> t

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix–vector product. *)

val mul : t -> t -> t
(** Matrix–matrix product. *)

val transpose : t -> t

val row_sums : t -> Vec.t

val is_stochastic : ?eps:float -> t -> bool
(** Rows are non-negative and sum to 1 within [eps] (default 1e-9). *)

val is_symmetric : ?eps:float -> t -> bool

val pp : Format.formatter -> t -> unit
