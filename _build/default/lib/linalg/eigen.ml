type result = { value : float; iterations : int; residual : float }

let random_unit_vec seed n =
  let g = Prng.Splitmix.create seed in
  let v = Array.init n (fun _ -> Prng.Splitmix.float g 2.0 -. 1.0) in
  if Vec.norm2 v = 0.0 then v.(0) <- 1.0;
  Vec.normalize2 v;
  v

let power_iteration ?(max_iter = 50_000) ?(tol = 1e-12) ?(seed = 1) apply n =
  if n <= 0 then invalid_arg "Eigen.power_iteration: dimension must be positive";
  let v = ref (random_unit_vec seed n) in
  let lambda = ref 0.0 in
  let residual = ref infinity in
  let iters = ref 0 in
  (try
     for i = 1 to max_iter do
       iters := i;
       let w = apply !v in
       (* Rayleigh quotient with the unit vector !v. *)
       let l = Vec.dot !v w in
       let r = Vec.copy w in
       Vec.axpy ~alpha:(-.l) ~x:!v ~y:r;
       residual := Vec.norm2 r;
       lambda := l;
       let nw = Vec.norm2 w in
       if nw = 0.0 then begin
         (* v is in the kernel: dominant eigenvalue along this orbit is 0. *)
         lambda := 0.0;
         residual := 0.0;
         raise Exit
       end;
       Vec.normalize2 w;
       v := w;
       if !residual < tol then raise Exit
     done
   with Exit -> ());
  { value = !lambda; iterations = !iters; residual = !residual }

let second_eigenvalue ?max_iter ?tol ?seed p =
  let n = Csr.dim p in
  let uniform = Vec.make n (1.0 /. sqrt (float_of_int n)) in
  let scratch = Vec.make n 0.0 in
  let apply v =
    (* Deflate the uniform direction before and after applying P so that
       round-off never reintroduces the top eigenvector. *)
    let v' = Vec.copy v in
    Vec.project_out ~unit_dir:uniform v';
    Csr.mul_vec_into p v' scratch;
    let out = Vec.copy scratch in
    Vec.project_out ~unit_dir:uniform out;
    out
  in
  power_iteration ?max_iter ?tol ?seed apply n

let spectral_gap ?max_iter ?tol ?seed p =
  let { value = lambda2; _ } = second_eigenvalue ?max_iter ?tol ?seed p in
  let gap = 1.0 -. abs_float lambda2 in
  if gap <= 0.0 then 1e-12 else if gap > 1.0 then 1.0 else gap
