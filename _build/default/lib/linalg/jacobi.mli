(** Full eigendecomposition of symmetric matrices by the classical
    Jacobi rotation method.

    Intended for the dense, small-n analyses (the error-term matrices
    Λ_t = P^t − P^∞ of the paper's Lemma A.1); the simulators never need
    it.  Cost is O(n³) per sweep with very reliable convergence for the
    symmetric stochastic matrices we feed in. *)

type decomposition = {
  eigenvalues : float array;  (** descending order *)
  eigenvectors : Mat.t;       (** column j is the eigenvector of λ_j *)
}

val decompose : ?max_sweeps:int -> ?tol:float -> Mat.t -> decomposition
(** [decompose m] for a symmetric [m].  Defaults: [max_sweeps = 100],
    [tol = 1e-12] (off-diagonal Frobenius norm threshold).
    @raise Invalid_argument if [m] is not symmetric (1e-9 tolerance). *)

val reconstruct : decomposition -> Mat.t
(** X·diag(λ)·Xᵀ — for testing. *)

val eigenvalues_of_transition : Csr.t -> float array
(** Convenience: densify a (symmetric) transition matrix and return all
    its eigenvalues, descending. *)
