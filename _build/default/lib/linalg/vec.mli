(** Dense float vectors.

    Thin, allocation-conscious helpers over [float array]; the spectral
    code in [graph.Spectral] runs power iterations over these. *)

type t = float array

val make : int -> float -> t
val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int

val fill : t -> float -> unit

val add : t -> t -> t
(** Element-wise sum; dimensions must agree. *)

val sub : t -> t -> t
(** Element-wise difference; dimensions must agree. *)

val scale : float -> t -> t

val axpy : alpha:float -> x:t -> y:t -> unit
(** [axpy ~alpha ~x ~y] sets [y <- alpha * x + y] in place. *)

val dot : t -> t -> float

val norm1 : t -> float
val norm2 : t -> float
val norm_inf : t -> float

val normalize2 : t -> unit
(** Scale in place to unit Euclidean norm (no-op on the zero vector). *)

val sum : t -> float
val mean : t -> float

val max_elt : t -> float
val min_elt : t -> float

val project_out : unit_dir:t -> t -> unit
(** [project_out ~unit_dir v] removes from [v], in place, its component
    along [unit_dir] (which must have unit 2-norm). *)

val of_int_array : int array -> t

val pp : Format.formatter -> t -> unit
