type t = float array

let make n v = Array.make n v
let init = Array.init
let copy = Array.copy
let dim = Array.length

let fill v x = Array.fill v 0 (Array.length v) x

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale alpha a = Array.map (fun x -> alpha *. x) a

let axpy ~alpha ~x ~y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (alpha *. x.(i)) +. y.(i)
  done

let dot a b =
  check_dims "dot" a b;
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm1 a = Array.fold_left (fun s x -> s +. abs_float x) 0.0 a
let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun s x -> max s (abs_float x)) 0.0 a

let normalize2 a =
  let n = norm2 a in
  if n > 0.0 then
    for i = 0 to Array.length a - 1 do
      a.(i) <- a.(i) /. n
    done

let sum a = Array.fold_left ( +. ) 0.0 a

let mean a =
  if Array.length a = 0 then invalid_arg "Vec.mean: empty vector";
  sum a /. float_of_int (Array.length a)

let max_elt a =
  if Array.length a = 0 then invalid_arg "Vec.max_elt: empty vector";
  Array.fold_left max a.(0) a

let min_elt a =
  if Array.length a = 0 then invalid_arg "Vec.min_elt: empty vector";
  Array.fold_left min a.(0) a

let project_out ~unit_dir v =
  let c = dot unit_dir v in
  axpy ~alpha:(-.c) ~x:unit_dir ~y:v

let of_int_array a = Array.map float_of_int a

let pp ppf v =
  Format.fprintf ppf "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" x)
    v;
  Format.fprintf ppf "|]"
