(** Compressed sparse row (CSR) matrices.

    The transition matrix P of the balancing graph G⁺ is stored in this
    form; all spectral estimation runs through {!mul_vec}. *)

type t

val of_triplets : n:int -> (int * int * float) list -> t
(** [of_triplets ~n entries] builds an [n × n] matrix from
    [(row, col, value)] triplets.  Duplicate [(row, col)] entries are
    summed (this is how parallel edges and self-loop multiplicities
    accumulate).  @raise Invalid_argument on out-of-range indices. *)

val dim : t -> int

val nnz : t -> int
(** Number of stored entries. *)

val get : t -> int -> int -> float
(** [get m i j] is the entry, 0. if absent.  O(row degree). *)

val mul_vec : t -> Vec.t -> Vec.t
(** Sparse matrix–vector product. *)

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into m x out] writes [m x] into [out] without allocating. *)

val row_sums : t -> Vec.t

val to_dense : t -> Mat.t

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row m i f] calls [f j v] for every stored entry in row [i]. *)
