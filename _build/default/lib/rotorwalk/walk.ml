type t = { graph : Graphs.Graph.t; rotor : int array }

let create ?init_rotor g =
  let d = Graphs.Graph.degree g in
  let rotor =
    Array.init (Graphs.Graph.n g) (fun u ->
        match init_rotor with
        | None -> 0
        | Some f ->
          let r = f u in
          if r < 0 || r >= d then invalid_arg "Walk.create: rotor out of range";
          r)
  in
  { graph = g; rotor }

let step w u =
  let d = Graphs.Graph.degree w.graph in
  let r = w.rotor.(u) in
  let v = Graphs.Graph.neighbor w.graph u r in
  w.rotor.(u) <- (r + 1) mod d;
  v

let walk w ~start ~steps =
  let pos = ref start in
  for _ = 1 to steps do
    pos := step w !pos
  done;
  !pos

let cover_time ?(cap = 10_000_000) w ~start =
  let n = Graphs.Graph.n w.graph in
  let seen = Array.make n false in
  seen.(start) <- true;
  let remaining = ref (n - 1) in
  let pos = ref start in
  let t = ref 0 in
  while !remaining > 0 && !t < cap do
    incr t;
    pos := step w !pos;
    if not seen.(!pos) then begin
      seen.(!pos) <- true;
      decr remaining
    end
  done;
  if !remaining = 0 then Some !t else None

let visits w ~start ~steps =
  let counts = Array.make (Graphs.Graph.n w.graph) 0 in
  counts.(start) <- 1;
  let pos = ref start in
  for _ = 1 to steps do
    pos := step w !pos;
    counts.(!pos) <- counts.(!pos) + 1
  done;
  counts

let random_step rng g u =
  Graphs.Graph.neighbor g u (Prng.Splitmix.int rng (Graphs.Graph.degree g))

let random_cover_time ?(cap = 10_000_000) rng g ~start =
  let n = Graphs.Graph.n g in
  let seen = Array.make n false in
  seen.(start) <- true;
  let remaining = ref (n - 1) in
  let pos = ref start in
  let t = ref 0 in
  while !remaining > 0 && !t < cap do
    incr t;
    pos := random_step rng g !pos;
    if not seen.(!pos) then begin
      seen.(!pos) <- true;
      decr remaining
    end
  done;
  if !remaining = 0 then Some !t else None

let random_hitting_time ?(cap = 10_000_000) rng g ~src ~dst =
  let pos = ref src in
  let t = ref 0 in
  while !pos <> dst && !t < cap do
    incr t;
    pos := random_step rng g !pos
  done;
  if !pos = dst then Some !t else None

let yanovski_bound g = 2 * Graphs.Graph.edge_count g * Graphs.Props.diameter g
