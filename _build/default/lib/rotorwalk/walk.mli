(** Single-agent rotor-router walks ("deterministic random walks",
    Propp machines) and plain random walks — the model the paper's
    related work (§1.2, refs [6,8,11,12,13]) builds on, and the origin
    of the ROTOR-ROUTER balancer: the balancing process is exactly
    x_t(u) parallel rotor walkers per node.

    The classic structural results are checkable with this module:
    Yanovski, Wagner & Bruckstein (Algorithmica 2003) prove a single
    rotor walk covers any graph within 2·m·diam(G) steps regardless of
    the initial rotor configuration, whereas the random-walk cover time
    is Θ(m·n) in the worst case. *)

type t

val create : ?init_rotor:(int -> int) -> Graphs.Graph.t -> t
(** A rotor walk on [g]; node [u]'s rotor starts at port
    [init_rotor u] (default 0). *)

val step : t -> int -> int
(** [step w u] fires node [u]'s rotor: returns the neighbor under the
    rotor and advances the rotor by one port. *)

val walk : t -> start:int -> steps:int -> int
(** Final node after [steps] firings from [start]. *)

val cover_time : ?cap:int -> t -> start:int -> int option
(** Steps until every node has been visited, or [None] if [cap]
    (default 10_000_000) is exceeded. *)

val visits : t -> start:int -> steps:int -> int array
(** Visit counts per node over a [steps]-step walk (the start node's
    initial occupancy counts as one visit). *)

(** {1 Random-walk comparison} *)

val random_cover_time :
  ?cap:int -> Prng.Splitmix.t -> Graphs.Graph.t -> start:int -> int option

val random_hitting_time :
  ?cap:int -> Prng.Splitmix.t -> Graphs.Graph.t -> src:int -> dst:int -> int option

val yanovski_bound : Graphs.Graph.t -> int
(** 2·m·diam(G) — the universal rotor-walk cover bound. *)
