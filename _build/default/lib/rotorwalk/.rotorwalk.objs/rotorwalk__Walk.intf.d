lib/rotorwalk/walk.mli: Graphs Prng
