lib/rotorwalk/walk.ml: Array Graphs Prng
