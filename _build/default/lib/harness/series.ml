type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize samples =
  if Array.length samples = 0 then invalid_arg "Series.summarize: empty sample";
  {
    n = Array.length samples;
    mean = Stats.mean samples;
    stddev = Stats.stddev samples;
    min = Stats.minimum samples;
    max = Stats.maximum samples;
    median = Stats.median samples;
  }

let replicate ~seeds f =
  if seeds = [] then invalid_arg "Series.replicate: no seeds";
  summarize (Array.of_list (List.map f seeds))

let sweep params f = List.map (fun p -> (p, f p)) params

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f ±%.3f (min %.3f, median %.3f, max %.3f)" s.n
    s.mean s.stddev s.min s.median s.max
