let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_cell s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string row = String.concat "," (List.map escape_cell row)

let to_string ~header ~rows =
  String.concat "\n" (List.map row_to_string (header :: rows)) ^ "\n"

let write ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header ~rows))
