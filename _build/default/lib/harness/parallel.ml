let num_domains () = max 1 (Domain.recommended_domain_count ())

type 'b outcome = Value of 'b | Raised of exn

let map ?domains f xs =
  let domains = match domains with Some d -> max 1 d | None -> num_domains () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let workers = min domains n in
    if workers = 1 then List.map f xs
    else begin
      let results = Array.make n None in
      (* Static round-robin split: worker w takes indices w, w+k, ... —
         no shared mutable state beyond the disjoint result slots. *)
      let worker w () =
        let out = ref [] in
        let i = ref w in
        while !i < n do
          let r = try Value (f items.(!i)) with e -> Raised e in
          out := (!i, r) :: !out;
          i := !i + workers
        done;
        !out
      in
      let handles = List.init workers (fun w -> Domain.spawn (worker w)) in
      List.iter
        (fun h ->
          List.iter (fun (i, r) -> results.(i) <- Some r) (Domain.join h))
        handles;
      Array.to_list results
      |> List.map (function
           | Some (Value v) -> v
           | Some (Raised e) -> raise e
           | None -> assert false)
    end
  end

let replicate ?domains ~seeds f =
  if seeds = [] then invalid_arg "Parallel.replicate: no seeds";
  Series.summarize (Array.of_list (map ?domains f seeds))
