type align = Left | Right

(* Display width = number of Unicode scalar values (all the symbols we
   print — δ, µ, φ, ✓, ✗, ° — are single-column), so UTF-8 cells align. *)
let display_width s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let render ?(align = []) ~header ~rows () =
  let cols = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> cols then
        invalid_arg
          (Printf.sprintf "Table.render: row %d has %d cells, header has %d" i
             (List.length row) cols))
    rows;
  let all = header :: rows in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun c cell -> widths.(c) <- max widths.(c) (display_width cell)))
    all;
  let align_of c = match List.nth_opt align c with Some a -> a | None -> Left in
  let pad c cell =
    let w = widths.(c) in
    let padding = String.make (w - display_width cell) ' ' in
    match align_of c with Left -> cell ^ padding | Right -> padding ^ cell
  in
  let render_row row =
    "| " ^ String.concat " | " (List.mapi pad row) ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (List.init cols (fun c -> String.make (widths.(c) + 2) '-'))
    ^ "|"
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let print ?align ~header ~rows () =
  print_string (render ?align ~header ~rows ());
  print_newline ()

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_opt_int = function None -> "-" | Some i -> string_of_int i
