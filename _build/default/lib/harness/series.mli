(** Multi-seed replication for randomized components: run a measurement
    across seeds and summarize.  Deterministic algorithms don't need
    this; the randomized baselines ([5], [18], random matchings) and
    random-graph sweeps do. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** @raise Invalid_argument on an empty sample. *)

val replicate : seeds:int list -> (int -> float) -> summary
(** [replicate ~seeds f] evaluates [f seed] for every seed and
    summarizes.  @raise Invalid_argument on an empty seed list. *)

val sweep : 'a list -> ('a -> 'b) -> ('a * 'b) list
(** Evaluate a measurement over a parameter list, keeping the pairing. *)

val pp_summary : Format.formatter -> summary -> unit
