(** Aligned plain-text tables for the experiment harness's
    paper-shaped output. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  rows:string list list ->
  unit ->
  string
(** Render a table with a header row, a separator, and the data rows.
    Columns are padded to the widest cell.  [align] (default: all Left)
    gives per-column alignment; missing entries default to Left.
    @raise Invalid_argument if a row's width differs from the
    header's. *)

val print :
  ?align:align list -> header:string list -> rows:string list list -> unit -> unit
(** [render] to stdout, followed by a newline. *)

val fmt_float : ?decimals:int -> float -> string
(** Compact float cell (default 2 decimals). *)

val fmt_opt_int : int option -> string
(** ["-"] for [None]. *)
