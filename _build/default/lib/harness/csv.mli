(** Minimal CSV writer (RFC-4180-style quoting) for experiment data. *)

val escape_cell : string -> string
(** Quote a cell iff it contains a comma, quote, or newline. *)

val row_to_string : string list -> string

val write : path:string -> header:string list -> rows:string list list -> unit
(** Write a CSV file with a header row.  Overwrites. *)

val to_string : header:string list -> rows:string list list -> string
