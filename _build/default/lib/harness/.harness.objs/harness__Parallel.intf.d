lib/harness/parallel.mli: Series
