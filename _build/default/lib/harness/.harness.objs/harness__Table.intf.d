lib/harness/table.mli:
