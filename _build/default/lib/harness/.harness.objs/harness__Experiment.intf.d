lib/harness/experiment.mli: Core Graphs
