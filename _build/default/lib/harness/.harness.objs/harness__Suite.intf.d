lib/harness/suite.mli: Result
