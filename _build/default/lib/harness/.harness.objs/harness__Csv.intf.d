lib/harness/csv.mli:
