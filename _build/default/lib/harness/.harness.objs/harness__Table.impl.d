lib/harness/table.ml: Array Char List Printf String
