lib/harness/series.mli: Format
