lib/harness/stats.mli:
