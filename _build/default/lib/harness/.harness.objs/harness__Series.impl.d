lib/harness/series.ml: Array Format List Stats
