lib/harness/suite.ml: Array Baselines Core Experiment Graphs Hetero Irregular List Option Printf Prng Rotorwalk Series Stats String Table
