lib/harness/stats.ml: Array
