lib/harness/experiment.ml: Array Baselines Core Graphs Hashtbl Printf Prng
