type t = {
  name : string;
  capacity : int;
  assign : step:int -> node:int -> load:int -> ports:int array -> unit;
}

let check_capacity fn g ~capacity ~least =
  let need = least (Igraph.max_degree g) in
  if capacity < need then
    invalid_arg
      (Printf.sprintf "Ibalancer.%s: capacity %d too small (need >= %d)" fn capacity
         need)

let rotor_router g ~capacity =
  check_capacity "rotor_router" g ~capacity ~least:(fun dmax -> dmax + 1);
  let n = Igraph.n g in
  let rotor = Array.make n 0 in
  let assign ~step:_ ~node ~load ~ports =
    if load < 0 then invalid_arg "Ibalancer.rotor_router: negative load";
    let q = load / capacity and e = load mod capacity in
    Array.fill ports 0 capacity q;
    let r = rotor.(node) in
    for i = 0 to e - 1 do
      let k = (r + i) mod capacity in
      ports.(k) <- ports.(k) + 1
    done;
    rotor.(node) <- (r + e) mod capacity
  in
  { name = Printf.sprintf "i-rotor-router(D=%d)" capacity; capacity; assign }

let send_floor g ~capacity =
  check_capacity "send_floor" g ~capacity ~least:(fun dmax -> dmax + 1);
  let assign ~step:_ ~node ~load ~ports =
    if load < 0 then invalid_arg "Ibalancer.send_floor: negative load";
    let q = load / capacity and e = load mod capacity in
    Array.fill ports 0 capacity q;
    let first_self = Igraph.degree g node in
    ports.(first_self) <- ports.(first_self) + e
  in
  { name = Printf.sprintf "i-send-floor(D=%d)" capacity; capacity; assign }

let send_round g ~capacity =
  check_capacity "send_round" g ~capacity ~least:(fun dmax -> 2 * dmax);
  let assign ~step:_ ~node ~load ~ports =
    if load < 0 then invalid_arg "Ibalancer.send_round: negative load";
    let deg = Igraph.degree g node in
    let q = load / capacity and e = load mod capacity in
    let round_up = 2 * e >= capacity in
    let share = if round_up then q + 1 else q in
    for k = 0 to deg - 1 do
      ports.(k) <- share
    done;
    let extra = if round_up then e - deg else e in
    (* capacity ≥ 2·max_degree keeps extra within [0, capacity - deg]. *)
    for k = deg to capacity - 1 do
      ports.(k) <- q + (if k - deg < extra then 1 else 0)
    done
  in
  { name = Printf.sprintf "i-send-round(D=%d)" capacity; capacity; assign }
