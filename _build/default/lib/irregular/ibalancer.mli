(** Balancers for irregular graphs.

    Every node has the same number of ports, [capacity] = D: the first
    [deg u] are its original edges, the remaining D − deg(u) are
    self-loops.  This equalized-capacity model is the non-regular
    reduction sketched by [17] (and by the paper's footnote 1): the walk
    matrix is doubly stochastic, so the flat vector is the fixed point
    and the paper's class definitions transfer port-wise. *)

type t = {
  name : string;
  capacity : int; (** D: ports per node (must exceed the max degree) *)
  assign : step:int -> node:int -> load:int -> ports:int array -> unit;
}

val rotor_router : Igraph.t -> capacity:int -> t
(** Round-robin over all D ports, per-node rotor.
    @raise Invalid_argument if [capacity <= max_degree] (every node
    needs at least one self-loop for the lazy walk). *)

val send_floor : Igraph.t -> capacity:int -> t
(** ⌊x/D⌋ on every port, excess on the node's first self-loop. *)

val send_round : Igraph.t -> capacity:int -> t
(** [x/D] (nearest, half up) on the original edges, remainder spread
    one-per-self-loop.  @raise Invalid_argument if [capacity < 2 ×
    max_degree] (self-loops must absorb the round-up deficit). *)
