type t = {
  n : int;
  offsets : int array; (* length n+1; ports of u live at offsets.(u) .. offsets.(u+1)-1 *)
  adj : int array;
  edge_list : (int * int) array;
}

let of_edges ~n edges =
  if n <= 0 then invalid_arg "Igraph.of_edges: n must be positive";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Igraph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Igraph.of_edges: self-edges are not allowed")
    edges;
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + deg.(u)
  done;
  let adj = Array.make offsets.(n) (-1) in
  let next = Array.copy offsets in
  List.iter
    (fun (u, v) ->
      adj.(next.(u)) <- v;
      next.(u) <- next.(u) + 1;
      adj.(next.(v)) <- u;
      next.(v) <- next.(v) + 1)
    edges;
  { n; offsets; adj; edge_list = Array.of_list edges }

let n g = g.n
let degree g u =
  if u < 0 || u >= g.n then invalid_arg "Igraph.degree";
  g.offsets.(u + 1) - g.offsets.(u)

let max_degree g =
  let m = ref 0 in
  for u = 0 to g.n - 1 do
    m := max !m (degree g u)
  done;
  !m

let min_degree g =
  let m = ref max_int in
  for u = 0 to g.n - 1 do
    m := min !m (degree g u)
  done;
  if g.n = 0 then 0 else !m

let edge_count g = Array.length g.edge_list

let neighbor g u k =
  if u < 0 || u >= g.n || k < 0 || k >= degree g u then invalid_arg "Igraph.neighbor";
  g.adj.(g.offsets.(u) + k)

let iter_ports g u f =
  if u < 0 || u >= g.n then invalid_arg "Igraph.iter_ports";
  for k = 0 to degree g u - 1 do
    f k g.adj.(g.offsets.(u) + k)
  done

let is_connected g =
  if g.n = 0 then true
  else begin
    let seen = Array.make g.n false in
    let q = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 q;
    let count = ref 1 in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      iter_ports g u (fun _ v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr count;
            Queue.add v q
          end)
    done;
    !count = g.n
  end

let edges g = Array.copy g.edge_list

let wheel n =
  if n < 4 then invalid_arg "Igraph.wheel: n must be >= 4";
  let rim = n - 1 in
  let spokes = List.init rim (fun i -> (0, i + 1)) in
  let ring = List.init rim (fun i -> (1 + i, 1 + ((i + 1) mod rim))) in
  of_edges ~n (spokes @ ring)

let barbell ~clique ~path =
  if clique < 2 then invalid_arg "Igraph.barbell: clique must be >= 2";
  if path < 1 then invalid_arg "Igraph.barbell: path must be >= 1";
  let n = (2 * clique) + (path - 1) in
  let edges = ref [] in
  (* Left clique on 0..clique-1; right clique on n-clique..n-1; a path
     of [path] edges joins node clique-1 to node n-clique. *)
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      edges := (u, v) :: !edges
    done
  done;
  let right = n - clique in
  for u = right to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  let hops = List.init path (fun i -> i) in
  List.iter
    (fun i ->
      let a = if i = 0 then clique - 1 else clique - 1 + i in
      let b = if i = path - 1 then right else clique + i in
      edges := (a, b) :: !edges)
    hops;
  of_edges ~n !edges

let random_connected rng ~n ~extra_edges =
  if n < 2 then invalid_arg "Igraph.random_connected: n must be >= 2";
  let seen = Hashtbl.create (n + extra_edges) in
  let edges = ref [] in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v) :: !edges;
      true
    end
    else false
  in
  (* Random attachment tree: connected by construction. *)
  for v = 1 to n - 1 do
    ignore (add v (Prng.Splitmix.int rng v))
  done;
  let budget = ref (20 * (extra_edges + 1)) in
  let added = ref 0 in
  while !added < extra_edges && !budget > 0 do
    decr budget;
    let u = Prng.Splitmix.int rng n and v = Prng.Splitmix.int rng n in
    if add u v then incr added
  done;
  of_edges ~n !edges

let star n =
  if n < 2 then invalid_arg "Igraph.star: n must be >= 2";
  of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))
