(** Synchronous engine for irregular graphs (equalized-capacity model):
    same semantics as {!Core.Engine} — conservation enforced, tokens on
    ports [0..deg(u)-1] travel, the rest stay. *)

exception Invariant_violation of string

type result = {
  steps_run : int;
  final_loads : int array;
  series : (int * int) array; (** (step, discrepancy) *)
}

val run :
  ?sample_every:int ->
  ?hook:(int -> int array -> unit) ->
  graph:Igraph.t ->
  balancer:Ibalancer.t ->
  init:int array ->
  steps:int ->
  unit ->
  result

val discrepancy_after :
  graph:Igraph.t -> balancer:Ibalancer.t -> init:int array -> steps:int -> int
