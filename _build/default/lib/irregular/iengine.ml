exception Invariant_violation of string

type result = {
  steps_run : int;
  final_loads : int array;
  series : (int * int) array;
}

let scan_discrepancy loads =
  let lo = ref loads.(0) and hi = ref loads.(0) in
  Array.iter
    (fun x ->
      if x < !lo then lo := x;
      if x > !hi then hi := x)
    loads;
  !hi - !lo

let run ?(sample_every = 1) ?hook ~graph ~balancer ~init ~steps () =
  let n = Igraph.n graph in
  let cap = balancer.Ibalancer.capacity in
  if Array.length init <> n then invalid_arg "Iengine.run: init length mismatch";
  if steps < 0 then invalid_arg "Iengine.run: negative step count";
  if sample_every <= 0 then invalid_arg "Iengine.run: sample_every must be positive";
  if cap <= Igraph.max_degree graph then
    invalid_arg "Iengine.run: capacity must exceed the maximum degree";
  let cur = ref (Array.copy init) in
  let next = ref (Array.make n 0) in
  let ports = Array.make cap 0 in
  let series = ref [ (0, scan_discrepancy !cur) ] in
  let steps_done = ref 0 in
  for t = 1 to steps do
    let cur_a = !cur and next_a = !next in
    Array.fill next_a 0 n 0;
    for u = 0 to n - 1 do
      let x = cur_a.(u) in
      balancer.Ibalancer.assign ~step:t ~node:u ~load:x ~ports;
      let deg = Igraph.degree graph u in
      let sum = ref 0 in
      for k = 0 to cap - 1 do
        sum := !sum + ports.(k);
        if k < deg && ports.(k) < 0 then
          raise
            (Invariant_violation
               (Printf.sprintf "%s: node %d step %d sends %d (< 0) on port %d"
                  balancer.Ibalancer.name u t ports.(k) k))
      done;
      if !sum <> x then
        raise
          (Invariant_violation
             (Printf.sprintf "%s: node %d step %d assigned %d of load %d"
                balancer.Ibalancer.name u t !sum x));
      let kept = ref 0 in
      for k = 0 to cap - 1 do
        if k < deg then begin
          let v = Igraph.neighbor graph u k in
          next_a.(v) <- next_a.(v) + ports.(k)
        end
        else kept := !kept + ports.(k)
      done;
      next_a.(u) <- next_a.(u) + !kept
    done;
    let tmp = !cur in
    cur := !next;
    next := tmp;
    steps_done := t;
    if t mod sample_every = 0 || t = steps then
      series := (t, scan_discrepancy !cur) :: !series;
    match hook with Some f -> f t !cur | None -> ()
  done;
  {
    steps_run = !steps_done;
    final_loads = !cur;
    series = Array.of_list (List.rev !series);
  }

let discrepancy_after ~graph ~balancer ~init ~steps =
  let r = run ~graph ~balancer ~init ~steps () in
  scan_discrepancy r.final_loads
