(** Non-regular undirected graphs — the substrate for the paper's
    remark (§1.1) that the results extend beyond regular graphs.

    The standard reduction (cf. Rabani et al. [17]) equalizes the
    balancing degree instead of the graph: pick a common capacity
    D ≥ max degree + 1 and give node u exactly D − deg(u) self-loops, so
    every node has D ports and the random-walk matrix
    P(u,v) = 1/D (edges), P(u,u) = (D − deg u)/D is symmetric and doubly
    stochastic — the uniform load vector is again the fixed point, and
    the engine/algorithm machinery carries over with per-node port
    counts. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** Like {!Graphs.Graph.of_edges} but without the regularity check.
    Isolated vertices are allowed (degree 0); self-edges are not.
    @raise Invalid_argument on out-of-range endpoints or [u = v]. *)

val n : t -> int
val degree : t -> int -> int
val max_degree : t -> int
val min_degree : t -> int
val edge_count : t -> int

val neighbor : t -> int -> int -> int
(** [neighbor g u k] for [k < degree g u]. *)

val iter_ports : t -> int -> (int -> int -> unit) -> unit
val is_connected : t -> bool

val edges : t -> (int * int) array

(** {1 Generators} *)

val wheel : int -> t
(** [wheel n] ([n ≥ 4]): a hub (node 0) joined to every node of an
    (n−1)-cycle.  Hub degree n−1, rim degree 3 — maximally skewed. *)

val barbell : clique:int -> path:int -> t
(** Two [clique]-cliques joined by a [path]-edge path — the classic
    bad-conductance graph. *)

val random_connected : Prng.Splitmix.t -> n:int -> extra_edges:int -> t
(** A uniform random spanning tree skeleton (random attachment) plus
    [extra_edges] random non-duplicate edges: connected, irregular. *)

val star : int -> t
(** [star n]: node 0 joined to nodes 1..n−1. *)
