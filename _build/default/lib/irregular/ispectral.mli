(** Spectral analysis of the equalized-capacity walk on irregular
    graphs: P(u,v) = 1/D on edges, P(u,u) = (D − deg u)/D — symmetric,
    doubly stochastic, so the paper's µ and T carry over verbatim. *)

val transition_matrix : Igraph.t -> capacity:int -> Linalg.Csr.t
(** @raise Invalid_argument if [capacity <= max_degree]. *)

val eigenvalue_gap : ?max_iter:int -> ?tol:float -> Igraph.t -> capacity:int -> float

val horizon : gap:float -> n:int -> initial_discrepancy:int -> c:float -> int
(** Same formula as {!Graphs.Spectral.horizon}. *)
