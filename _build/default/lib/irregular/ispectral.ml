let transition_matrix g ~capacity =
  let n = Igraph.n g in
  if capacity <= Igraph.max_degree g then
    invalid_arg "Ispectral.transition_matrix: capacity must exceed max degree";
  let p = 1.0 /. float_of_int capacity in
  let triplets = ref [] in
  for u = 0 to n - 1 do
    let deg = Igraph.degree g u in
    triplets := (u, u, float_of_int (capacity - deg) *. p) :: !triplets;
    Igraph.iter_ports g u (fun _ v -> triplets := (u, v, p) :: !triplets)
  done;
  Linalg.Csr.of_triplets ~n !triplets

let eigenvalue_gap ?max_iter ?tol g ~capacity =
  Linalg.Eigen.spectral_gap ?max_iter ?tol (transition_matrix g ~capacity)

let horizon = Graphs.Spectral.horizon
