lib/irregular/igraph.ml: Array Hashtbl List Prng Queue
