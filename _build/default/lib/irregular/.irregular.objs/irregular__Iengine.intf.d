lib/irregular/iengine.mli: Ibalancer Igraph
