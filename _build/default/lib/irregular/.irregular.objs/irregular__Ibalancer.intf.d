lib/irregular/ibalancer.mli: Igraph
