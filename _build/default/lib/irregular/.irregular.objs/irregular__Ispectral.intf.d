lib/irregular/ispectral.mli: Igraph Linalg
