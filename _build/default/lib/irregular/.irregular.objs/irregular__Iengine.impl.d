lib/irregular/iengine.ml: Array Ibalancer Igraph List Printf
