lib/irregular/ibalancer.ml: Array Igraph Printf
