lib/irregular/ispectral.ml: Graphs Igraph Linalg
