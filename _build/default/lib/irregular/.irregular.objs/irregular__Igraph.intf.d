lib/irregular/igraph.mli: Prng
