(** Non-uniform machines — the Adolphs & Berenbrink [2] extension
    direction cited in the paper's introduction: processor u has an
    integer speed s(u) ≥ 1 and the fair allocation gives it load
    proportional to s(u).  Balance is measured on heights
    h(u) = x(u)/s(u).

    The balancer is the always-round-down height diffusion of [2]: in
    every round, node u sends ⌊(h(u) − h(v)) · min(s(u), s(v)) / (d+1)⌋
    tokens to each lower neighbor v.  Sends are non-negative by
    construction and never exceed the available load, so no negative
    loads arise (the NL ✓ regime); the price is that it needs neighbor
    loads (NC ✗), like every first-order-difference scheme. *)

type result = {
  steps_run : int;
  final_loads : int array;
  series : (int * float) array; (** (step, height discrepancy) *)
  reached_target : int option;
}

val height_discrepancy : loads:int array -> speeds:int array -> float
(** max x/s − min x/s. *)

val run :
  ?sample_every:int ->
  ?stop_at_height_discrepancy:float ->
  graph:Graphs.Graph.t ->
  speeds:int array ->
  init:int array ->
  steps:int ->
  unit ->
  result
(** @raise Invalid_argument on a speed < 1 or length mismatches. *)
