type result = {
  steps_run : int;
  final_loads : int array;
  series : (int * float) array;
  reached_target : int option;
}

let height_discrepancy ~loads ~speeds =
  if Array.length loads = 0 || Array.length loads <> Array.length speeds then
    invalid_arg "Nonuniform.height_discrepancy";
  let h i = float_of_int loads.(i) /. float_of_int speeds.(i) in
  let lo = ref (h 0) and hi = ref (h 0) in
  for i = 1 to Array.length loads - 1 do
    let x = h i in
    if x < !lo then lo := x;
    if x > !hi then hi := x
  done;
  !hi -. !lo

let run ?(sample_every = 1) ?stop_at_height_discrepancy ~graph ~speeds ~init ~steps () =
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in
  if Array.length speeds <> n || Array.length init <> n then
    invalid_arg "Nonuniform.run: length mismatch";
  Array.iter (fun s -> if s < 1 then invalid_arg "Nonuniform.run: speeds must be >= 1") speeds;
  if steps < 0 then invalid_arg "Nonuniform.run: negative steps";
  if sample_every <= 0 then invalid_arg "Nonuniform.run: sample_every must be positive";
  let loads = Array.copy init in
  let delta = Array.make n 0 in
  let denom = float_of_int (d + 1) in
  let series = ref [ (0, height_discrepancy ~loads ~speeds) ] in
  let reached = ref None in
  (match stop_at_height_discrepancy with
   | Some target when height_discrepancy ~loads ~speeds <= target -> reached := Some 0
   | _ -> ());
  let steps_done = ref 0 in
  (try
     for t = 1 to steps do
       if !reached <> None && stop_at_height_discrepancy <> None then raise Exit;
       Array.fill delta 0 n 0;
       for u = 0 to n - 1 do
         let hu = float_of_int loads.(u) /. float_of_int speeds.(u) in
         let sent = ref 0 in
         Graphs.Graph.iter_ports graph u (fun _ v ->
             let hv = float_of_int loads.(v) /. float_of_int speeds.(v) in
             if hu > hv then begin
               let w = float_of_int (min speeds.(u) speeds.(v)) in
               let f = int_of_float ((hu -. hv) *. w /. denom) in
               if f > 0 then begin
                 delta.(v) <- delta.(v) + f;
                 sent := !sent + f
               end
             end);
         delta.(u) <- delta.(u) - !sent;
         (* Sends are bounded: Σ_v (hu - hv)·min(s)/(d+1) ≤ d·hu·s(u)/(d+1)
            < x(u), so the load never goes negative; assert it anyway. *)
         assert (!sent <= loads.(u))
       done;
       for u = 0 to n - 1 do
         loads.(u) <- loads.(u) + delta.(u)
       done;
       steps_done := t;
       let disc = height_discrepancy ~loads ~speeds in
       if t mod sample_every = 0 || t = steps then series := (t, disc) :: !series;
       match stop_at_height_discrepancy with
       | Some target when disc <= target && !reached = None -> reached := Some t
       | _ -> ()
     done
   with Exit -> ());
  {
    steps_run = !steps_done;
    final_loads = loads;
    series = Array.of_list (List.rev !series);
    reached_target = !reached;
  }
