(** Non-uniform (weighted) tokens — the extension direction of
    Adolphs & Berenbrink [1] / Akbari et al. [4] that the paper's
    introduction cites: tokens are still indivisible, but each carries a
    positive integer weight, and discrepancy is measured in total weight
    per node.

    The natural weighted ROTOR-ROUTER sends tokens one at a time in
    round-robin port order, either in arrival order ({!Oblivious}) or
    heaviest-first ({!Largest_first}); the classic transfer result is
    that unit-token discrepancy bounds carry over multiplied by the
    maximum token weight w_max — which the tests check empirically. *)

type bag = int array
(** The token weights held at one node (each ≥ 1). *)

type state = bag array
(** One bag per node. *)

type policy =
  | Oblivious      (** distribute tokens in stored order *)
  | Largest_first  (** heaviest tokens first — a classic LPT-style heuristic *)

type result = {
  steps_run : int;
  final : state;
  weight_series : (int * int) array; (** (step, weighted discrepancy) *)
}

val node_weight : bag -> int
val total_weight : state -> int
val token_count : state -> int

val weighted_discrepancy : state -> int
(** max node weight − min node weight. *)

val count_discrepancy : state -> int
(** discrepancy in token counts (the unit-token quantity). *)

val max_token_weight : state -> int
(** 0 for an empty system. *)

val point_mass : n:int -> weights:int array -> state
(** All tokens on node 0. *)

val uniform_random :
  Prng.Splitmix.t -> n:int -> tokens:int -> max_weight:int -> state
(** [tokens] tokens with weights uniform in [1..max_weight], each thrown
    at a uniform node. *)

val run :
  ?sample_every:int ->
  policy ->
  graph:Graphs.Graph.t ->
  self_loops:int ->
  init:state ->
  steps:int ->
  result
(** Weighted rotor-router for [steps] synchronous rounds.  Token
    multisets are conserved exactly (same weights, possibly different
    homes). *)
