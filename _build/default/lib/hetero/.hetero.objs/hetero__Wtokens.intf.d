lib/hetero/wtokens.mli: Graphs Prng
