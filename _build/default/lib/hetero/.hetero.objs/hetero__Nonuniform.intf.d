lib/hetero/nonuniform.mli: Graphs
