lib/hetero/wtokens.ml: Array Core Graphs List Prng
