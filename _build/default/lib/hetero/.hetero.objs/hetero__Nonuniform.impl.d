lib/hetero/nonuniform.ml: Array Graphs List
