(** Randomized rounding of per-edge flows to the nearest integers —
    Sauerwald & Sun (FOCS 2012); row 3 of Table 1.

    Each original edge independently receives
    ⌊x/d⁺⌋ + Bernoulli(frac(x/d⁺)) tokens; whatever remains of the load
    (possibly negative) stays on the first self-loop.  This achieves
    O(√(d log n)) discrepancy after O(T) on expanders but can produce
    negative loads (NL ✗). *)

val make : Prng.Splitmix.t -> Graphs.Graph.t -> self_loops:int -> Core.Balancer.t
(** @raise Invalid_argument if [self_loops < 1]. *)
