(** The Theorem 4.1 lower-bound construction: a round-fair balancer
    (in the sense of Rabani et al. [17]) that is {e not} cumulatively
    fair and gets stuck at discrepancy Ω(d · diam(G)).

    Pick a node u₀ and set b(v) = dist(v, u₀).  Every directed edge
    (v₁, v₂) carries the constant flow min(b(v₁), b(v₂)) in every step,
    and node v keeps b(v) tokens on its self-loop.  With the matching
    initial loads x(v) = Σ_k min(b(v), b(nbr_k)) + b(v) the system is in
    steady state: loads never change, flows per node differ by at most
    one (round-fairness), yet the discrepancy stays ≈ (d+1)·diam(G). *)

val make : ?root:int -> Graphs.Graph.t -> Core.Balancer.t * int array
(** [make g] returns the steady-state balancer (with one self-loop, the
    paper's "keep" slot) and its initial load vector.  [root] defaults
    to node 0. *)

val expected_discrepancy : ?root:int -> Graphs.Graph.t -> int
(** The discrepancy of the steady state — (d+1)·ecc(root) exactly. *)
