(** Dimension-exchange (matching-model) balancers — the related-work
    contrast of §1.2: nodes balance with one neighbor per round, and
    constant discrepancy is achievable (Friedrich & Sauerwald STOC 2009;
    Sauerwald & Sun FOCS 2012), unlike the ≥ d barrier of the diffusive
    model (Theorem 4.2).

    Two matching generators:

    - {e random matching}: each round, a maximal matching grown greedily
      over a random edge order; the averaging excess token goes to a
      random endpoint.
    - {e balancing circuit}: a fixed proper edge colouring (greedy,
      ≤ 2d − 1 colours) applied round-robin; the excess token goes
      deterministically to the endpoint that was already larger (ties:
      lower id). *)

type mode =
  | Random_matching of Prng.Splitmix.t
  | Balancing_circuit
  | Balancing_circuit_randomized of Prng.Splitmix.t
      (** the [10] variant: the fixed circuit of matchings, but the
          averaging excess token goes to a fair-coin endpoint — this is
          what achieves O(1) discrepancy on constant-degree graphs
          (Sauerwald & Sun FOCS 2012), where the deterministic
          tie-breaking can stall at a fixed point above O(1). *)

type result = {
  steps_run : int;
  final_loads : int array;
  series : (int * int) array; (** (step, discrepancy) samples *)
  reached_target : int option;
}

val edge_coloring : Graphs.Graph.t -> (int * int) array array
(** Greedy proper edge colouring: an array of matchings (colour
    classes), each an array of undirected edges.  Exposed for tests. *)

val run :
  ?sample_every:int ->
  ?stop_at_discrepancy:int ->
  mode ->
  Graphs.Graph.t ->
  init:int array ->
  steps:int ->
  result
