lib/baselines/mimic.ml: Array Continuous Core Float Graphs Printf
