lib/baselines/random_extra.ml: Array Core Graphs Printf Prng
