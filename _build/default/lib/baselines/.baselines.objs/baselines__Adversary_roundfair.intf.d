lib/baselines/adversary_roundfair.mli: Core Graphs
