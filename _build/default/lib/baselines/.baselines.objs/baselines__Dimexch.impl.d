lib/baselines/dimexch.ml: Array Graphs List Prng
