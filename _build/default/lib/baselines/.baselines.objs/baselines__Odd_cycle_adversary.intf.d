lib/baselines/odd_cycle_adversary.mli: Core Graphs
