lib/baselines/mimic.mli: Core Graphs
