lib/baselines/quasirandom.mli: Core Graphs
