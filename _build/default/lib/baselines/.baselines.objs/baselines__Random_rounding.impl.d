lib/baselines/random_rounding.ml: Array Core Graphs Printf Prng
