lib/baselines/adversary_stateless.ml: Array Core Graphs Hashtbl List
