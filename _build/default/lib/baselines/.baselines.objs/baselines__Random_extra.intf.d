lib/baselines/random_extra.mli: Core Graphs Prng
