lib/baselines/continuous.mli: Graphs
