lib/baselines/adversary_roundfair.ml: Array Core Graphs
