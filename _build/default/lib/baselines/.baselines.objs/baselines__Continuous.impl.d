lib/baselines/continuous.ml: Array Graphs List
