lib/baselines/odd_cycle_adversary.ml: Array Core Graphs
