lib/baselines/random_rounding.mli: Core Graphs Prng
