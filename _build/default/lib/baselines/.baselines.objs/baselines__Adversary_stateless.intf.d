lib/baselines/adversary_stateless.mli: Core Graphs
