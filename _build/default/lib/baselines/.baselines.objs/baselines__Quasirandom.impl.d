lib/baselines/quasirandom.ml: Array Core Graphs Printf
