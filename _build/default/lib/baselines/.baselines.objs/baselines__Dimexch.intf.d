lib/baselines/dimexch.mli: Graphs Prng
