(** The continuous (divisible-load) diffusion process.

    x_{t+1} = P x_t on the balancing graph G⁺ — the idealized process
    every discrete scheme in the paper is compared against.  Converges
    to the flat average for connected G with d° ≥ 1 (or any
    non-bipartite G). *)

type result = {
  steps_run : int;
  final : float array;
  series : (int * float) array; (** (step, discrepancy) samples *)
}

val discrepancy : float array -> float

val run :
  ?sample_every:int ->
  ?stop_at_discrepancy:float ->
  graph:Graphs.Graph.t ->
  self_loops:int ->
  init:float array ->
  steps:int ->
  unit ->
  result
(** Iterate the diffusion for [steps] rounds (early exit at
    [stop_at_discrepancy] if given — the step count it stops at is the
    empirical balancing time T). *)

val step_into : Graphs.Graph.t -> self_loops:int -> float array -> float array -> unit
(** One diffusion step, [dst <- P src]; exposed for the mimic balancer
    and for tests. *)
