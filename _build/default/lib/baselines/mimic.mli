(** The continuous-flow–mimicking scheme of Akbari, Berenbrink &
    Sauerwald, "A simple approach for adapting continuous load balancing
    processes to discrete settings" (PODC 2012) — row "Computation based
    on continuous diffusion" in Table 1.

    The balancer simulates the continuous diffusion internally.  For
    every directed original edge e it tracks the cumulative continuous
    flow W_t(e) and keeps the cumulative discrete flow at
    F_t(e) = \[W_t(e)\] (nearest integer), sending F_t(e) − F_{t−1}(e)
    tokens in step t.  The paper proves discrepancy ≤ 2d after T — at
    the cost of possible negative loads (NL ✗) and of needing the
    continuous trajectory (NC ✗), exactly the trade-offs Table 1
    records. *)

val make : Graphs.Graph.t -> self_loops:int -> init:int array -> Core.Balancer.t
(** [make g ~self_loops ~init] builds the balancer.  [init] must be the
    same initial load vector the engine will be started with: the
    internal continuous process starts from it.  The balancer is
    single-use (it owns mutable cumulative state tied to step numbers
    starting at 1). *)
