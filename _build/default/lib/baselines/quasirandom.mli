(** The quasirandom (bounded-error) diffusion of Friedrich, Gairing &
    Sauerwald, "Quasirandom load balancing" (SODA 2010) — the
    deterministic rounding scheme the paper's §1.2 discusses: on each
    directed edge, the continuous share x_t(u)/d⁺ is rounded up or down
    {e deterministically} so that the accumulated rounding error per
    edge stays bounded by a constant.

    Concretely, each directed original edge (u,k) carries an error
    accumulator acc ∈ (−1, 1); the edge sends ⌊x/d⁺ + acc⌋ tokens and
    the fractional residue rolls into acc.  The per-edge cumulative
    deviation between tokens sent and the continuous shares of the
    {e discrete} trajectory stays < 1 at all times ([9]'s bounded-error
    property, constant 1).

    As the paper notes, this scheme may overdraw a node (negative load,
    the NL ✗ issue of [9]); the engine permits and records it. *)

val make : Graphs.Graph.t -> self_loops:int -> Core.Balancer.t * (unit -> float)
(** [make g ~self_loops] returns the balancer and an inspector yielding
    the largest |accumulator| over all edges — the bounded-error
    invariant says the inspector never returns ≥ 1.
    Needs [self_loops ≥ 1] to hold the residue. *)
