type mode =
  | Random_matching of Prng.Splitmix.t
  | Balancing_circuit
  | Balancing_circuit_randomized of Prng.Splitmix.t

type result = {
  steps_run : int;
  final_loads : int array;
  series : (int * int) array;
  reached_target : int option;
}

let edge_coloring g =
  let n = Graphs.Graph.n g in
  let d = Graphs.Graph.degree g in
  let max_colors = (2 * d) - 1 in
  let node_used = Array.make_matrix n max_colors false in
  let classes = Array.make max_colors [] in
  let used_colors = ref 0 in
  Array.iter
    (fun (u, v) ->
      let c = ref 0 in
      while node_used.(u).(!c) || node_used.(v).(!c) do
        incr c
      done;
      node_used.(u).(!c) <- true;
      node_used.(v).(!c) <- true;
      classes.(!c) <- (u, v) :: classes.(!c);
      if !c + 1 > !used_colors then used_colors := !c + 1)
    (Graphs.Graph.edges g);
  Array.init !used_colors (fun c -> Array.of_list classes.(c))

let random_maximal_matching rng g =
  let n = Graphs.Graph.n g in
  let edges = Graphs.Graph.edges g in
  Prng.Sample.shuffle rng edges;
  let matched = Array.make n false in
  let out = ref [] in
  Array.iter
    (fun (u, v) ->
      if (not matched.(u)) && not matched.(v) then begin
        matched.(u) <- true;
        matched.(v) <- true;
        out := (u, v) :: !out
      end)
    edges;
  Array.of_list !out

let balance_pair ~excess_to_u loads u v =
  let tot = loads.(u) + loads.(v) in
  let lo = tot / 2 and rem = tot mod 2 in
  if excess_to_u then begin
    loads.(u) <- lo + rem;
    loads.(v) <- lo
  end
  else begin
    loads.(u) <- lo;
    loads.(v) <- lo + rem
  end

let scan_discrepancy loads =
  let lo = ref loads.(0) and hi = ref loads.(0) in
  Array.iter
    (fun x ->
      if x < !lo then lo := x;
      if x > !hi then hi := x)
    loads;
  !hi - !lo

let run ?(sample_every = 1) ?stop_at_discrepancy mode g ~init ~steps =
  let n = Graphs.Graph.n g in
  if Array.length init <> n then invalid_arg "Dimexch.run: init length mismatch";
  if steps < 0 then invalid_arg "Dimexch.run: negative steps";
  if sample_every <= 0 then invalid_arg "Dimexch.run: sample_every must be positive";
  let loads = Array.copy init in
  let circuit =
    match mode with
    | Balancing_circuit | Balancing_circuit_randomized _ -> edge_coloring g
    | Random_matching _ -> [||]
  in
  let series = ref [ (0, scan_discrepancy loads) ] in
  let reached = ref None in
  (match stop_at_discrepancy with
   | Some target when scan_discrepancy loads <= target -> reached := Some 0
   | _ -> ());
  let steps_done = ref 0 in
  (try
     for t = 1 to steps do
       if !reached <> None && stop_at_discrepancy <> None then raise Exit;
       (match mode with
        | Random_matching rng ->
          let matching = random_maximal_matching rng g in
          Array.iter
            (fun (u, v) ->
              balance_pair ~excess_to_u:(Prng.Splitmix.bool rng) loads u v)
            matching
        | Balancing_circuit ->
          let matching = circuit.((t - 1) mod Array.length circuit) in
          Array.iter
            (fun (u, v) ->
              let excess_to_u =
                loads.(u) > loads.(v) || (loads.(u) = loads.(v) && u < v)
              in
              balance_pair ~excess_to_u loads u v)
            matching
        | Balancing_circuit_randomized rng ->
          let matching = circuit.((t - 1) mod Array.length circuit) in
          Array.iter
            (fun (u, v) ->
              balance_pair ~excess_to_u:(Prng.Splitmix.bool rng) loads u v)
            matching);
       steps_done := t;
       let disc = scan_discrepancy loads in
       if t mod sample_every = 0 || t = steps then series := (t, disc) :: !series;
       match stop_at_discrepancy with
       | Some target when disc <= target && !reached = None -> reached := Some t
       | _ -> ()
     done
   with Exit -> ());
  {
    steps_run = !steps_done;
    final_loads = loads;
    series = Array.of_list (List.rev !series);
    reached_target = !reached;
  }
