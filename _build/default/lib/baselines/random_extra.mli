(** Randomized distribution of extra tokens — Berenbrink, Cooper,
    Friedetzky, Friedrich & Sauerwald, "Randomized diffusion for
    indivisible loads" (SODA 2011); row 2 of Table 1.

    A node with load x sends ⌊x/d⁺⌋ tokens over every port and throws
    each of the remaining x mod d⁺ "extra" tokens onto an independently
    and uniformly chosen port (original edges and self-loops alike).
    Never produces negative load; not deterministic. *)

val make : Prng.Splitmix.t -> Graphs.Graph.t -> self_loops:int -> Core.Balancer.t
