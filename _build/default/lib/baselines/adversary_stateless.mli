(** The Theorem 4.2 lower-bound construction: for {e any} deterministic
    stateless algorithm there is a d-regular graph (a circulant
    containing the clique C = {0, .., ⌊d/2⌋ − 1}) and an initial
    distribution (ℓ = |C| − 1 tokens on each clique node, 0 elsewhere)
    on which the load vector never changes, so the discrepancy stays
    ≥ c·d forever.

    The concrete stateless algorithm instantiated here is "unit-send":
    with load x, send one token along each of the first min(x, d) ports
    and keep the rest.  The adversary's power is the choice of the
    cyclic port labelling: each clique node's first ℓ ports are made to
    point at the other clique members, so the ℓ tokens every clique node
    scatters come right back — the proof's argument, executably. *)

val graph : n:int -> d:int -> Graphs.Graph.t
(** The clique-circulant of the theorem (re-export of
    {!Graphs.Gen.clique_circulant}). *)

val make : Graphs.Graph.t -> d:int -> Core.Balancer.t * int array
(** [make g ~d] returns the adversarially-labelled unit-send balancer
    and the frozen initial distribution.  [g] must be the graph built by
    {!graph} with the same [d].
    @raise Invalid_argument if the clique nodes are not mutually
    adjacent in [g]. *)

val clique_size : d:int -> int
(** |C| = ⌊d/2⌋. *)

val make_general :
  Graphs.Graph.t -> d:int -> rule:(int -> int array) -> Core.Balancer.t * int array
(** The theorem in full generality: [rule x] is {e any} stateless policy
    — an array of length d+1 whose first d entries are the loads put on
    the node's (cyclically ordered) original edges and whose last entry
    is the load kept; it must conserve ([Σ = x]) and be non-negative.

    Following the proof, the adversary relabels each clique node's
    edges so that its j-th (cyclically ordered) edge value flows to
    clique member i+j+1: every clique node then receives exactly the
    multiset {p₁, …, p_ℓ} back, so loads never change — {e provided}
    the rule puts all its positive edge values among the first
    ℓ = |C|−1 entries when applied to load ℓ (the proof's
    w.l.o.g. normalization; a rule with more than ℓ positive values on
    load ℓ would be rejected at run time by the freeze tests, not here).

    @raise Invalid_argument if the rule breaks conservation or
    non-negativity on load ℓ. *)
