type result = {
  steps_run : int;
  final : float array;
  series : (int * float) array;
}

let discrepancy x =
  if Array.length x = 0 then invalid_arg "Continuous.discrepancy: empty";
  let lo = ref x.(0) and hi = ref x.(0) in
  Array.iter
    (fun v ->
      if v < !lo then lo := v;
      if v > !hi then hi := v)
    x;
  !hi -. !lo

let step_into g ~self_loops src dst =
  let n = Graphs.Graph.n g in
  let d = Graphs.Graph.degree g in
  if Array.length src <> n || Array.length dst <> n then
    invalid_arg "Continuous.step_into: dimension mismatch";
  if self_loops < 0 then invalid_arg "Continuous.step_into: self_loops < 0";
  let dp = float_of_int (d + self_loops) in
  let keep = float_of_int self_loops /. dp in
  let adj = Graphs.Graph.adjacency g in
  for u = 0 to n - 1 do
    dst.(u) <- keep *. src.(u)
  done;
  for u = 0 to n - 1 do
    let share = src.(u) /. dp in
    let base = u * d in
    for k = 0 to d - 1 do
      let v = adj.(base + k) in
      dst.(v) <- dst.(v) +. share
    done
  done

let run ?(sample_every = 1) ?stop_at_discrepancy ~graph ~self_loops ~init ~steps () =
  if steps < 0 then invalid_arg "Continuous.run: negative steps";
  if sample_every <= 0 then invalid_arg "Continuous.run: sample_every must be positive";
  let cur = ref (Array.copy init) in
  let next = ref (Array.make (Array.length init) 0.0) in
  let series = ref [ (0, discrepancy !cur) ] in
  let steps_done = ref 0 in
  (try
     for t = 1 to steps do
       step_into graph ~self_loops !cur !next;
       let tmp = !cur in
       cur := !next;
       next := tmp;
       steps_done := t;
       let disc = discrepancy !cur in
       if t mod sample_every = 0 || t = steps then series := (t, disc) :: !series;
       match stop_at_discrepancy with
       | Some target when disc <= target ->
         if t mod sample_every <> 0 && t <> steps then series := (t, disc) :: !series;
         raise Exit
       | _ -> ()
     done
   with Exit -> ());
  {
    steps_run = !steps_done;
    final = !cur;
    series = Array.of_list (List.rev !series);
  }
