let graph ~n =
  if n < 3 || n mod 2 = 0 then
    invalid_arg "Odd_cycle_adversary.graph: n must be odd and >= 3";
  Graphs.Gen.cycle n

let expected_amplitude ~n =
  if n < 3 || n mod 2 = 0 then invalid_arg "Odd_cycle_adversary.expected_amplitude";
  2 * (n - 1)

let setup ~n ~base_flow =
  let g = graph ~n in
  let phi = (n - 1) / 2 in
  if base_flow < phi then
    invalid_arg "Odd_cycle_adversary.setup: base_flow must be >= phi to keep flows >= 0";
  let b v = min v (n - v) in
  (* Initial flow on the directed edge u -> w, per the proof of Thm 4.3
     (antipodal edge carries exactly L; see the .mli note). *)
  let flow0 u w =
    let bu = b u and bw = b w in
    if bu = phi && bw = phi then base_flow
    else if bu mod 2 = 0 && bw mod 2 = 1 then base_flow + (phi - min bu bw)
    else if bu mod 2 = 1 && bw mod 2 = 0 then base_flow - (phi - min bu bw)
    else assert false (* adjacent b's on an odd cycle differ by 1 off the antipode *)
  in
  let init = Array.make n 0 in
  let rotor = Array.make n 0 in
  for u = 0 to n - 1 do
    let f0 = flow0 u (Graphs.Graph.neighbor g u 0) in
    let f1 = flow0 u (Graphs.Graph.neighbor g u 1) in
    init.(u) <- f0 + f1;
    if init.(u) mod 2 = 1 then begin
      (* The rotor must point at the port that sends the larger flow. *)
      assert (abs (f0 - f1) = 1);
      rotor.(u) <- (if f0 > f1 then 0 else 1)
    end
    else begin
      assert (f0 = f1);
      rotor.(u) <- 0
    end
  done;
  let balancer =
    Core.Rotor_router.make g ~self_loops:0 ~init_rotor:(fun u -> rotor.(u))
  in
  (balancer, init)
