(** The Theorem 4.3 lower-bound construction: on a non-bipartite graph
    with no self-loops (d⁺ = d), the ROTOR-ROUTER admits an initial load
    and rotor configuration that oscillates with period 2 forever, with
    discrepancy 2·d·φ(G) (where 2φ(G)+1 is the odd girth).

    This module instantiates the construction on an odd cycle (the
    theorem's extremal case, φ = (n−1)/2): node u₀ = 0 alternates
    between loads (L+φ)·d and (L−φ)·d while the average is L·d, so the
    discrepancy stays ≈ n·d/2 no matter how long the rotor-router runs.

    Note on the construction: the flow prescription of the paper's proof
    assigns every directed edge (v₁,v₂) the initial flow
    L ± (φ − min(b(v₁), b(v₂))) by the parity of b(v₁), with the
    antipodal edge — {e both} endpoints at distance φ — carrying exactly
    L.  (The proof's text reads "b(v₁) ≥ φ or b(v₂) ≥ φ"; taking it
    literally breaks the |f(v,v₁) − f(v,v₂)| ≤ 1 invariant the same
    proof relies on, so we use the conjunction, under which the period-2
    steady state verifies exactly — see the unit tests.) *)

val setup : n:int -> base_flow:int -> Core.Balancer.t * int array
(** [setup ~n ~base_flow] builds, for the odd cycle on [n] nodes
    (n ≥ 3, odd), a standard rotor-router with d° = 0 whose initial
    rotor positions realize the adversarial configuration, together with
    the matching initial loads.  [base_flow] is the proof's constant L
    and must be ≥ φ = (n−1)/2 to keep all flows non-negative. *)

val graph : n:int -> Graphs.Graph.t
(** The odd cycle (re-export of {!Graphs.Gen.cycle} with a parity
    check). *)

val expected_amplitude : n:int -> int
(** 2·d·φ(G) = 2·(n−1) for the odd n-cycle: the discrepancy the frozen
    oscillation exhibits. *)
