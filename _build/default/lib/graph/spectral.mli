(** Spectral analysis of the balancing graph G⁺.

    The paper analyses the random walk with transition matrix
    P(u,v) = mult(u,v)/d⁺ for u ≠ v and P(u,u) = d°/d⁺, where
    d⁺ = d + d° and d° is the number of self-loops per node.  Everything
    the bounds need — the eigenvalue gap µ = 1 − λ₂ and the balancing
    horizon T = O(log(Kn)/µ) — is computed here. *)

val transition_matrix : Graph.t -> self_loops:int -> Linalg.Csr.t
(** Transition matrix of G⁺ = G plus [self_loops] self-loops per node.
    Doubly stochastic and symmetric for regular G.
    @raise Invalid_argument if [self_loops < 0]. *)

val eigenvalue_gap : ?max_iter:int -> ?tol:float -> Graph.t -> self_loops:int -> float
(** µ = 1 − |λ₂| of the transition matrix, estimated numerically;
    always in (0, 1]. *)

val cycle_gap : n:int -> self_loops:int -> float
(** Closed form for the cycle: 1 − (2 cos(2π/n) + d°) / (2 + d°).
    Used to cross-check the numerical estimator and to price horizons
    without running power iteration. *)

val hypercube_gap : r:int -> self_loops:int -> float
(** Closed form for the r-cube: 1 − (r − 2 + d°) / (r + d°). *)

val complete_gap : n:int -> self_loops:int -> float
(** Closed form for K_n: 1 − (d° − 1) / (n − 1 + d°). *)

val torus2d_gap : side:int -> self_loops:int -> float
(** Closed form for the side×side torus (degree 4). *)

val circulant_gap : n:int -> offsets:int list -> self_loops:int -> float
(** Closed form for circulant graphs: eigenvalues of the adjacency are
    Σ_o (2 − [2o = n]) cos(2πko/n) over k; the gap follows from the
    largest non-trivial one.  Generalizes {!cycle_gap}. *)

val horizon : gap:float -> n:int -> initial_discrepancy:int -> c:float -> int
(** [horizon ~gap ~n ~initial_discrepancy ~c] is
    ⌈c · ln(n·(K+2)) / µ⌉ — the paper's T = O(log(Kn)/µ) with an
    explicit constant [c].  Always at least 1. *)

val continuous_balancing_time :
  Graph.t -> self_loops:int -> init:float array -> ?tolerance:float ->
  ?max_steps:int -> unit -> int option
(** Empirical alternative to {!horizon}: iterate the continuous
    diffusion x ← Px from [init] and return the first step at which the
    continuous discrepancy drops below [tolerance] (default 1.0), or
    [None] if [max_steps] (default 10_000_000) is hit first.  This is
    exactly "the time in which a continuous algorithm balances the
    system load" that the paper's T tracks. *)
