let bfs_distances g src =
  let n = Graph.n g in
  if src < 0 || src >= n then invalid_arg "Props.bfs_distances";
  let dist = Array.make n max_int in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_ports g u (fun _ v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
  done;
  dist

let eccentricity g src =
  let dist = bfs_distances g src in
  Array.fold_left
    (fun acc d ->
      if d = max_int then failwith "Props.eccentricity: graph is disconnected"
      else max acc d)
    0 dist

let diameter g =
  let n = Graph.n g in
  let best = ref 0 in
  for u = 0 to n - 1 do
    best := max !best (eccentricity g u)
  done;
  !best

let is_connected g =
  let dist = bfs_distances g 0 in
  Array.for_all (fun d -> d < max_int) dist

let is_bipartite g =
  let n = Graph.n g in
  let color = Array.make n (-1) in
  let ok = ref true in
  for src = 0 to n - 1 do
    if color.(src) = -1 then begin
      color.(src) <- 0;
      let q = Queue.create () in
      Queue.add src q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Graph.iter_ports g u (fun _ v ->
            if color.(v) = -1 then begin
              color.(v) <- 1 - color.(u);
              Queue.add v q
            end
            else if color.(v) = color.(u) then ok := false)
      done
    end
  done;
  !ok

(* Shortest cycle through [root]: BFS, recording the parent; any non-tree
   edge between reached vertices closes a cycle of length
   dist u + dist v + 1.  Running this from every root gives the girth. *)
let shortest_cycle_through g root =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let best = ref max_int in
  let q = Queue.create () in
  dist.(root) <- 0;
  Queue.add root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let skipped_parent = ref false in
    Graph.iter_ports g u (fun _ v ->
        if v = parent.(u) && not !skipped_parent then
          (* Skip exactly one occurrence: the tree edge we arrived by.  A
             second parallel edge to the parent is a genuine 2-cycle. *)
          skipped_parent := true
        else if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v q
        end
        else best := min !best (dist.(u) + dist.(v) + 1))
  done;
  !best

let girth g =
  let n = Graph.n g in
  let best = ref max_int in
  for root = 0 to n - 1 do
    best := min !best (shortest_cycle_through g root)
  done;
  if !best = max_int then None else Some !best

(* Shortest odd closed walk through [root], via BFS on the bipartite
   double cover: states (v, parity); the answer is dist (root, 1).  The
   shortest odd closed walk in a graph is always a simple odd cycle, and
   minimizing over roots yields the odd girth. *)
let shortest_odd_walk_through g root =
  let n = Graph.n g in
  let dist = Array.make (2 * n) max_int in
  let q = Queue.create () in
  dist.(2 * root) <- 0;
  Queue.add (2 * root) q;
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    let u = s / 2 and p = s mod 2 in
    Graph.iter_ports g u (fun _ v ->
        let s' = (2 * v) + (1 - p) in
        if dist.(s') = max_int then begin
          dist.(s') <- dist.(s) + 1;
          Queue.add s' q
        end)
  done;
  dist.((2 * root) + 1)

let odd_girth g =
  let n = Graph.n g in
  let best = ref max_int in
  for root = 0 to n - 1 do
    best := min !best (shortest_odd_walk_through g root)
  done;
  if !best = max_int then None else Some !best

let phi g = Option.map (fun og -> (og - 1) / 2) (odd_girth g)
