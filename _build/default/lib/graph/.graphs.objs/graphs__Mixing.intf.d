lib/graph/mixing.mli: Graph Linalg
