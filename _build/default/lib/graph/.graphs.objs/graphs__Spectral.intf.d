lib/graph/spectral.mli: Graph Linalg
