lib/graph/props.ml: Array Graph Option Queue
