lib/graph/spectral.ml: Array Graph Linalg List
