lib/graph/mixing.ml: Array Graph Linalg List Spectral
