let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: n must be >= 3";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let complete n =
  if n < 2 then invalid_arg "Gen.complete: n must be >= 2";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let complete_bipartite m =
  if m < 1 then invalid_arg "Gen.complete_bipartite: m must be >= 1";
  let edges = ref [] in
  for u = 0 to m - 1 do
    for v = 0 to m - 1 do
      edges := (u, m + v) :: !edges
    done
  done;
  Graph.of_edges ~n:(2 * m) !edges

let hypercube r =
  if r < 1 then invalid_arg "Gen.hypercube: r must be >= 1";
  if r > 20 then invalid_arg "Gen.hypercube: r too large";
  let n = 1 lsl r in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to r - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let torus sides =
  if sides = [] then invalid_arg "Gen.torus: need at least one dimension";
  List.iter (fun s -> if s < 3 then invalid_arg "Gen.torus: sides must be >= 3") sides;
  let sides = Array.of_list sides in
  let r = Array.length sides in
  let n = Array.fold_left ( * ) 1 sides in
  (* Mixed-radix encoding: coordinate d has stride (product of sides > d). *)
  let stride = Array.make r 1 in
  for d = r - 2 downto 0 do
    stride.(d) <- stride.(d + 1) * sides.(d + 1)
  done;
  let coord u d = u / stride.(d) mod sides.(d) in
  let with_coord u d c = u + ((c - coord u d) * stride.(d)) in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for d = 0 to r - 1 do
      let c = coord u d in
      let v = with_coord u d ((c + 1) mod sides.(d)) in
      (* Emit each wrap-around edge once: from the node where it "starts". *)
      if c + 1 < sides.(d) || sides.(d) > 2 then
        if u <> v then edges := (u, v) :: !edges
    done
  done;
  (* Each undirected edge got emitted exactly once per direction d from the
     lower-coordinate side, except that for the wrap edge both descriptions
     coincide only when side = 2 (excluded).  The loop above emits (u, u+1)
     for every u including the wrap, so each edge appears once. *)
  Graph.of_edges ~n !edges

let circulant n offsets =
  if n < 3 then invalid_arg "Gen.circulant: n must be >= 3";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun o ->
      if o < 1 || o > n / 2 then invalid_arg "Gen.circulant: offset out of range";
      if Hashtbl.mem seen o then invalid_arg "Gen.circulant: duplicate offset";
      Hashtbl.add seen o ())
    offsets;
  let edges = ref [] in
  List.iter
    (fun o ->
      if 2 * o = n then
        (* Antipodal matching: each edge once. *)
        for i = 0 to (n / 2) - 1 do
          edges := (i, i + o) :: !edges
        done
      else
        for i = 0 to n - 1 do
          edges := (i, (i + o) mod n) :: !edges
        done)
    offsets;
  Graph.of_edges ~n !edges

let clique_circulant ~n ~d =
  if d < 2 then invalid_arg "Gen.clique_circulant: d must be >= 2";
  if n <= 2 * (d / 2) then invalid_arg "Gen.clique_circulant: n too small for d";
  let half = d / 2 in
  let offsets = List.init half (fun i -> i + 1) in
  let offsets =
    if d mod 2 = 1 then begin
      if n mod 2 <> 0 then
        invalid_arg "Gen.clique_circulant: odd d requires even n";
      offsets @ [ n / 2 ]
    end
    else offsets
  in
  circulant n offsets

let petersen () =
  (* Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5. *)
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  Graph.of_edges ~n:10 (outer @ inner @ spokes)

(* --- Random regular graphs: pairing model with swap repair. --- *)

type pairing = { a : int array; b : int array }

let edge_key u v = if u < v then (u, v) else (v, u)

let build_multiset pairing =
  let h = Hashtbl.create (Array.length pairing.a * 2) in
  Array.iteri
    (fun i u ->
      let v = pairing.b.(i) in
      let k = edge_key u v in
      Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
    pairing.a;
  h

(* Badness of a pair already counted in the multiset: a loop, or a
   parallel edge (its key appears more than once). *)
let pair_is_bad multiset u v =
  u = v
  || match Hashtbl.find_opt multiset (edge_key u v) with
     | Some c -> c > 1
     | None -> false

(* Badness of a pair about to be added: a loop, or any existing copy. *)
let would_be_bad multiset u v =
  u = v || Hashtbl.mem multiset (edge_key u v)

let multiset_remove h u v =
  let k = edge_key u v in
  match Hashtbl.find_opt h k with
  | Some 1 -> Hashtbl.remove h k
  | Some c -> Hashtbl.replace h k (c - 1)
  | None -> ()

let multiset_add h u v =
  let k = edge_key u v in
  Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k))

(* Repeatedly resolve loops / parallel edges by swapping endpoints with a
   random other pair; accepted only if it strictly reduces badness. *)
let repair rng pairing =
  let m = Array.length pairing.a in
  let multiset = build_multiset pairing in
  let bad i = pair_is_bad multiset pairing.a.(i) pairing.b.(i) in
  let budget = ref (200 * m) in
  let rec fix_one i =
    if !budget <= 0 then false
    else begin
      decr budget;
      let j = Prng.Splitmix.int rng m in
      if j = i then fix_one i
      else begin
        let u1 = pairing.a.(i) and v1 = pairing.b.(i) in
        let u2 = pairing.a.(j) and v2 = pairing.b.(j) in
        (* Propose the swap (u1,v1),(u2,v2) -> (u1,v2),(u2,v1). *)
        multiset_remove multiset u1 v1;
        multiset_remove multiset u2 v2;
        let ok =
          (not (would_be_bad multiset u1 v2))
          && (not (would_be_bad multiset u2 v1))
          && u1 <> v2 && u2 <> v1
          && edge_key u1 v2 <> edge_key u2 v1
        in
        if ok then begin
          pairing.b.(i) <- v2;
          pairing.b.(j) <- v1;
          multiset_add multiset u1 v2;
          multiset_add multiset u2 v1;
          true
        end
        else begin
          multiset_add multiset u1 v1;
          multiset_add multiset u2 v2;
          fix_one i
        end
      end
    end
  in
  let rec sweep () =
    let remaining = ref 0 in
    for i = 0 to m - 1 do
      if bad i then
        if fix_one i then () else incr remaining
    done;
    if !remaining = 0 then true else if !budget <= 0 then false else sweep ()
  in
  sweep ()

let random_regular ?(max_attempts = 200) rng ~n ~d =
  if d < 3 then invalid_arg "Gen.random_regular: d must be >= 3 (use cycle for d = 2)";
  if d >= n then invalid_arg "Gen.random_regular: d must be < n";
  if n * d mod 2 <> 0 then invalid_arg "Gen.random_regular: n * d must be even";
  let m = n * d / 2 in
  let attempt () =
    let stubs = Array.concat (List.init n (fun u -> Array.make d u)) in
    Prng.Sample.shuffle rng stubs;
    let pairing =
      { a = Array.init m (fun i -> stubs.(2 * i));
        b = Array.init m (fun i -> stubs.((2 * i) + 1)) }
    in
    if repair rng pairing then begin
      let edges = List.init m (fun i -> (pairing.a.(i), pairing.b.(i))) in
      let g = Graph.of_edges ~n edges in
      if Props.is_connected g then Some g else None
    end
    else None
  in
  let rec go k =
    if k >= max_attempts then
      failwith "Gen.random_regular: exhausted attempts (graph too constrained)"
    else
      match attempt () with Some g -> g | None -> go (k + 1)
  in
  go 0

let bipartite_double_cover g =
  let n = Graph.n g in
  let edges =
    Array.to_list (Graph.edges g)
    |> List.concat_map (fun (u, v) -> [ (u, n + v); (v, n + u) ])
  in
  Graph.of_edges ~n:(2 * n) edges

let is_connected_regular g = Props.is_connected g
