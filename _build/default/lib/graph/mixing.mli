(** Dense mixing analysis — the error-term machinery of the paper's
    Lemma A.1, executable at small n.

    P^t = P^∞ + Λ_t with P^∞ the all-1/n matrix; Lemma A.1 bounds
    ‖Λ_t q‖∞ by n²(1−µ)^t‖q − q̄‖∞ and shows the geometric-sum tail
    bound used throughout the Theorem 2.3 proof.  These functions
    compute the exact quantities so the lemma can be verified
    numerically. *)

type t
(** Precomputed dense powers machinery for one balancing graph. *)

val create : Graph.t -> self_loops:int -> t
(** Densifies P; intended for n up to a few hundred. *)

val power : t -> int -> Linalg.Mat.t
(** P^t (memoized incrementally). *)

val error_term : t -> int -> Linalg.Mat.t
(** Λ_t = P^t − P^∞. *)

val error_operator_norm_inf : t -> int -> float
(** max_w Σ_v |Λ_t(w, v)| — the ∞-operator norm used in (8). *)

val apply_error : t -> int -> float array -> float array
(** Λ_t q. *)

val lemma_a1_i_bound : t -> q:float array -> int -> float
(** The right side n²(1−µ)^t·‖q − q̄‖∞ of Lemma A.1's intermediate
    inequality (µ taken from the dense spectrum, exact). *)

val current_sum : t -> horizon:int -> float
(** Σ_{a=0}^{horizon} max_w Σ_v |P^{a+1}(v,w) − P^a(v,w)| — the
    probability-current sum bounded three ways in Appendix A.1 (claims
    (i)–(iii) of Theorem 2.3). *)

val spectral_gap : t -> float
(** 1 − |λ₂| from the full dense spectrum. *)
