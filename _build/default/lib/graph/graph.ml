type t = {
  n : int;
  degree : int;
  adj : int array;      (* adj.(u * degree + k) = endpoint of port k of u *)
  rev : int array;      (* rev.(u * degree + k) = matching port at the endpoint *)
  edge_list : (int * int) array;
}

let of_edges ~n edges =
  if n <= 0 then invalid_arg "Graph.of_edges: n must be positive";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edges: self-edges are not allowed")
    edges;
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let d = if n > 0 && Array.length deg > 0 then deg.(0) else 0 in
  Array.iteri
    (fun u du ->
      if du <> d then
        invalid_arg
          (Printf.sprintf "Graph.of_edges: not regular (node %d has degree %d, node 0 has %d)"
             u du d))
    deg;
  let adj = Array.make (n * d) (-1) in
  let rev = Array.make (n * d) (-1) in
  let next = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      let ku = next.(u) in
      next.(u) <- ku + 1;
      let kv = next.(v) in
      next.(v) <- kv + 1;
      adj.((u * d) + ku) <- v;
      adj.((v * d) + kv) <- u;
      rev.((u * d) + ku) <- kv;
      rev.((v * d) + kv) <- ku)
    edges;
  { n; degree = d; adj; rev; edge_list = Array.of_list edges }

let n g = g.n
let degree g = g.degree
let edge_count g = Array.length g.edge_list

let check_port g u k =
  if u < 0 || u >= g.n || k < 0 || k >= g.degree then
    invalid_arg "Graph: port out of range"

let neighbor g u k =
  check_port g u k;
  g.adj.((u * g.degree) + k)

let neighbors g u =
  if u < 0 || u >= g.n then invalid_arg "Graph.neighbors";
  Array.sub g.adj (u * g.degree) g.degree

let reverse_port g u k =
  check_port g u k;
  g.rev.((u * g.degree) + k)

let edges g = Array.copy g.edge_list

let directed_edge_index g u k =
  check_port g u k;
  (u * g.degree) + k

let adjacency g = g.adj

let iter_ports g u f =
  if u < 0 || u >= g.n then invalid_arg "Graph.iter_ports";
  let base = u * g.degree in
  for k = 0 to g.degree - 1 do
    f k g.adj.(base + k)
  done

let multiplicity g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then invalid_arg "Graph.multiplicity";
  let c = ref 0 in
  let base = u * g.degree in
  for k = 0 to g.degree - 1 do
    if g.adj.(base + k) = v then incr c
  done;
  !c

let has_parallel_edges g =
  let found = ref false in
  for u = 0 to g.n - 1 do
    let seen = Hashtbl.create g.degree in
    iter_ports g u (fun _ v ->
        if Hashtbl.mem seen v then found := true else Hashtbl.add seen v ())
  done;
  !found

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, d=%d, m=%d)" g.n g.degree (edge_count g)
