let transition_matrix g ~self_loops =
  if self_loops < 0 then invalid_arg "Spectral.transition_matrix: self_loops < 0";
  let n = Graph.n g in
  let d_plus = Graph.degree g + self_loops in
  let p = 1.0 /. float_of_int d_plus in
  let triplets = ref [] in
  for u = 0 to n - 1 do
    if self_loops > 0 then
      triplets := (u, u, float_of_int self_loops *. p) :: !triplets;
    Graph.iter_ports g u (fun _ v -> triplets := (u, v, p) :: !triplets)
  done;
  Linalg.Csr.of_triplets ~n !triplets

let eigenvalue_gap ?max_iter ?tol g ~self_loops =
  let p = transition_matrix g ~self_loops in
  Linalg.Eigen.spectral_gap ?max_iter ?tol p

let pi = 4.0 *. atan 1.0

let cycle_gap ~n ~self_loops =
  let d0 = float_of_int self_loops in
  1.0 -. (((2.0 *. cos (2.0 *. pi /. float_of_int n)) +. d0) /. (2.0 +. d0))

let hypercube_gap ~r ~self_loops =
  let d0 = float_of_int self_loops in
  let r = float_of_int r in
  1.0 -. ((r -. 2.0 +. d0) /. (r +. d0))

let complete_gap ~n ~self_loops =
  let d0 = float_of_int self_loops in
  let n = float_of_int n in
  1.0 -. ((d0 -. 1.0) /. (n -. 1.0 +. d0))

let torus2d_gap ~side ~self_loops =
  let d0 = float_of_int self_loops in
  1.0 -. ((2.0 +. (2.0 *. cos (2.0 *. pi /. float_of_int side)) +. d0) /. (4.0 +. d0))

let circulant_gap ~n ~offsets ~self_loops =
  let d =
    List.fold_left (fun acc o -> acc + if 2 * o = n then 1 else 2) 0 offsets
  in
  let d_plus = float_of_int (d + self_loops) in
  let adjacency_eigenvalue k =
    List.fold_left
      (fun acc o ->
        let w = if 2 * o = n then 1.0 else 2.0 in
        acc +. (w *. cos (2.0 *. pi *. float_of_int (k * o) /. float_of_int n)))
      0.0 offsets
  in
  let lambda2 = ref neg_infinity in
  for k = 1 to n - 1 do
    let l = (adjacency_eigenvalue k +. float_of_int self_loops) /. d_plus in
    if abs_float l > !lambda2 then lambda2 := abs_float l
  done;
  let gap = 1.0 -. !lambda2 in
  if gap <= 0.0 then 1e-12 else gap

let horizon ~gap ~n ~initial_discrepancy ~c =
  if gap <= 0.0 then invalid_arg "Spectral.horizon: gap must be positive";
  let k = float_of_int (max 0 initial_discrepancy) in
  let t = c *. log (float_of_int n *. (k +. 2.0)) /. gap in
  max 1 (int_of_float (ceil t))

let continuous_balancing_time g ~self_loops ~init ?(tolerance = 1.0)
    ?(max_steps = 10_000_000) () =
  let n = Graph.n g in
  if Array.length init <> n then
    invalid_arg "Spectral.continuous_balancing_time: init dimension mismatch";
  let p = transition_matrix g ~self_loops in
  let x = ref (Array.copy init) in
  let y = ref (Array.make n 0.0) in
  let discrepancy v = Linalg.Vec.max_elt v -. Linalg.Vec.min_elt v in
  let rec go t =
    if discrepancy !x < tolerance then Some t
    else if t >= max_steps then None
    else begin
      Linalg.Csr.mul_vec_into p !x !y;
      let tmp = !x in
      x := !y;
      y := tmp;
      go (t + 1)
    end
  in
  go 0
