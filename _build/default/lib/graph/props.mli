(** Structural graph properties: distances, diameter, bipartiteness and
    (odd) girth.  All run in O(n·m) or better — fine at experiment scale
    (n up to a few thousand). *)

val bfs_distances : Graph.t -> int -> int array
(** [bfs_distances g src] is the array of hop distances from [src];
    unreachable nodes get [max_int]. *)

val eccentricity : Graph.t -> int -> int
(** Maximum finite distance from a node.
    @raise Failure if the graph is disconnected. *)

val diameter : Graph.t -> int
(** Maximum eccentricity.  @raise Failure if disconnected. *)

val is_connected : Graph.t -> bool

val is_bipartite : Graph.t -> bool

val girth : Graph.t -> int option
(** Length of the shortest cycle; [None] for forests.  Parallel edges
    count as 2-cycles. *)

val odd_girth : Graph.t -> int option
(** Length of the shortest odd cycle; [None] iff bipartite.  The paper's
    φ(G) satisfies odd_girth = 2·φ(G) + 1. *)

val phi : Graph.t -> int option
(** [phi g] is the paper's φ(G), i.e. [(odd_girth − 1) / 2]. *)
