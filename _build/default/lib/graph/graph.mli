(** Regular undirected graphs, viewed as symmetric directed graphs.

    This is the "original graph" G of the paper (§1.3): every node has
    [degree] original edges, addressed by {e port} numbers
    [0 .. degree-1].  Self-loops of the balancing graph G⁺ are {e not}
    stored here — they are a per-simulation parameter (the number d° of
    self-loops), handled by the balancing engine.

    Parallel edges are supported (the pairing-model generator can produce
    them before repair, and tori of side 2 need them); self-edges
    [u = u] are rejected, matching the paper's assumption that G is
    initially simple in that respect. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph on nodes [0 .. n-1] from
    undirected edges.  Every edge [(u, v)] contributes one port at [u]
    and one at [v]; ports are numbered in order of appearance.
    @raise Invalid_argument on out-of-range endpoints, on [u = v], or if
    the resulting graph is not regular. *)

val n : t -> int
(** Number of nodes. *)

val degree : t -> int
(** The common degree d. *)

val edge_count : t -> int
(** Number of undirected edges (= n·d/2). *)

val neighbor : t -> int -> int -> int
(** [neighbor g u k] is the node at the other end of port [k] of [u].
    @raise Invalid_argument out of range. *)

val neighbors : t -> int -> int array
(** Fresh array of [u]'s neighbors in port order. *)

val reverse_port : t -> int -> int -> int
(** [reverse_port g u k] is the port [k'] at [v = neighbor g u k] such
    that the directed edges [(u, k)] and [(v, k')] are the two
    orientations of the same undirected edge.  With parallel edges the
    pairing is a fixed bijection. *)

val edges : t -> (int * int) array
(** The undirected edges, each once, with [u <= v] normalized order
    removed — edges are reported as they were given. *)

val directed_edge_index : t -> int -> int -> int
(** [directed_edge_index g u k] is a dense index in
    [0 .. n·degree - 1] for the directed edge [(u, port k)]; equal to
    [u * degree + k].  Exposed so flow tables can be flat arrays. *)

val adjacency : t -> int array
(** The flat adjacency array: entry [u * degree + k] is
    [neighbor g u k].  Exposed (not copied) for hot simulation loops;
    treat as read-only. *)

val iter_ports : t -> int -> (int -> int -> unit) -> unit
(** [iter_ports g u f] calls [f k v] for each port [k] with endpoint
    [v]. *)

val multiplicity : t -> int -> int -> int
(** Number of parallel edges between two nodes.  O(degree). *)

val has_parallel_edges : t -> bool

val pp : Format.formatter -> t -> unit
(** One line summary: nodes, degree, edges. *)
