(** Generators for the d-regular graph families used in the paper's
    statements and experiments. *)

val cycle : int -> Graph.t
(** [cycle n] is the n-cycle (2-regular).  [n >= 3]. *)

val complete : int -> Graph.t
(** [complete n] is K_n ((n-1)-regular).  [n >= 2]. *)

val complete_bipartite : int -> Graph.t
(** [complete_bipartite m] is K_{m,m} (m-regular, bipartite) on [2m]
    nodes.  [m >= 1]. *)

val hypercube : int -> Graph.t
(** [hypercube r] is the r-dimensional hypercube on [2^r] nodes
    (r-regular).  [r >= 1]. *)

val torus : int list -> Graph.t
(** [torus sides] is the multidimensional torus with the given side
    lengths (each [>= 3]); degree is [2 * List.length sides].
    [torus [n]] differs from [cycle n] only in port numbering. *)

val circulant : int -> int list -> Graph.t
(** [circulant n offsets] connects [i] to [i ± o mod n] for each offset.
    Offsets must be distinct, in [1 .. n/2].  An offset equal to [n/2]
    (n even) contributes a single edge, so degree is
    [2·|offsets| − (1 if n/2 ∈ offsets)]. *)

val clique_circulant : n:int -> d:int -> Graph.t
(** The Theorem 4.2 construction: nodes [0 .. n-1], edges between [i]
    and [j] iff [(i − j) mod n ∈ {±1, .., ±⌊d/2⌋}], plus the antipodal
    matching when [d] is odd ([n] must then be even).  Contains the
    clique [C = {0, .., ⌊d/2⌋ − 1}] when [n] is large enough.
    d-regular.  Requires [n > 2 * (d / 2)]. *)

val petersen : unit -> Graph.t
(** The Petersen graph: 10 nodes, 3-regular, girth 5, odd girth 5,
    diameter 2 — a fixed awkward instance for structural tests. *)

val random_regular : ?max_attempts:int -> Prng.Splitmix.t -> n:int -> d:int -> Graph.t
(** Uniform-ish random simple d-regular graph by the pairing
    (configuration) model with rejection of loops/parallel edges and a
    final edge-switch repair pass.  [n·d] must be even, [d < n].
    @raise Failure if no simple graph is found within
    [max_attempts] (default 200) full restarts — practically unreachable
    for d = O(√n). *)

val bipartite_double_cover : Graph.t -> Graph.t
(** The double cover: nodes (u, σ) for σ ∈ {0,1} (encoded u and n+u),
    with (u,0)–(v,1) for every edge uv.  Always bipartite and d-regular;
    connected iff the base graph is connected and non-bipartite — the
    structure behind {!Props.odd_girth}'s computation. *)

val is_connected_regular : Graph.t -> bool
(** Convenience re-export used by generators' tests: connected and (by
    construction) regular. *)
