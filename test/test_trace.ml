(* Tests for trace record / save / load / replay / verify. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let make_run () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:777 in
  let balancer = Core.Rotor_router.make g ~self_loops:4 in
  (g, init, balancer)

let test_record_shape () =
  let g, init, balancer = make_run () in
  let t, result = Trace.record ~graph:g ~balancer ~init ~steps:25 in
  check_int "steps" 25 t.Trace.steps;
  check_int "n" 16 t.Trace.n;
  check_int "records" 25 (Array.length t.Trace.assignments);
  check_int "per step" 16 (Array.length t.Trace.assignments.(0));
  check_int "ports" 8 (Array.length t.Trace.assignments.(0).(0));
  check_int "engine steps" 25 result.Core.Engine.steps_run

let test_replay_matches_original () =
  let g, init, balancer = make_run () in
  let t, original = Trace.record ~graph:g ~balancer ~init ~steps:40 in
  let replayed = Trace.replay t in
  Alcotest.(check (array int))
    "identical final loads" original.Core.Engine.final_loads
    replayed.Core.Engine.final_loads

let test_graph_roundtrip () =
  let g, init, balancer = make_run () in
  let t, _ = Trace.record ~graph:g ~balancer ~init ~steps:3 in
  let g' = Trace.graph_of t in
  check_int "same n" (Graphs.Graph.n g) (Graphs.Graph.n g');
  check_int "same degree" (Graphs.Graph.degree g) (Graphs.Graph.degree g');
  (* Port order must be preserved exactly for replay to be faithful. *)
  for u = 0 to 15 do
    for k = 0 to 3 do
      check_int "same port wiring" (Graphs.Graph.neighbor g u k)
        (Graphs.Graph.neighbor g' u k)
    done
  done

let test_save_load_roundtrip () =
  let g, init, balancer = make_run () in
  let t, _ = Trace.record ~graph:g ~balancer ~init ~steps:10 in
  let path = Filename.temp_file "loadbal" ".trace" in
  Trace.save ~path t;
  let t' = Trace.load ~path in
  Sys.remove path;
  check_int "n" t.Trace.n t'.Trace.n;
  check_int "steps" t.Trace.steps t'.Trace.steps;
  Alcotest.(check (array int)) "init" t.Trace.init t'.Trace.init;
  Alcotest.(check (array int))
    "final loads agree" (Trace.final_loads t) (Trace.final_loads t');
  (* Deep equality of one sampled assignment. *)
  Alcotest.(check (array int)) "assignment" t.Trace.assignments.(4).(7)
    t'.Trace.assignments.(4).(7)

let test_verify_ok () =
  let g, init, balancer = make_run () in
  let t, _ = Trace.record ~graph:g ~balancer ~init ~steps:15 in
  match Trace.verify t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_verify_detects_tampering () =
  let g, init, balancer = make_run () in
  let t, _ = Trace.record ~graph:g ~balancer ~init ~steps:15 in
  (* Steal a token at step 5, node 3. *)
  t.Trace.assignments.(4).(3).(0) <- t.Trace.assignments.(4).(3).(0) + 1;
  (match Trace.verify t with
  | Ok () -> Alcotest.fail "tampering not detected"
  | Error _ -> ());
  (* Restore, then make a send negative. *)
  t.Trace.assignments.(4).(3).(0) <- t.Trace.assignments.(4).(3).(0) - 1;
  let old = t.Trace.assignments.(9).(0).(1) in
  t.Trace.assignments.(9).(0).(1) <- -1;
  t.Trace.assignments.(9).(0).(4) <- t.Trace.assignments.(9).(0).(4) + old + 1;
  match Trace.verify t with
  | Ok () -> Alcotest.fail "negative send not detected"
  | Error _ -> ()

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let load_error contents =
  let path = Filename.temp_file "loadbal" ".trace" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  let r =
    try
      ignore (Trace.load ~path);
      None
    with Trace.Parse_error { line; reason } -> Some (line, reason)
  in
  Sys.remove path;
  r

let test_load_rejects_garbage () =
  match load_error "not a trace\n" with
  | Some (line, _) -> check_int "error on magic line" 1 line
  | None -> Alcotest.fail "garbage not rejected"

let test_load_parse_error_pinpoints_line () =
  (* Valid magic, then a malformed graph line: the error names line 2. *)
  (match load_error "loadbal-trace 1\ngraph 4 two 0 3\n" with
  | Some (line, reason) ->
    check_int "error on graph line" 2 line;
    check_bool "reason names the bad token" true (contains ~needle:"two" reason)
  | None -> Alcotest.fail "bad graph line not rejected");
  (* A file truncated mid-header reports the line after the last read. *)
  match load_error "loadbal-trace 1\n" with
  | Some (line, _) -> check_int "EOF reported past last line" 2 line
  | None -> Alcotest.fail "truncated header not rejected"

let test_load_reports_missing_assignment () =
  let g, init, balancer = make_run () in
  let t, _ = Trace.record ~graph:g ~balancer ~init ~steps:3 in
  let path = Filename.temp_file "loadbal" ".trace" in
  Trace.save ~path t;
  (* Drop the last assignment line. *)
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let kept = List.filteri (fun i _ -> i < List.length lines - 1) lines in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) kept);
  let r =
    try
      ignore (Trace.load ~path);
      None
    with Trace.Parse_error { reason; _ } -> Some reason
  in
  Sys.remove path;
  match r with
  | Some reason ->
    check_bool "reason names the gap" true
      (contains ~needle:"missing assignment" reason)
  | None -> Alcotest.fail "truncated assignment stream not rejected"

let test_trace_of_randomized_run_is_deterministic_replay () =
  (* The point of tracing: a randomized run, once recorded, replays
     deterministically. *)
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:500 in
  let balancer = Baselines.Random_extra.make (Prng.Splitmix.create 9) g ~self_loops:4 in
  let t, original = Trace.record ~graph:g ~balancer ~init ~steps:30 in
  let r1 = Trace.replay t in
  let r2 = Trace.replay t in
  Alcotest.(check (array int)) "replay = original" original.Core.Engine.final_loads
    r1.Core.Engine.final_loads;
  Alcotest.(check (array int)) "replay idempotent" r1.Core.Engine.final_loads
    r2.Core.Engine.final_loads

let test_message_events_roundtrip () =
  let g, init, balancer = make_run () in
  let t, _ = Trace.record ~graph:g ~balancer ~init ~steps:3 in
  (* One event of each kind; edges must be < n·d = 64. *)
  let msgs =
    [
      { Trace.m_step = 1; m_kind = Trace.Msg_send; m_edge = 0; m_seq = 1; m_tokens = 5 };
      { Trace.m_step = 1; m_kind = Trace.Msg_drop; m_edge = 7; m_seq = 1; m_tokens = 5 };
      { Trace.m_step = 2; m_kind = Trace.Msg_retransmit; m_edge = 7; m_seq = 1; m_tokens = 5 };
      { Trace.m_step = 2; m_kind = Trace.Msg_deliver; m_edge = 63; m_seq = 2; m_tokens = 1 };
    ]
  in
  let t = Trace.with_messages t msgs in
  let path = Filename.temp_file "loadbal" ".trace" in
  Trace.save ~path t;
  let t' = Trace.load ~path in
  Sys.remove path;
  check_int "message count" 4 (Array.length t'.Trace.messages);
  List.iteri
    (fun i m ->
      check_bool
        (Printf.sprintf "message %d round-trips" i)
        true
        (t'.Trace.messages.(i) = m))
    msgs

let test_recorded_net_messages_roundtrip () =
  (* The real producer: a lossy async run's on_message stream, attached
     to a trace and round-tripped through disk. *)
  let g, init, balancer = make_run () in
  let t, _ = Trace.record ~graph:g ~balancer ~init ~steps:5 in
  let events = ref [] in
  let config =
    {
      Net.Async_engine.default_config with
      Net.Async_engine.channel =
        { Net.Channel.drop = 0.2; dup = 0.1; reorder = 0.1; delay = 2 };
      staleness = 2;
    }
  in
  let balancer2 = Core.Rotor_router.make g ~self_loops:4 in
  ignore
    (Net.Async_engine.run ~config ~on_message:(fun e -> events := e :: !events)
       ~graph:g ~balancer:balancer2 ~init ~steps:5 ());
  let msgs = List.rev !events in
  check_bool "run produced message events" true (msgs <> []);
  let t = Trace.with_messages t msgs in
  let path = Filename.temp_file "loadbal" ".trace" in
  Trace.save ~path t;
  let t' = Trace.load ~path in
  Sys.remove path;
  check_int "all events survive" (List.length msgs) (Array.length t'.Trace.messages);
  List.iteri
    (fun i m -> check_bool "event identical" true (t'.Trace.messages.(i) = m))
    msgs

let append_lines path lines =
  let oc = open_out_gen [ Open_append ] 0o644 path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let test_malformed_message_records_pinpoint_line () =
  let g, init, balancer = make_run () in
  let t, _ = Trace.record ~graph:g ~balancer ~init ~steps:2 in
  let base = Filename.temp_file "loadbal" ".trace" in
  Trace.save ~path:base t;
  let base_lines =
    List.length (In_channel.with_open_text base In_channel.input_lines)
  in
  let expect_error ?(needle = "message") ~label extra =
    let path = Filename.temp_file "loadbal" ".trace" in
    (let contents = In_channel.with_open_text base In_channel.input_all in
     Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc contents));
    append_lines path extra;
    let r =
      try
        ignore (Trace.load ~path);
        None
      with Trace.Parse_error { line; reason } -> Some (line, reason)
    in
    Sys.remove path;
    match r with
    | Some (line, reason) ->
      check_int (label ^ ": error on the appended line") (base_lines + 1) line;
      check_bool (label ^ ": reason names the defect") true
        (contains ~needle reason)
    | None -> Alcotest.fail (label ^ ": malformed record not rejected")
  in
  (* Wrong field count, unknown kind, non-integer seq, out-of-range
     edge, and a zero seq: all rejected with the exact line number. *)
  expect_error ~label:"truncated" [ "m s 1 0" ];
  expect_error ~label:"unknown kind" [ "m z 1 0 1 5" ];
  expect_error ~needle:"one" ~label:"non-integer seq" [ "m s 1 0 one 5" ];
  expect_error ~label:"edge out of range" [ "m s 1 64 1 5" ];
  expect_error ~label:"zero seq" [ "m s 1 0 0 5" ];
  Sys.remove base

let test_messages_default_empty () =
  let g, init, balancer = make_run () in
  let t, _ = Trace.record ~graph:g ~balancer ~init ~steps:2 in
  check_int "record has no messages" 0 (Array.length t.Trace.messages);
  let path = Filename.temp_file "loadbal" ".trace" in
  Trace.save ~path t;
  let t' = Trace.load ~path in
  Sys.remove path;
  check_int "load keeps it empty" 0 (Array.length t'.Trace.messages)

let prop_trace_roundtrip_preserves_finals =
  QCheck.Test.make ~name:"save/load preserves replayed final loads" ~count:20
    QCheck.(pair (int_range 3 10) (int_range 0 300))
    (fun (n, total) ->
      let g = Graphs.Gen.cycle n in
      let init = Core.Loads.point_mass ~n ~total in
      let balancer = Core.Send_floor.make g ~self_loops:2 in
      let t, _ = Trace.record ~graph:g ~balancer ~init ~steps:10 in
      let path = Filename.temp_file "loadbal" ".trace" in
      Trace.save ~path t;
      let t' = Trace.load ~path in
      Sys.remove path;
      Trace.final_loads t = Trace.final_loads t')

let () =
  Alcotest.run "trace"
    [
      ( "record/replay",
        [
          Alcotest.test_case "record shape" `Quick test_record_shape;
          Alcotest.test_case "replay matches" `Quick test_replay_matches_original;
          Alcotest.test_case "graph roundtrip" `Quick test_graph_roundtrip;
          Alcotest.test_case "randomized replay" `Quick
            test_trace_of_randomized_run_is_deterministic_replay;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_load_rejects_garbage;
          Alcotest.test_case "parse error pinpoints line" `Quick
            test_load_parse_error_pinpoints_line;
          Alcotest.test_case "missing assignment reported" `Quick
            test_load_reports_missing_assignment;
        ] );
      ( "message events",
        [
          Alcotest.test_case "hand-built events round-trip" `Quick
            test_message_events_roundtrip;
          Alcotest.test_case "recorded net events round-trip" `Quick
            test_recorded_net_messages_roundtrip;
          Alcotest.test_case "malformed records pinpoint line" `Quick
            test_malformed_message_records_pinpoint_line;
          Alcotest.test_case "messages default empty" `Quick
            test_messages_default_empty;
        ] );
      ( "verification",
        [
          Alcotest.test_case "verify ok" `Quick test_verify_ok;
          Alcotest.test_case "detects tampering" `Quick test_verify_detects_tampering;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_trace_roundtrip_preserves_finals ]);
    ]
