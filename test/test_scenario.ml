(* Tests for lib/scenario: the scenario language and its compiler —

   - lexer: positions, the INT DOTDOT INT ambiguity, error reporting;
   - parser: representative programs, precise failure positions;
   - parse ∘ print = id over the seeded generator (qcheck), and fmt
     idempotence;
   - checker: every rejection fixture pins the exact line:col the CLI
     will print (the binary maps these to exit 2);
   - expansion: overlay replacement, sweep unrolling + labels, seq,
     binding visibility, duplicate bindings, registry lookups;
   - lowering: the compiled path is bit-identical to hand-written
     Core.Engine / Harness.Openrun calls, execution is replayable, and
     chaos findings round-trip through the .lbs emitter;
   - fuzz machinery: generated scenarios are well-typed and conserve
     tokens; the minimizer shrinks while preserving the predicate. *)

module A = Scenario.Ast
module L = Scenario.Lexer
module P = Scenario.Parser
module Pr = Scenario.Pretty
module C = Scenario.Check
module Co = Scenario.Compile
module G = Scenario.Gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---------- lexer ---------- *)

let tokens_of src =
  match L.tokenize src with
  | Ok ts -> List.map (fun (t : L.token) -> t.t) ts
  | Error (m, pos) -> Alcotest.fail (Printf.sprintf "lexer failed %d:%d %s" pos.line pos.col m)

let test_lexer_range () =
  (* '1..5' must not lex 1. as a float *)
  match tokens_of "1..5" with
  | [ L.INT 1; L.DOTDOT; L.INT 5; L.EOF ] -> ()
  | _ -> Alcotest.fail "1..5 should lex as INT DOTDOT INT"

let test_lexer_tokens () =
  (match tokens_of "flash(1, 0.5) # comment\n$x" with
  | [ L.IDENT "flash"; L.LPAREN; L.INT 1; L.COMMA; L.FLOAT f; L.RPAREN;
      L.DOLLAR; L.IDENT "x"; L.EOF ] ->
    check_bool "half" true (Float.equal f 0.5)
  | _ -> Alcotest.fail "unexpected token stream");
  match tokens_of "rotor-router 1e3" with
  | [ L.IDENT "rotor-router"; L.FLOAT f; L.EOF ] ->
    check_bool "1e3" true (Float.equal f 1000.0)
  | _ -> Alcotest.fail "hyphenated ident / exponent float"

let test_lexer_positions () =
  match L.tokenize "a\n  bc" with
  | Ok [ _; (bc : L.token); _ ] ->
    check_int "line" 2 bc.tpos.line;
    check_int "col" 3 bc.tpos.col
  | Ok _ -> Alcotest.fail "expected two idents"
  | Error (m, _) -> Alcotest.fail m

let test_lexer_error () =
  match L.tokenize "graph ?" with
  | Error (_, pos) ->
    check_int "line" 1 pos.line;
    check_int "col" 7 pos.col
  | Ok _ -> Alcotest.fail "'?' should not lex"

(* ---------- parser ---------- *)

let parse_ok src =
  match P.parse src with
  | Ok f -> f
  | Error (m, pos) ->
    Alcotest.fail (Printf.sprintf "parse failed %d:%d %s" pos.line pos.col m)

let minimal =
  "let main = scenario {\n  graph cycle(8)\n  init point(16)\n  balancer \
   rotor-router\n  steps 5\n}\n"

let test_parse_minimal () =
  match parse_ok minimal with
  | [ { A.dname = "main"; body = { e = A.Scenario clauses; _ }; _ } ] ->
    check_int "clauses" 4 (List.length clauses)
  | _ -> Alcotest.fail "expected one scenario binding"

let test_parse_error_position () =
  match P.parse "let main = scenario {\n  graph cycle(\n}" with
  | Error (_, pos) -> check_int "error on line 3 close brace" 3 pos.line
  | Ok _ -> Alcotest.fail "unclosed call should not parse"

let test_parse_range_sweep () =
  let src =
    "let a = scenario {\n  graph cycle(8)\n  init point(16)\n  balancer \
     rotor-router\n  steps 5\n}\nlet main = sweep $x in 2..4 overlay a with { steps \
     $x }\n"
  in
  match Co.plan (parse_ok src) with
  | Error (m, _) -> Alcotest.fail m
  | Ok items ->
    check_int "three sweep points" 3 (List.length items);
    check_str "label" "main[x=2]" (List.nth items 0).Co.label;
    check_str "label" "main[x=4]" (List.nth items 2).Co.label;
    List.iteri
      (fun k (it : Co.item) ->
        match it.payload with
        | Co.Run { run = C.Closed { steps; _ }; _ } -> check_int "steps" (2 + k) steps
        | _ -> Alcotest.fail "expected closed run")
      items

(* ---------- parse ∘ print = id ---------- *)

let prop_roundtrip_file =
  QCheck.Test.make ~name:"parse (print file) = id" ~count:400
    QCheck.(pair (int_range 0 5000) (int_range 0 500))
    (fun (seed, index) ->
      let f = G.file ~seed ~index in
      let printed = Pr.file f in
      match P.parse printed with
      | Error (m, pos) ->
        QCheck.Test.fail_reportf "reparse failed %d:%d %s\n%s" pos.A.line pos.A.col m
          printed
      | Ok f' -> A.strip_file f' = A.strip_file f)

let prop_roundtrip_scenario =
  QCheck.Test.make ~name:"parse (print generated scenario) = id" ~count:400
    QCheck.(pair (int_range 0 5000) (int_range 0 500))
    (fun (seed, index) ->
      let f = G.to_file (G.scenario ~seed ~index) in
      match P.parse (Pr.file f) with
      | Error (m, pos) ->
        QCheck.Test.fail_reportf "reparse failed %d:%d %s" pos.A.line pos.A.col m
      | Ok f' -> A.strip_file f' = A.strip_file f)

let prop_fmt_idempotent =
  QCheck.Test.make ~name:"fmt is idempotent" ~count:200
    QCheck.(pair (int_range 0 5000) (int_range 0 500))
    (fun (seed, index) ->
      let printed = Pr.file (G.file ~seed ~index) in
      match P.parse printed with
      | Error _ -> false
      | Ok f' -> String.equal (Pr.file f') printed)

(* ---------- checker fixtures ---------- *)

(* Each fixture pins the exact line:col lb_scn will prefix to the
   message before exiting 2. *)
let reject_fixtures =
  [ ( "cycle too small",
      "let main = scenario {\n  graph cycle(2)\n  init point(8)\n  balancer \
       rotor-router\n  steps 5\n}\n",
      2, 15, "cycle size must be >= 3" );
    ( "send-round self-loops floor",
      "let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer \
       send-round self-loops(1)\n  steps 5\n}\n",
      4, 3, "send-round needs self-loops >=" );
    ( "duplicate clause",
      "let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer \
       rotor-router\n  steps 5\n  steps 6\n}\n",
      6, 3, "duplicate 'steps' clause (first at 5:3)" );
    ( "missing init",
      "let main = scenario {\n  graph cycle(8)\n  balancer rotor-router\n  steps 5\n}\n",
      1, 12, "missing its 'init' clause" );
    ( "steps vs rounds",
      "let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer \
       rotor-router\n  steps 5\n  rounds 9\n  arrivals uniform(1)\n}\n",
      6, 3, "mutually exclusive" );
    ( "arrival node out of range",
      "let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer \
       rotor-router\n  rounds 9\n  arrivals point(12, 2)\n}\n",
      6, 18, "arrival node 12 is outside the 8-node graph" );
    ( "partition needs dist",
      "let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer \
       rotor-router\n  steps 5\n  partition [1] @ 0.1 .. 0.5\n}\n",
      6, 3, "partition requires a dist clause" );
    ( "unbound sweep variable",
      "let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer \
       rotor-router\n  steps $k\n}\n",
      5, 9, "unbound sweep variable '$k'" );
    ( "mimic is closed-system only",
      "let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer mimic\n  \
       steps 5\n  net { drop 0.1 }\n}\n",
      4, 3, "mimic balancer is closed-system" );
    ( "staleness alone is not a channel",
      "let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer \
       rotor-router\n  steps 5\n  net { staleness 2 }\n}\n",
      6, 3, "staleness without a net layer" );
    ( "outage past horizon",
      "let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer \
       rotor-router\n  steps 5\n  faults [ outage(0.2, 4, 9) ]\n}\n",
      6, 24, "past the 5-step horizon" );
    ( "dist takes a bare balancer",
      "let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer \
       rotor-router self-loops(2)\n  rounds 9\n  dist { shards 3 }\n}\n",
      4, 3, "balancer name only" );
    ( "algo-seed on a deterministic scheme",
      "let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer \
       rotor-router algo-seed(3)\n  steps 5\n}\n",
      4, 35, "algo-seed only applies" ) ]

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_checker_rejections () =
  List.iter
    (fun (name, src, line, col, needle) ->
      match Co.plan (parse_ok src) with
      | Ok _ -> Alcotest.fail (name ^ ": expected a rejection")
      | Error (msg, pos) ->
        check_int (name ^ " line") line pos.A.line;
        check_int (name ^ " col") col pos.A.col;
        if not (contains ~needle msg) then
          Alcotest.fail (Printf.sprintf "%s: %S does not mention %S" name msg needle))
    reject_fixtures

(* ---------- expansion ---------- *)

let test_overlay_replaces_kind () =
  let src =
    "let a = scenario {\n  graph cycle(8)\n  init point(16)\n  balancer \
     rotor-router\n  steps 5\n}\nlet main = overlay a with { steps 9 graph \
     complete(6) }\n"
  in
  match Co.plan (parse_ok src) with
  | Ok [ { Co.payload = Co.Run t; _ } ] ->
    check_bool "graph replaced" true (t.C.graph = Harness.Experiment.Complete 6);
    (match t.C.run with
    | C.Closed { steps; _ } -> check_int "steps replaced" 9 steps
    | _ -> Alcotest.fail "expected closed run")
  | Ok _ -> Alcotest.fail "expected one item"
  | Error (m, _) -> Alcotest.fail m

let test_seq_and_experiment () =
  let src = "let main = seq [ experiment e15; experiment e17 ]\n" in
  match Co.plan (parse_ok src) with
  | Ok [ a; b ] ->
    check_bool "exper 15" true (a.Co.payload = Co.Exper "E15");
    check_bool "exper 17" true (b.Co.payload = Co.Exper "E17");
    check_str "ref-free seq labels" "main#1" a.Co.label
  | Ok _ -> Alcotest.fail "expected two items"
  | Error (m, _) -> Alcotest.fail m

let expect_plan_error name src needle =
  match Co.plan (parse_ok src) with
  | Ok _ -> Alcotest.fail (name ^ ": expected an error")
  | Error (msg, _) ->
    if not (contains ~needle msg) then
      Alcotest.fail (Printf.sprintf "%s: %S does not mention %S" name msg needle)

let test_expansion_errors () =
  expect_plan_error "forward reference"
    "let main = b\nlet b = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer \
     rotor-router\n  steps 5\n}\n"
    "unknown binding 'b'";
  expect_plan_error "duplicate binding" ("let a = experiment e15\nlet a = experiment e16\n")
    "duplicate binding";
  expect_plan_error "unknown experiment" "let main = experiment e99\n" "unknown experiment";
  (* an empty sweep is already a parse error *)
  match P.parse "let main = sweep $x in [] experiment e15\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty sweep should not parse"

(* ---------- lowering fidelity ---------- *)

let plan_one src =
  match Co.plan (parse_ok src) with
  | Ok [ { Co.payload = Co.Run t; _ } ] -> t
  | Ok _ -> Alcotest.fail "expected exactly one runnable item"
  | Error (m, _) -> Alcotest.fail m

let test_closed_matches_core_engine () =
  let t = plan_one minimal in
  match Co.execute t with
  | Error m -> Alcotest.fail m
  | Ok o ->
    let graph = Graphs.Gen.cycle 8 in
    let init = Array.make 8 0 in
    init.(0) <- 16;
    let balancer = Core.Rotor_router.make graph ~self_loops:(Graphs.Graph.degree graph) in
    let r = Core.Engine.run ~graph ~balancer ~init ~steps:5 () in
    check_bool "bit-identical loads" true (o.Co.final_loads = r.Core.Engine.final_loads);
    check_int "rounds" 5 o.Co.rounds;
    check_bool "conserved" true o.Co.conserved

let test_open_matches_handwritten () =
  let src =
    "let main = scenario {\n  graph cycle(8)\n  init point(16)\n  balancer \
     rotor-router\n  rounds 12\n  arrivals uniform(2)\n  lifetime work(3)\n  \
     workload-seed 11\n}\n"
  in
  let t = plan_one src in
  match Co.execute t with
  | Error m -> Alcotest.fail m
  | Ok o ->
    (* the lb_sim PRNG convention, written out by hand *)
    let graph = Graphs.Gen.cycle 8 in
    let init = Array.make 8 0 in
    init.(0) <- 16;
    let balancer = Core.Rotor_router.make graph ~self_loops:(Graphs.Graph.degree graph) in
    let master = Prng.Splitmix.create 11 in
    let arrival_rng = Prng.Splitmix.split master in
    let lifetime_rng = Prng.Splitmix.split master in
    let arrival = Workload.Arrival.uniform ~rng:arrival_rng ~per_round:2 in
    let lifetime = Workload.Lifetime.uniform_attempts ~rng:lifetime_rng ~per_round:3 in
    let config = Workload.Engine.config ~arrival ~lifetime ~rounds:12 () in
    let r =
      Harness.Openrun.run ~mode:Harness.Openrun.Plain ~config ~graph ~balancer ~init ()
    in
    check_bool "bit-identical loads" true (o.Co.final_loads = r.Workload.Engine.final_loads);
    check_int "injected = arrivals" r.Workload.Engine.total_arrivals o.Co.injected

let test_execute_replayable () =
  let t =
    plan_one
      "let main = scenario {\n  graph torus(4, 4)\n  init bimodal(24, 0)\n  balancer \
       send-floor\n  steps 20\n  faults [ crash(0.3, 5, wipe, spill) ]\n  net { drop \
       0.1 delay 1 }\n  seed 4\n}\n"
  in
  match (Co.execute t, Co.execute t) with
  | Ok a, Ok b ->
    check_bool "replay bit-identical" true (a.Co.final_loads = b.Co.final_loads);
    check_bool "conserved" true a.Co.conserved;
    check_bool "drained" true a.Co.drained
  | Error m, _ | _, Error m -> Alcotest.fail m

let test_dist_compile_only () =
  let t =
    plan_one
      "let main = scenario {\n  graph cycle(24)\n  init point(2048)\n  balancer \
       rotor-router\n  rounds 9\n  seed 3\n  dist { shards 3 kill(1, 4) drop 0.05 }\n  \
       partition [2] @ 0.1 .. 0.4\n}\n"
  in
  (match Co.execute t with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dist scenarios must not execute in-process");
  match Co.cluster_command t with
  | Some cmd ->
    check_str "replayable command"
      "lb_cluster --graph cycle:24 --init point:2048 --algo rotor-router --rounds 9 \
       --shards 3 --seed 3 --band auto --drop 0.05 --kill 1@4 --partition \
       2@0.1-0.4"
      cmd
  | None -> Alcotest.fail "expected a cluster command"

(* ---------- chaos findings as .lbs ---------- *)

let test_chaos_emitter_roundtrip () =
  (* a hand-made finding with every feature: the emitted file must
     check and compile back to the exact same lb_cluster invocation *)
  let s =
    { Dist.Chaos.index = 12; shards = 3; rounds = 10; graph = "torus:5x5";
      init = "bimodal:40,2"; algo = "send-floor"; seed = 9; drop = 0.02;
      delay_prob = 0.1; delay_max = 0.004;
      faults =
        [ Dist.Super.Kill_shard { shard = 1; round = 4 };
          Dist.Super.Term_shard { shard = 2; round = 6 };
          Dist.Super.Kill_coord { round = 5 } ];
      partitions = [ { Dist.Loss.cut = [ 1 ]; from_s = 0.05; until_s = 0.3 } ] }
  in
  match Scenario.Cluster.to_string s with
  | Error m -> Alcotest.fail m
  | Ok text -> (
    match Co.plan (parse_ok text) with
    | Error (m, pos) ->
      Alcotest.fail (Printf.sprintf "emitted file rejected %d:%d %s\n%s" pos.A.line
           pos.A.col m text)
    | Ok [ { Co.payload = Co.Run t; _ } ] ->
      (match Co.cluster_command t with
      | Some cmd -> check_str "command round-trip" (Dist.Chaos.command_line s) cmd
      | None -> Alcotest.fail "expected a cluster command")
    | Ok _ -> Alcotest.fail "expected one item")

let test_chaos_emitter_generated () =
  for index = 0 to 19 do
    let s = Dist.Chaos.generate ~seed:5 ~index in
    match Scenario.Cluster.to_string s with
    | Error m -> Alcotest.fail m
    | Ok text -> (
      match Co.plan (parse_ok text) with
      | Error (m, _) ->
        Alcotest.fail (Printf.sprintf "chaos scenario %d rejected: %s\n%s" index m text)
      | Ok items -> check_int "one item" 1 (List.length items))
  done

(* ---------- fuzz machinery ---------- *)

let test_generated_well_typed_and_conserving () =
  for index = 0 to 149 do
    let sc = G.scenario ~seed:99 ~index in
    match C.scenario ~at:A.no_pos sc with
    | Error (m, _) ->
      Alcotest.fail
        (Printf.sprintf "generated scenario %d ill-typed: %s\n%s" index m
           (Pr.file (G.to_file sc)))
    | Ok t -> (
      match Co.execute t with
      | Error m -> Alcotest.fail (Printf.sprintf "scenario %d: %s" index m)
      | Ok o ->
        check_bool (Printf.sprintf "scenario %d conserved" index) true o.Co.conserved;
        check_bool (Printf.sprintf "scenario %d drained" index) true o.Co.drained)
  done

let test_minimizer_shrinks () =
  let has_net sc = List.exists (fun c -> A.clause_kind c.A.c = "net") sc in
  let well_typed sc = Result.is_ok (C.scenario ~at:A.no_pos sc) in
  (* find a generated scenario with a net layer *)
  let rec find index =
    if index > 400 then Alcotest.fail "no net scenario in 400 draws"
    else
      let sc = G.scenario ~seed:13 ~index in
      if has_net sc then sc else find (index + 1)
  in
  let sc = find 0 in
  let fails c = well_typed c && has_net c in
  let minimal = G.minimize ~fails sc in
  check_bool "still failing" true (fails minimal);
  check_bool "no larger" true (List.length minimal <= List.length sc);
  (* the minimal scenario keeps nothing optional but the net layer *)
  List.iter
    (fun (c : A.clause) ->
      match A.clause_kind c.A.c with
      | "graph" | "init" | "balancer" | "steps" | "rounds" | "arrivals" | "net" -> ()
      | k -> Alcotest.fail ("minimizer left an optional '" ^ k ^ "' clause"))
    minimal

let () =
  Alcotest.run "scenario"
    [ ( "lexer",
        [ Alcotest.test_case "int range" `Quick test_lexer_range;
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "errors" `Quick test_lexer_error ] );
      ( "parser",
        [ Alcotest.test_case "minimal file" `Quick test_parse_minimal;
          Alcotest.test_case "error position" `Quick test_parse_error_position;
          Alcotest.test_case "range sweep" `Quick test_parse_range_sweep ] );
      ( "roundtrip",
        [ QCheck_alcotest.to_alcotest prop_roundtrip_file;
          QCheck_alcotest.to_alcotest prop_roundtrip_scenario;
          QCheck_alcotest.to_alcotest prop_fmt_idempotent ] );
      ("checker", [ Alcotest.test_case "rejection fixtures" `Quick test_checker_rejections ]);
      ( "expansion",
        [ Alcotest.test_case "overlay replaces kinds" `Quick test_overlay_replaces_kind;
          Alcotest.test_case "seq + experiment" `Quick test_seq_and_experiment;
          Alcotest.test_case "errors" `Quick test_expansion_errors ] );
      ( "lowering",
        [ Alcotest.test_case "closed = Core.Engine" `Quick test_closed_matches_core_engine;
          Alcotest.test_case "open = Openrun (lb_sim PRNG)" `Quick
            test_open_matches_handwritten;
          Alcotest.test_case "replayable" `Quick test_execute_replayable;
          Alcotest.test_case "dist is compile-only" `Quick test_dist_compile_only ] );
      ( "chaos-lbs",
        [ Alcotest.test_case "hand-made round-trip" `Quick test_chaos_emitter_roundtrip;
          Alcotest.test_case "generated all check" `Quick test_chaos_emitter_generated ] );
      ( "fuzz",
        [ Alcotest.test_case "well-typed + conserving" `Quick
            test_generated_well_typed_and_conserving;
          Alcotest.test_case "minimizer shrinks" `Quick test_minimizer_shrinks ] ) ]
