(* lb_lint rule-catalogue tests: every rule fires on a violating fixture
   with the right path:line:col, stays silent on clean code, and the two
   suppression mechanisms (in-source annotations, allowlist file) work.
   Ends with the meta-test: the linter over this repo's lib/ and bin/
   reports zero findings. *)

let counter = ref 0

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

(* Lay out [files : (relpath * content) list] under a fresh temp root,
   run [f root], clean up. *)
let with_fixture files f =
  incr counter;
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lb_lint_test_%d_%d" (Unix.getpid ()) !counter)
  in
  mkdir_p root;
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      List.iter
        (fun (rel, content) ->
          let path = Filename.concat root rel in
          mkdir_p (Filename.dirname path);
          let oc = open_out path in
          output_string oc content;
          close_out oc)
        files;
      f root)

let scan ?(allow = Lint.Allow.empty) root paths =
  match Lint.Scan.run ~allow (List.map (Filename.concat root) paths) with
  | Ok report -> report
  | Error e -> Alcotest.failf "Scan.run: %s" e

let rules_of (r : Lint.Scan.report) =
  List.map (fun f -> Lint.Finding.rule_id f.Lint.Finding.rule) r.findings

let check_rules what expected report =
  Alcotest.(check (list string)) what expected (rules_of report)

(* A minimal interface so fixtures don't trip R4 when testing other rules. *)
let mli rel = (rel, "(* sealed for the lint fixtures *)\n")

let substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- R1 determinism --- *)

let test_r1_fires () =
  with_fixture
    [
      ("lib/foo/a.ml", "let roll () = Random.int 6\n");
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "R1 on Random.int" [ "R1" ] r;
      let f = List.hd r.findings in
      Alcotest.(check int) "line" 1 f.Lint.Finding.line;
      Alcotest.(check int) "col" 14 f.Lint.Finding.col)

let test_r1_catalogue () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a () = Hashtbl.hash 3\n\
         let b () = Sys.time ()\n\
         let c () = Unix.gettimeofday ()\n\
         let d tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n\
         let e tbl = Hashtbl.fold (fun _ _ n -> n) tbl 0\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "every R1 source fires" [ "R1"; "R1"; "R1"; "R1"; "R1" ] r)

let test_r1_builtin_allowlist () =
  let body = "let roll () = Random.int 6\n" in
  with_fixture
    [
      ("lib/prng/a.ml", body);
      mli "lib/prng/a.mli";
      ("lib/obs/prof.ml", "let now () = Unix.gettimeofday ()\n");
      mli "lib/obs/prof.mli";
      ("lib/obs/probe.ml", "let now () = Unix.gettimeofday ()\n");
      mli "lib/obs/probe.mli";
      ("lib/shard/checkpoint.ml", "let now () = Unix.gettimeofday ()\n");
      mli "lib/shard/checkpoint.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "sanctioned modules are exempt from R1" [] r)

let test_r1_not_in_bin () =
  with_fixture
    [ ("bin/tool.ml", "let roll () = Random.int 6\n") ]
    (fun root ->
      let r = scan root [ "bin" ] in
      check_rules "R1 is lib-only" [] r)

(* --- R2 float-safe ordering --- *)

let test_r2_fires () =
  with_fixture
    [
      ("lib/foo/a.ml", "let sort xs = List.sort compare xs\n");
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "R2 on bare compare" [ "R2" ] r;
      let f = List.hd r.findings in
      Alcotest.(check int) "line" 1 f.Lint.Finding.line;
      Alcotest.(check int) "col" 24 f.Lint.Finding.col)

let test_r2_operator_as_argument () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a xs = List.sort ( > ) xs\n\
         let b x = compare x\n\
         let c x y = Stdlib.compare x y\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "operators as arguments + Stdlib.compare"
        [ "R2"; "R2"; "R2" ] r)

let test_r2_clean_and_infix () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let sort xs = List.sort Float.compare xs\n\
         let eq a b = a = b && a < b + 1\n\
         let cmp = Int.compare\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "monomorphic comparators and infix ops are clean" [] r)

let test_r2_applies_in_bin () =
  with_fixture
    [ ("bin/tool.ml", "let sort xs = List.sort compare xs\n") ]
    (fun root ->
      let r = scan root [ "bin" ] in
      check_rules "R2 also covers bin/" [ "R2" ] r)

(* --- R3 totality --- *)

let test_r3_fires () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a xs = List.hd xs\n\
         let b xs = List.nth xs 3\n\
         let c o = Option.get o\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "partial functions fire" [ "R3"; "R3"; "R3" ] r;
      match r.findings with
      | f :: _ ->
        Alcotest.(check int) "line" 1 f.Lint.Finding.line;
        Alcotest.(check int) "col" 11 f.Lint.Finding.col
      | [] -> Alcotest.fail "no findings")

let test_r3_total_annotation () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "(* lint: total — caller guarantees a non-empty list *)\n\
         let a xs = List.hd xs\n\
         let b xs = List.nth xs 3 (* lint: total *)\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "(* lint: total *) silences R3, above or inline" [] r)

let test_r3_total_rewrite_is_clean () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a xs =\n\
        \  match xs with\n\
        \  | x :: _ -> x\n\
        \  | [] -> invalid_arg \"a: empty\"\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root -> check_rules "total rewrite is clean" [] (scan root [ "lib" ]))

(* --- R4 interface hygiene --- *)

let test_r4_fires () =
  with_fixture
    [ ("lib/foo/bare.ml", "let x = 1\n") ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "missing .mli fires" [ "R4" ] r;
      let f = List.hd r.findings in
      Alcotest.(check int) "line" 1 f.Lint.Finding.line;
      Alcotest.(check bool) "message names the interface" true
        (String.length f.Lint.Finding.msg > 0))

let test_r4_silent_with_mli () =
  with_fixture
    [ ("lib/foo/sealed.ml", "let x = 1\n"); mli "lib/foo/sealed.mli" ]
    (fun root -> check_rules "paired .mli is clean" [] (scan root [ "lib" ]))

(* --- R5 IO hygiene --- *)

let test_r5_fires () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a () = print_endline \"hi\"\n\
         let b () = Printf.printf \"%d\" 3\n\
         let c () = Format.printf \"x\"\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "stdout writers fire" [ "R5"; "R5"; "R5" ] r)

let test_r5_stderr_and_sprintf_clean () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a () = prerr_endline \"warn\"\n\
         let b () = Printf.sprintf \"%d\" 3\n\
         let c oc = Printf.fprintf oc \"x\"\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      check_rules "stderr/sprintf/fprintf are clean" [] (scan root [ "lib" ]))

(* --- suppression mechanisms --- *)

let test_allow_file () =
  let allow =
    match Lint.Allow.of_lines [ "# comment"; ""; "lib/foo/a.ml R5 R3" ] with
    | Ok a -> a
    | Error e -> Alcotest.failf "allowlist: %s" e
  in
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a () = print_endline \"hi\"\nlet b xs = List.hd xs\n" );
      mli "lib/foo/a.mli";
      ("lib/foo/b.ml", "let c () = print_endline \"hi\"\n");
      mli "lib/foo/b.mli";
    ]
    (fun root ->
      let r = scan ~allow root [ "lib" ] in
      (* a.ml fully covered; b.ml's R5 still fires. *)
      check_rules "allow file scopes by path and rule" [ "R5" ] r;
      match r.findings with
      | f :: _ ->
        Alcotest.(check bool) "finding is in b.ml" true
          (Filename.basename f.Lint.Finding.file = "b.ml")
      | [] -> Alcotest.fail "expected b.ml finding")

let test_allow_file_all_and_errors () =
  (match Lint.Allow.of_lines [ "lib/foo all" ] with
  | Ok a ->
    with_fixture
      [
        ("lib/foo/a.ml", "let a () = print_endline (string_of_int (List.hd []))\n");
        mli "lib/foo/a.mli";
      ]
      (fun root ->
        check_rules "'all' suppresses every rule" [] (scan ~allow:a root [ "lib" ]))
  | Error e -> Alcotest.failf "allowlist: %s" e);
  match Lint.Allow.of_lines [ "lib/foo R9" ] with
  | Ok _ -> Alcotest.fail "unknown rule must be rejected"
  | Error e ->
    Alcotest.(check bool) "error names the rule" true
      (String.length e > 0)

let test_allow_file_scoped_rule () =
  (* R1[Unix.gettimeofday] sanctions exactly that construct: the other
     R1 source in the same file (ambient Random) must still fire, and so
     must an unrelated rule. *)
  let allow =
    match Lint.Allow.of_lines [ "lib/foo/a.ml R1[Unix.gettimeofday]" ] with
    | Ok a -> a
    | Error e -> Alcotest.failf "allowlist: %s" e
  in
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let now () = Unix.gettimeofday ()\n\
         let r () = Random.int 4\n\
         let h xs = List.hd xs\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan ~allow root [ "lib" ] in
      check_rules "scoped entry only covers the named construct"
        [ "R1"; "R3" ] r;
      List.iter
        (fun f ->
          Alcotest.(check bool) "gettimeofday finding suppressed" false
            (substring ~sub:"gettimeofday" f.Lint.Finding.msg))
        r.findings)

let test_allow_file_scoped_parse_errors () =
  (match Lint.Allow.of_lines [ "lib/foo R1[]" ] with
  | Ok _ -> Alcotest.fail "empty scope must be rejected"
  | Error _ -> ());
  (match Lint.Allow.of_lines [ "lib/foo R1[Unix.time" ] with
  | Ok _ -> Alcotest.fail "unterminated scope must be rejected"
  | Error _ -> ());
  match Lint.Allow.of_lines [ "lib/foo R9[Unix.time]" ] with
  | Ok _ -> Alcotest.fail "unknown scoped rule must be rejected"
  | Error _ -> ()

let test_annotation_allow_rule () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "(* lint: allow R1 — order-insensitive fold *)\n\
         let a tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0\n\
         let b tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      (* The annotation covers line 2 only; line 3 still fires. *)
      check_rules "annotation is line-scoped" [ "R1" ] r;
      match r.findings with
      | f :: _ -> Alcotest.(check int) "unsuppressed line" 3 f.Lint.Finding.line
      | [] -> Alcotest.fail "expected line-3 finding")

let test_annotation_wrong_rule_does_not_mask () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "(* lint: allow R5 *)\nlet a xs = List.hd xs\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      check_rules "allowing R5 does not hide R3" [ "R3" ] (scan root [ "lib" ]))

let test_annotation_inside_string_or_prose_ignored () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let doc = \"(* lint: allow R1 *)\"\n\
         let r () = Random.int 3\n" );
      mli "lib/foo/a.mli";
      ( "lib/foo/b.ml",
        "(* lb_lint: determinism notes, not a directive *)\n\
         let r () = Random.int 3\n" );
      mli "lib/foo/b.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      (* Neither the string literal mentioning the syntax nor the
         "lb_lint:" prose registers as a waiver: both R1s fire. *)
      check_rules "annotations in strings/prose are inert" [ "R1"; "R1" ] r;
      List.iter
        (fun (_, anns) ->
          Alcotest.(check (list int)) "no annotation sites registered" []
            (Lint.Allow.annotation_sites anns))
        r.annotations)

(* --- JSONL serialization --- *)

let test_jsonl_escaping () =
  let chain =
    [
      {
        Lint.Finding.hop_sym = "A.b";
        hop_file = "lib/a.ml";
        hop_line = 3;
        hop_col = 1;
      };
    ]
  in
  let f =
    Lint.Finding.make ~chain ~file:"lib/a\"b.ml" ~line:1 ~col:2
      ~rule:Lint.Finding.T1 ~msg:"quote \" and\nnewline" ()
  in
  let s = Lint.Finding.to_jsonl f in
  Alcotest.(check bool) "one line" false (String.contains s '\n');
  Alcotest.(check bool) "quotes escaped" true (substring ~sub:"a\\\"b.ml" s);
  Alcotest.(check bool) "chain serialized" true
    (substring ~sub:"\"chain\":[{\"file\":\"lib/a.ml\"" s);
  Alcotest.(check bool) "rule tagged" true (substring ~sub:"\"rule\":\"T1\"" s)

(* --- the typed pass: fixtures are compiled with ocamlc -bin-annot and
   analyzed through Typed.run with build_dir = "." --- *)

let compile root ~incl rels =
  let cmd =
    Printf.sprintf "cd %s && ocamlc -bin-annot %s -c %s"
      (Filename.quote root)
      (String.concat " "
         (List.map (fun d -> "-I " ^ Filename.quote d) incl))
      (String.concat " " (List.map Filename.quote rels))
  in
  if Sys.command cmd <> 0 then Alcotest.failf "fixture compile failed: %s" cmd

let typed_cfg ?(allow = Lint.Allow.empty) ?allow_path ?(roots = [ "bin" ])
    ?(sinks = []) ?(sources = []) ?(cuts = []) ?(wire = []) ?exit_contract root
    =
  let base = Lint.Typed.default_config ~root ?allow_path ~allow () in
  {
    base with
    Lint.Typed.build_dir = ".";
    roots;
    sink_modules = sinks;
    source_files = sources;
    cut_files = cuts;
    wire;
    exit_contract;
  }

let typed_run cfg =
  match Lint.Typed.run cfg with
  | Ok r -> r
  | Error e -> Alcotest.failf "Typed.run: %s" e

let typed_rules (r : Lint.Typed.report) =
  List.map
    (fun f -> Lint.Finding.rule_id f.Lint.Finding.rule)
    r.Lint.Typed.findings

let chain_syms (f : Lint.Finding.t) =
  List.map (fun h -> h.Lint.Finding.hop_sym) f.Lint.Finding.chain

(* T1: a primitive source reached through two call hops, flagged at the
   sink call, with the full chain reported hop by hop. *)
let test_t1_chain () =
  with_fixture
    [
      ("bin/engine.ml", "let run f = f 0\n");
      ( "bin/a.ml",
        "let now () = Sys.time ()\n\
         let caller () = now ()\n\
         let go f = let _ = caller () in Engine.run f\n" );
    ]
    (fun root ->
      compile root ~incl:[ "bin" ] [ "bin/engine.ml"; "bin/a.ml" ];
      let r = typed_run (typed_cfg ~sinks:[ "Engine" ] root) in
      Alcotest.(check (list string)) "one T1" [ "T1" ] (typed_rules r);
      let f = List.hd r.Lint.Typed.findings in
      Alcotest.(check string) "flagged at the sink call site" "bin/a.ml"
        f.Lint.Finding.file;
      Alcotest.(check int) "line of the sink call" 3 f.Lint.Finding.line;
      Alcotest.(check bool) "message leads with the taint root" true
        (substring ~sub:"Sys.time:" f.Lint.Finding.msg);
      Alcotest.(check (list string)) "source -> chain -> sink, every hop"
        [ "Engine.run"; "A.go"; "A.caller"; "A.now"; "Sys.time" ]
        (chain_syms f);
      List.iter
        (fun h ->
          Alcotest.(check string) "hop files resolved" "bin/a.ml"
            h.Lint.Finding.hop_file;
          Alcotest.(check bool) "hop lines resolved" true
            (h.Lint.Finding.hop_line > 0))
        f.Lint.Finding.chain)

let test_t1_sink_module_def () =
  with_fixture
    [ ("bin/engine.ml", "let run () = Random.int 3\n") ]
    (fun root ->
      compile root ~incl:[ "bin" ] [ "bin/engine.ml" ];
      let r = typed_run (typed_cfg ~sinks:[ "Engine" ] root) in
      Alcotest.(check (list string)) "tainted def in sink module" [ "T1" ]
        (typed_rules r);
      let f = List.hd r.Lint.Typed.findings in
      Alcotest.(check bool) "names the sink module" true
        (substring ~sub:"replay-critical" f.Lint.Finding.msg);
      Alcotest.(check (list string)) "chain ends at the primitive"
        [ "Engine.run"; "Random.int" ]
        (chain_syms f))

let test_t1_cut_stops_taint () =
  with_fixture
    [
      ("bin/engine.ml", "let run f = f 0\n");
      ("bin/prof.ml", "let now () = Sys.time ()\n");
      ("bin/a.ml", "let go f = let _ = Prof.now () in Engine.run f\n");
    ]
    (fun root ->
      compile root ~incl:[ "bin" ]
        [ "bin/engine.ml"; "bin/prof.ml"; "bin/a.ml" ];
      let r =
        typed_run
          (typed_cfg ~sinks:[ "Engine" ] ~cuts:[ "bin/prof.ml" ] root)
      in
      Alcotest.(check (list string)) "cut file stops propagation" []
        (typed_rules r))

(* T1 + waivers: a source-file root, suppressed only by the exactly
   scoped entry; a mis-scoped entry both leaks the finding and reports
   itself stale. *)
let test_t1_source_file_and_scoped_waiver () =
  let files =
    [
      ("bin/engine.ml", "let run f = f 0\n");
      ("bin/clock.ml", "let now () = 42\n");
      ("bin/a.ml", "let go f = let _ = Clock.now () in Engine.run f\n");
    ]
  in
  with_fixture files (fun root ->
      compile root ~incl:[ "bin" ]
        [ "bin/engine.ml"; "bin/clock.ml"; "bin/a.ml" ];
      let cfg allow =
        typed_cfg ~allow ~allow_path:"ALLOW" ~sinks:[ "Engine" ]
          ~sources:[ "bin/clock.ml" ] root
      in
      let r = typed_run (cfg Lint.Allow.empty) in
      Alcotest.(check (list string)) "source-file defs are taint roots"
        [ "T1" ] (typed_rules r);
      Alcotest.(check bool) "message leads with the clock symbol" true
        (substring ~sub:"Clock.now:"
           (List.hd r.Lint.Typed.findings).Lint.Finding.msg);
      let allow_of lines =
        match Lint.Allow.of_lines lines with
        | Ok a -> a
        | Error e -> Alcotest.failf "allow: %s" e
      in
      let r = typed_run (cfg (allow_of [ "bin/a.ml T1[Clock.now]" ])) in
      Alcotest.(check (list string)) "scoped waiver suppresses" []
        (typed_rules r);
      Alcotest.(check int) "waiver is live, not stale" 0
        (List.length r.Lint.Typed.stale);
      let r = typed_run (cfg (allow_of [ "bin/a.ml T1[Other.now]" ])) in
      Alcotest.(check (list string)) "mis-scoped waiver does not cover"
        [ "T1" ] (typed_rules r);
      Alcotest.(check int) "and is reported stale" 1
        (List.length r.Lint.Typed.stale))

(* T2: an escaping ref cell. *)
let test_t2_escaping_ref () =
  with_fixture
    [
      ( "bin/t.ml",
        "let go () =\n\
        \  let counter = ref 0 in\n\
        \  let d = Domain.spawn (fun () -> counter := 1) in\n\
        \  Domain.join d;\n\
        \  !counter\n" );
    ]
    (fun root ->
      compile root ~incl:[ "bin" ] [ "bin/t.ml" ];
      let r = typed_run (typed_cfg root) in
      Alcotest.(check (list string)) "escaping ref fires" [ "T2" ]
        (typed_rules r);
      let f = List.hd r.Lint.Typed.findings in
      Alcotest.(check bool) "names the captured value" true
        (substring ~sub:"counter:" f.Lint.Finding.msg);
      Alcotest.(check (list string)) "chain shows capture and spawn"
        [ "counter"; "Domain.spawn" ]
        (chain_syms f))

(* T2 negative space: Atomic, a domain-local ref, and a mutex-guarded
   record (the Shard.Pool shape) are all clean. *)
let test_t2_safe_captures () =
  with_fixture
    [
      ( "bin/t.ml",
        "type st = { mutable x : int; lock : Mutex.t }\n\
         let go () =\n\
        \  let a = Atomic.make 0 in\n\
        \  let s = { x = 0; lock = Mutex.create () } in\n\
        \  let d =\n\
        \    Domain.spawn (fun () ->\n\
        \        let local = ref 0 in\n\
        \        incr local;\n\
        \        Atomic.incr a;\n\
        \        Mutex.lock s.lock;\n\
        \        s.x <- 1;\n\
        \        Mutex.unlock s.lock)\n\
        \  in\n\
        \  Domain.join d\n" );
    ]
    (fun root ->
      compile root ~incl:[ "bin" ] [ "bin/t.ml" ];
      let r = typed_run (typed_cfg root) in
      Alcotest.(check (list string))
        "atomic / domain-local / mutex-guarded are clean" [] (typed_rules r))

let test_t2_unguarded_record () =
  with_fixture
    [
      ( "bin/t.ml",
        "type st = { mutable x : int }\n\
         let go () =\n\
        \  let s = { x = 0 } in\n\
        \  let d = Domain.spawn (fun () -> s.x <- 1) in\n\
        \  Domain.join d;\n\
        \  s.x\n" );
    ]
    (fun root ->
      compile root ~incl:[ "bin" ] [ "bin/t.ml" ];
      let r = typed_run (typed_cfg root) in
      Alcotest.(check (list string)) "unguarded mutable record fires"
        [ "T2" ] (typed_rules r);
      Alcotest.(check bool) "names the mutable field" true
        (substring ~sub:"x" (List.hd r.Lint.Typed.findings).Lint.Finding.msg))

(* T3: wildcard dispatch + the fingerprint/version contract life cycle. *)
let wire_fixture_spec =
  {
    Lint.Typed.wire_module = "Msg";
    wire_type = "t";
    wire_version = "version";
    wire_contract = "wire_contract";
  }

let write_file root rel content =
  let oc = open_out (Filename.concat root rel) in
  output_string oc content;
  close_out oc

let test_t3_wildcard_and_contract () =
  with_fixture
    [
      ("bin/msg.ml", "type t = A | B of int\n\nlet version = 1\n");
      ( "bin/h.ml",
        "let f (m : Msg.t) = match m with Msg.A -> 0 | _ -> 1\n\
         let g (m : Msg.t) = match m with x -> ignore x; 2\n" );
    ]
    (fun root ->
      let rebuild () =
        compile root ~incl:[ "bin" ] [ "bin/msg.ml"; "bin/h.ml" ]
      in
      rebuild ();
      let cfg = typed_cfg ~wire:[ wire_fixture_spec ] root in
      (match Lint.Typed.write_wire_contract cfg with
      | Ok [ "wire_contract" ] -> ()
      | Ok w -> Alcotest.failf "unexpected contract files: %s" (String.concat "," w)
      | Error e -> Alcotest.failf "wire-update: %s" e);
      let r = typed_run cfg in
      Alcotest.(check (list string))
        "only the wildcard arm fires (var arm and typed params are total)"
        [ "T3" ] (typed_rules r);
      let f = List.hd r.Lint.Typed.findings in
      Alcotest.(check string) "at the dispatch site" "bin/h.ml"
        f.Lint.Finding.file;
      Alcotest.(check int) "on the wildcard line" 1 f.Lint.Finding.line;
      Alcotest.(check bool) "says wildcard" true
        (substring ~sub:"wildcard" f.Lint.Finding.msg);
      (* shape drift without a version bump *)
      write_file root "bin/msg.ml" "type t = A | B of string\n\nlet version = 1\n";
      rebuild ();
      let msgs () =
        List.map (fun f -> f.Lint.Finding.msg) (typed_run cfg).Lint.Typed.findings
      in
      Alcotest.(check bool) "shape drift without version bump is flagged" true
        (List.exists (substring ~sub:"without bumping") (msgs ()));
      (* bump the version: still flagged until the contract is re-recorded *)
      write_file root "bin/msg.ml" "type t = A | B of string\n\nlet version = 2\n";
      rebuild ();
      Alcotest.(check bool) "bumped but unrecorded is still flagged" true
        (List.exists (substring ~sub:"re-record") (msgs ()));
      (match Lint.Typed.write_wire_contract cfg with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "wire-update: %s" e);
      let r = typed_run cfg in
      Alcotest.(check (list string))
        "re-recorded contract leaves only the wildcard" [ "T3" ]
        (typed_rules r);
      Alcotest.(check bool) "and it is the wildcard arm" true
        (substring ~sub:"wildcard"
           (List.hd r.Lint.Typed.findings).Lint.Finding.msg))

(* T4: undocumented exit codes in bin/, any exit in lib/. *)
let test_t4_exit_contract () =
  with_fixture
    [
      ("bin/helper.ml", "let verdict () = 0\n");
      ( "bin/tool.ml",
        "let bad () = exit 7\n\
         let ok () = exit 0\n\
         let cond b = exit (if b then 0 else 2)\n\
         let from_helper () = exit (Helper.verdict ())\n" );
      ("lib/foo/a.ml", "let die () = exit 1\n");
      mli "lib/foo/a.mli";
      ( "ec",
        "code 0 ok\ncode 1 findings\ncode 2 config\nreturner Helper.verdict\n"
      );
    ]
    (fun root ->
      compile root
        ~incl:[ "bin"; "lib/foo" ]
        [ "lib/foo/a.mli"; "lib/foo/a.ml"; "bin/helper.ml"; "bin/tool.ml" ];
      let r =
        typed_run
          (typed_cfg ~roots:[ "lib"; "bin" ] ~exit_contract:"ec" root)
      in
      Alcotest.(check (list string)) "undocumented code + lib exit"
        [ "T4"; "T4" ] (typed_rules r);
      let msgs = List.map (fun f -> f.Lint.Finding.msg) r.Lint.Typed.findings in
      Alcotest.(check bool) "lib exit is named" true
        (List.exists (substring ~sub:"library code") msgs);
      Alcotest.(check bool) "exit 7 is named" true
        (List.exists (substring ~sub:"7") msgs);
      (* a missing contract file is a configuration error, not silence *)
      let r =
        typed_run
          (typed_cfg ~roots:[ "lib"; "bin" ] ~exit_contract:"nope" root)
      in
      Alcotest.(check bool) "missing contract reported" true
        (List.length r.Lint.Typed.errors > 0))

(* stale waivers: entries and annotations that suppress nothing are
   reported with their location. *)
let test_stale_waivers () =
  with_fixture
    [
      ("lib/foo/a.ml", "let a () = print_endline \"hi\"\n");
      mli "lib/foo/a.mli";
      ( "lib/foo/b.ml",
        "(* lint: allow R5 *)\n\
         let x = 1\n\
         let a tbl = Hashtbl.fold (fun _ _ n -> n) tbl 0 (* lint: allow R1 *)\n"
      );
      mli "lib/foo/b.mli";
    ]
    (fun root ->
      compile root ~incl:[ "lib/foo" ]
        [ "lib/foo/a.mli"; "lib/foo/a.ml"; "lib/foo/b.mli"; "lib/foo/b.ml" ];
      let allow =
        match
          Lint.Allow.of_lines [ "lib/foo/a.ml R5"; "lib/foo/zzz.ml R1" ]
        with
        | Ok a -> a
        | Error e -> Alcotest.failf "allow: %s" e
      in
      let r =
        typed_run
          (typed_cfg ~allow ~allow_path:"ALLOW" ~roots:[ "lib" ] root)
      in
      Alcotest.(check (list string)) "live waivers suppress" []
        (typed_rules r);
      let where = List.map (fun s -> s.Lint.Typed.sw_where) r.Lint.Typed.stale in
      Alcotest.(check int) "exactly the dead entry and dead annotation" 2
        (List.length where);
      Alcotest.(check bool) "dead allow entry located" true
        (List.exists (substring ~sub:"ALLOW:") where);
      Alcotest.(check bool) "dead annotation located" true
        (List.exists (substring ~sub:"b.ml:1") where);
      List.iter
        (fun s ->
          Alcotest.(check bool) "stale detail says so" true
            (substring ~sub:"suppresses nothing" s.Lint.Typed.sw_detail))
        r.Lint.Typed.stale)

(* --- parse errors --- *)

let test_parse_error_reported () =
  with_fixture
    [ ("lib/foo/bad.ml", "let x = (\n"); mli "lib/foo/bad.mli" ]
    (fun root ->
      let r = scan root [ "lib" ] in
      Alcotest.(check int) "no findings" 0 (List.length r.findings);
      Alcotest.(check int) "one error" 1 (List.length r.errors))

(* --- the meta-test: this repository lints clean --- *)

let repo_root () =
  let rec climb dir n =
    if n > 6 then None
    else if
      Sys.file_exists (Filename.concat dir "lib/core/engine.ml")
      && Sys.file_exists (Filename.concat dir "bin/lb_lint.ml")
    then Some dir
    else climb (Filename.dirname dir) (n + 1)
  in
  climb (Sys.getcwd ()) 0

let test_repo_is_clean () =
  match repo_root () with
  | None -> Alcotest.fail "could not locate the repo root from the test cwd"
  | Some root ->
    let allow_file = Filename.concat root "bin/lint_allow" in
    let allow =
      if Sys.file_exists allow_file then
        match Lint.Allow.load allow_file with
        | Ok a -> a
        | Error e -> Alcotest.failf "bin/lint_allow: %s" e
      else Lint.Allow.empty
    in
    let r =
      scan ~allow root [ "lib"; "bin" ]
    in
    List.iter
      (fun f -> Printf.eprintf "%s\n" (Lint.Finding.to_string f))
      r.findings;
    List.iter
      (fun { Lint.Scan.path; message } ->
        Printf.eprintf "error: %s: %s\n" path message)
      r.errors;
    Alcotest.(check int) "lb_lint over lib/ and bin/ is clean" 0
      (List.length r.findings);
    Alcotest.(check int) "no parse errors" 0 (List.length r.errors)

(* Same bar for the typed pass: T1–T4 over every lib/ and bin/ unit, no
   findings, no stale waivers, no errors.  Under dune the test cwd is
   inside _build/default, whose tree mirrors the sources and holds the
   .cmt files (the dune deps declare @check). *)
let test_repo_is_clean_typed () =
  match repo_root () with
  | None -> Alcotest.fail "could not locate the repo root from the test cwd"
  | Some root ->
    let allow_path = Filename.concat root "bin/lint_allow" in
    let allow =
      if Sys.file_exists allow_path then
        match Lint.Allow.load allow_path with
        | Ok a -> a
        | Error e -> Alcotest.failf "bin/lint_allow: %s" e
      else Lint.Allow.empty
    in
    let build_dir =
      if Sys.file_exists (Filename.concat root "_build/default") then
        "_build/default"
      else "."
    in
    let cfg =
      { (Lint.Typed.default_config ~root ~allow_path ~allow ()) with
        Lint.Typed.build_dir }
    in
    (match Lint.Typed.run cfg with
    | Error e ->
      Alcotest.failf "typed pass failed to start: %s (run `dune build @check`)"
        e
    | Ok r ->
      List.iter
        (fun f -> Printf.eprintf "%s\n" (Lint.Finding.to_string f))
        r.Lint.Typed.findings;
      List.iter
        (fun s ->
          Printf.eprintf "stale waiver: %s: %s\n" s.Lint.Typed.sw_where
            s.Lint.Typed.sw_detail)
        r.Lint.Typed.stale;
      List.iter
        (fun { Lint.Scan.path; message } ->
          Printf.eprintf "error: %s: %s\n" path message)
        r.Lint.Typed.errors;
      Alcotest.(check bool) "analyzed a substantial unit count" true
        (r.Lint.Typed.units > 50);
      Alcotest.(check int) "lb_lint --typed over lib/ and bin/ is clean" 0
        (List.length r.Lint.Typed.findings);
      Alcotest.(check int) "no stale waivers" 0 (List.length r.Lint.Typed.stale);
      Alcotest.(check int) "no errors" 0 (List.length r.Lint.Typed.errors))

let () =
  Alcotest.run "lint"
    [
      ( "R1 determinism",
        [
          Alcotest.test_case "fires on Random.int with line:col" `Quick
            test_r1_fires;
          Alcotest.test_case "full catalogue fires" `Quick test_r1_catalogue;
          Alcotest.test_case "built-in module allowlist" `Quick
            test_r1_builtin_allowlist;
          Alcotest.test_case "lib-only" `Quick test_r1_not_in_bin;
        ] );
      ( "R2 ordering",
        [
          Alcotest.test_case "fires on bare compare with line:col" `Quick
            test_r2_fires;
          Alcotest.test_case "operators as arguments" `Quick
            test_r2_operator_as_argument;
          Alcotest.test_case "clean comparators and infix ops" `Quick
            test_r2_clean_and_infix;
          Alcotest.test_case "covers bin/" `Quick test_r2_applies_in_bin;
        ] );
      ( "R3 totality",
        [
          Alcotest.test_case "fires on partial functions" `Quick test_r3_fires;
          Alcotest.test_case "lint: total annotation" `Quick
            test_r3_total_annotation;
          Alcotest.test_case "total rewrite is clean" `Quick
            test_r3_total_rewrite_is_clean;
        ] );
      ( "R4 interfaces",
        [
          Alcotest.test_case "fires on missing .mli" `Quick test_r4_fires;
          Alcotest.test_case "silent with .mli" `Quick test_r4_silent_with_mli;
        ] );
      ( "R5 IO",
        [
          Alcotest.test_case "fires on stdout writers" `Quick test_r5_fires;
          Alcotest.test_case "stderr and sprintf are clean" `Quick
            test_r5_stderr_and_sprintf_clean;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "allow file" `Quick test_allow_file;
          Alcotest.test_case "allow-all and bad rules" `Quick
            test_allow_file_all_and_errors;
          Alcotest.test_case "scoped rule narrows suppression" `Quick
            test_allow_file_scoped_rule;
          Alcotest.test_case "scoped rule parse errors" `Quick
            test_allow_file_scoped_parse_errors;
          Alcotest.test_case "line-scoped annotation" `Quick
            test_annotation_allow_rule;
          Alcotest.test_case "wrong rule does not mask" `Quick
            test_annotation_wrong_rule_does_not_mask;
          Alcotest.test_case "annotations in strings/prose are inert" `Quick
            test_annotation_inside_string_or_prose_ignored;
        ] );
      ( "jsonl",
        [ Alcotest.test_case "escaping and chain shape" `Quick test_jsonl_escaping ] );
      ( "T1 taint",
        [
          Alcotest.test_case "source -> call chain -> sink with hops" `Quick
            test_t1_chain;
          Alcotest.test_case "tainted def inside a sink module" `Quick
            test_t1_sink_module_def;
          Alcotest.test_case "cut files stop propagation" `Quick
            test_t1_cut_stops_taint;
          Alcotest.test_case "source files and scoped waivers" `Quick
            test_t1_source_file_and_scoped_waiver;
        ] );
      ( "T2 domains",
        [
          Alcotest.test_case "escaping ref fires" `Quick test_t2_escaping_ref;
          Alcotest.test_case "atomic/local/guarded are clean" `Quick
            test_t2_safe_captures;
          Alcotest.test_case "unguarded mutable record fires" `Quick
            test_t2_unguarded_record;
        ] );
      ( "T3 wire",
        [
          Alcotest.test_case "wildcard dispatch and contract life cycle"
            `Quick test_t3_wildcard_and_contract;
        ] );
      ( "T4 exits",
        [
          Alcotest.test_case "exit-code contract" `Quick test_t4_exit_contract;
        ] );
      ( "stale waivers",
        [ Alcotest.test_case "dead entries and annotations" `Quick test_stale_waivers ] );
      ( "errors",
        [
          Alcotest.test_case "syntax error becomes exit-2 error" `Quick
            test_parse_error_reported;
        ] );
      ( "meta",
        [
          Alcotest.test_case "the repo lints clean" `Quick test_repo_is_clean;
          Alcotest.test_case "the repo lints clean under --typed" `Quick
            test_repo_is_clean_typed;
        ] );
    ]
