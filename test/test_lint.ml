(* lb_lint rule-catalogue tests: every rule fires on a violating fixture
   with the right path:line:col, stays silent on clean code, and the two
   suppression mechanisms (in-source annotations, allowlist file) work.
   Ends with the meta-test: the linter over this repo's lib/ and bin/
   reports zero findings. *)

let counter = ref 0

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

(* Lay out [files : (relpath * content) list] under a fresh temp root,
   run [f root], clean up. *)
let with_fixture files f =
  incr counter;
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lb_lint_test_%d_%d" (Unix.getpid ()) !counter)
  in
  mkdir_p root;
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      List.iter
        (fun (rel, content) ->
          let path = Filename.concat root rel in
          mkdir_p (Filename.dirname path);
          let oc = open_out path in
          output_string oc content;
          close_out oc)
        files;
      f root)

let scan ?(allow = Lint.Allow.empty) root paths =
  match Lint.Scan.run ~allow (List.map (Filename.concat root) paths) with
  | Ok report -> report
  | Error e -> Alcotest.failf "Scan.run: %s" e

let rules_of (r : Lint.Scan.report) =
  List.map (fun f -> Lint.Finding.rule_id f.Lint.Finding.rule) r.findings

let check_rules what expected report =
  Alcotest.(check (list string)) what expected (rules_of report)

(* A minimal interface so fixtures don't trip R4 when testing other rules. *)
let mli rel = (rel, "(* sealed for the lint fixtures *)\n")

let substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- R1 determinism --- *)

let test_r1_fires () =
  with_fixture
    [
      ("lib/foo/a.ml", "let roll () = Random.int 6\n");
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "R1 on Random.int" [ "R1" ] r;
      let f = List.hd r.findings in
      Alcotest.(check int) "line" 1 f.Lint.Finding.line;
      Alcotest.(check int) "col" 14 f.Lint.Finding.col)

let test_r1_catalogue () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a () = Hashtbl.hash 3\n\
         let b () = Sys.time ()\n\
         let c () = Unix.gettimeofday ()\n\
         let d tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n\
         let e tbl = Hashtbl.fold (fun _ _ n -> n) tbl 0\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "every R1 source fires" [ "R1"; "R1"; "R1"; "R1"; "R1" ] r)

let test_r1_builtin_allowlist () =
  let body = "let roll () = Random.int 6\n" in
  with_fixture
    [
      ("lib/prng/a.ml", body);
      mli "lib/prng/a.mli";
      ("lib/obs/prof.ml", "let now () = Unix.gettimeofday ()\n");
      mli "lib/obs/prof.mli";
      ("lib/obs/probe.ml", "let now () = Unix.gettimeofday ()\n");
      mli "lib/obs/probe.mli";
      ("lib/shard/checkpoint.ml", "let now () = Unix.gettimeofday ()\n");
      mli "lib/shard/checkpoint.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "sanctioned modules are exempt from R1" [] r)

let test_r1_not_in_bin () =
  with_fixture
    [ ("bin/tool.ml", "let roll () = Random.int 6\n") ]
    (fun root ->
      let r = scan root [ "bin" ] in
      check_rules "R1 is lib-only" [] r)

(* --- R2 float-safe ordering --- *)

let test_r2_fires () =
  with_fixture
    [
      ("lib/foo/a.ml", "let sort xs = List.sort compare xs\n");
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "R2 on bare compare" [ "R2" ] r;
      let f = List.hd r.findings in
      Alcotest.(check int) "line" 1 f.Lint.Finding.line;
      Alcotest.(check int) "col" 24 f.Lint.Finding.col)

let test_r2_operator_as_argument () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a xs = List.sort ( > ) xs\n\
         let b x = compare x\n\
         let c x y = Stdlib.compare x y\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "operators as arguments + Stdlib.compare"
        [ "R2"; "R2"; "R2" ] r)

let test_r2_clean_and_infix () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let sort xs = List.sort Float.compare xs\n\
         let eq a b = a = b && a < b + 1\n\
         let cmp = Int.compare\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "monomorphic comparators and infix ops are clean" [] r)

let test_r2_applies_in_bin () =
  with_fixture
    [ ("bin/tool.ml", "let sort xs = List.sort compare xs\n") ]
    (fun root ->
      let r = scan root [ "bin" ] in
      check_rules "R2 also covers bin/" [ "R2" ] r)

(* --- R3 totality --- *)

let test_r3_fires () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a xs = List.hd xs\n\
         let b xs = List.nth xs 3\n\
         let c o = Option.get o\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "partial functions fire" [ "R3"; "R3"; "R3" ] r;
      match r.findings with
      | f :: _ ->
        Alcotest.(check int) "line" 1 f.Lint.Finding.line;
        Alcotest.(check int) "col" 11 f.Lint.Finding.col
      | [] -> Alcotest.fail "no findings")

let test_r3_total_annotation () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "(* lint: total — caller guarantees a non-empty list *)\n\
         let a xs = List.hd xs\n\
         let b xs = List.nth xs 3 (* lint: total *)\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "(* lint: total *) silences R3, above or inline" [] r)

let test_r3_total_rewrite_is_clean () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a xs =\n\
        \  match xs with\n\
        \  | x :: _ -> x\n\
        \  | [] -> invalid_arg \"a: empty\"\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root -> check_rules "total rewrite is clean" [] (scan root [ "lib" ]))

(* --- R4 interface hygiene --- *)

let test_r4_fires () =
  with_fixture
    [ ("lib/foo/bare.ml", "let x = 1\n") ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "missing .mli fires" [ "R4" ] r;
      let f = List.hd r.findings in
      Alcotest.(check int) "line" 1 f.Lint.Finding.line;
      Alcotest.(check bool) "message names the interface" true
        (String.length f.Lint.Finding.msg > 0))

let test_r4_silent_with_mli () =
  with_fixture
    [ ("lib/foo/sealed.ml", "let x = 1\n"); mli "lib/foo/sealed.mli" ]
    (fun root -> check_rules "paired .mli is clean" [] (scan root [ "lib" ]))

(* --- R5 IO hygiene --- *)

let test_r5_fires () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a () = print_endline \"hi\"\n\
         let b () = Printf.printf \"%d\" 3\n\
         let c () = Format.printf \"x\"\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      check_rules "stdout writers fire" [ "R5"; "R5"; "R5" ] r)

let test_r5_stderr_and_sprintf_clean () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a () = prerr_endline \"warn\"\n\
         let b () = Printf.sprintf \"%d\" 3\n\
         let c oc = Printf.fprintf oc \"x\"\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      check_rules "stderr/sprintf/fprintf are clean" [] (scan root [ "lib" ]))

(* --- suppression mechanisms --- *)

let test_allow_file () =
  let allow =
    match Lint.Allow.of_lines [ "# comment"; ""; "lib/foo/a.ml R5 R3" ] with
    | Ok a -> a
    | Error e -> Alcotest.failf "allowlist: %s" e
  in
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let a () = print_endline \"hi\"\nlet b xs = List.hd xs\n" );
      mli "lib/foo/a.mli";
      ("lib/foo/b.ml", "let c () = print_endline \"hi\"\n");
      mli "lib/foo/b.mli";
    ]
    (fun root ->
      let r = scan ~allow root [ "lib" ] in
      (* a.ml fully covered; b.ml's R5 still fires. *)
      check_rules "allow file scopes by path and rule" [ "R5" ] r;
      match r.findings with
      | f :: _ ->
        Alcotest.(check bool) "finding is in b.ml" true
          (Filename.basename f.Lint.Finding.file = "b.ml")
      | [] -> Alcotest.fail "expected b.ml finding")

let test_allow_file_all_and_errors () =
  (match Lint.Allow.of_lines [ "lib/foo all" ] with
  | Ok a ->
    with_fixture
      [
        ("lib/foo/a.ml", "let a () = print_endline (string_of_int (List.hd []))\n");
        mli "lib/foo/a.mli";
      ]
      (fun root ->
        check_rules "'all' suppresses every rule" [] (scan ~allow:a root [ "lib" ]))
  | Error e -> Alcotest.failf "allowlist: %s" e);
  match Lint.Allow.of_lines [ "lib/foo R9" ] with
  | Ok _ -> Alcotest.fail "unknown rule must be rejected"
  | Error e ->
    Alcotest.(check bool) "error names the rule" true
      (String.length e > 0)

let test_allow_file_scoped_rule () =
  (* R1[Unix.gettimeofday] sanctions exactly that construct: the other
     R1 source in the same file (ambient Random) must still fire, and so
     must an unrelated rule. *)
  let allow =
    match Lint.Allow.of_lines [ "lib/foo/a.ml R1[Unix.gettimeofday]" ] with
    | Ok a -> a
    | Error e -> Alcotest.failf "allowlist: %s" e
  in
  with_fixture
    [
      ( "lib/foo/a.ml",
        "let now () = Unix.gettimeofday ()\n\
         let r () = Random.int 4\n\
         let h xs = List.hd xs\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan ~allow root [ "lib" ] in
      check_rules "scoped entry only covers the named construct"
        [ "R1"; "R3" ] r;
      List.iter
        (fun f ->
          Alcotest.(check bool) "gettimeofday finding suppressed" false
            (substring ~sub:"gettimeofday" f.Lint.Finding.msg))
        r.findings)

let test_allow_file_scoped_parse_errors () =
  (match Lint.Allow.of_lines [ "lib/foo R1[]" ] with
  | Ok _ -> Alcotest.fail "empty scope must be rejected"
  | Error _ -> ());
  (match Lint.Allow.of_lines [ "lib/foo R1[Unix.time" ] with
  | Ok _ -> Alcotest.fail "unterminated scope must be rejected"
  | Error _ -> ());
  match Lint.Allow.of_lines [ "lib/foo R9[Unix.time]" ] with
  | Ok _ -> Alcotest.fail "unknown scoped rule must be rejected"
  | Error _ -> ()

let test_annotation_allow_rule () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "(* lint: allow R1 — order-insensitive fold *)\n\
         let a tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0\n\
         let b tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      let r = scan root [ "lib" ] in
      (* The annotation covers line 2 only; line 3 still fires. *)
      check_rules "annotation is line-scoped" [ "R1" ] r;
      match r.findings with
      | f :: _ -> Alcotest.(check int) "unsuppressed line" 3 f.Lint.Finding.line
      | [] -> Alcotest.fail "expected line-3 finding")

let test_annotation_wrong_rule_does_not_mask () =
  with_fixture
    [
      ( "lib/foo/a.ml",
        "(* lint: allow R5 *)\nlet a xs = List.hd xs\n" );
      mli "lib/foo/a.mli";
    ]
    (fun root ->
      check_rules "allowing R5 does not hide R3" [ "R3" ] (scan root [ "lib" ]))

(* --- parse errors --- *)

let test_parse_error_reported () =
  with_fixture
    [ ("lib/foo/bad.ml", "let x = (\n"); mli "lib/foo/bad.mli" ]
    (fun root ->
      let r = scan root [ "lib" ] in
      Alcotest.(check int) "no findings" 0 (List.length r.findings);
      Alcotest.(check int) "one error" 1 (List.length r.errors))

(* --- the meta-test: this repository lints clean --- *)

let repo_root () =
  let rec climb dir n =
    if n > 6 then None
    else if
      Sys.file_exists (Filename.concat dir "lib/core/engine.ml")
      && Sys.file_exists (Filename.concat dir "bin/lb_lint.ml")
    then Some dir
    else climb (Filename.dirname dir) (n + 1)
  in
  climb (Sys.getcwd ()) 0

let test_repo_is_clean () =
  match repo_root () with
  | None -> Alcotest.fail "could not locate the repo root from the test cwd"
  | Some root ->
    let allow_file = Filename.concat root "bin/lint_allow" in
    let allow =
      if Sys.file_exists allow_file then
        match Lint.Allow.load allow_file with
        | Ok a -> a
        | Error e -> Alcotest.failf "bin/lint_allow: %s" e
      else Lint.Allow.empty
    in
    let r =
      scan ~allow root [ "lib"; "bin" ]
    in
    List.iter
      (fun f -> Printf.eprintf "%s\n" (Lint.Finding.to_string f))
      r.findings;
    List.iter
      (fun { Lint.Scan.path; message } ->
        Printf.eprintf "error: %s: %s\n" path message)
      r.errors;
    Alcotest.(check int) "lb_lint over lib/ and bin/ is clean" 0
      (List.length r.findings);
    Alcotest.(check int) "no parse errors" 0 (List.length r.errors)

let () =
  Alcotest.run "lint"
    [
      ( "R1 determinism",
        [
          Alcotest.test_case "fires on Random.int with line:col" `Quick
            test_r1_fires;
          Alcotest.test_case "full catalogue fires" `Quick test_r1_catalogue;
          Alcotest.test_case "built-in module allowlist" `Quick
            test_r1_builtin_allowlist;
          Alcotest.test_case "lib-only" `Quick test_r1_not_in_bin;
        ] );
      ( "R2 ordering",
        [
          Alcotest.test_case "fires on bare compare with line:col" `Quick
            test_r2_fires;
          Alcotest.test_case "operators as arguments" `Quick
            test_r2_operator_as_argument;
          Alcotest.test_case "clean comparators and infix ops" `Quick
            test_r2_clean_and_infix;
          Alcotest.test_case "covers bin/" `Quick test_r2_applies_in_bin;
        ] );
      ( "R3 totality",
        [
          Alcotest.test_case "fires on partial functions" `Quick test_r3_fires;
          Alcotest.test_case "lint: total annotation" `Quick
            test_r3_total_annotation;
          Alcotest.test_case "total rewrite is clean" `Quick
            test_r3_total_rewrite_is_clean;
        ] );
      ( "R4 interfaces",
        [
          Alcotest.test_case "fires on missing .mli" `Quick test_r4_fires;
          Alcotest.test_case "silent with .mli" `Quick test_r4_silent_with_mli;
        ] );
      ( "R5 IO",
        [
          Alcotest.test_case "fires on stdout writers" `Quick test_r5_fires;
          Alcotest.test_case "stderr and sprintf are clean" `Quick
            test_r5_stderr_and_sprintf_clean;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "allow file" `Quick test_allow_file;
          Alcotest.test_case "allow-all and bad rules" `Quick
            test_allow_file_all_and_errors;
          Alcotest.test_case "scoped rule narrows suppression" `Quick
            test_allow_file_scoped_rule;
          Alcotest.test_case "scoped rule parse errors" `Quick
            test_allow_file_scoped_parse_errors;
          Alcotest.test_case "line-scoped annotation" `Quick
            test_annotation_allow_rule;
          Alcotest.test_case "wrong rule does not mask" `Quick
            test_annotation_wrong_rule_does_not_mask;
        ] );
      ( "errors",
        [
          Alcotest.test_case "syntax error becomes exit-2 error" `Quick
            test_parse_error_reported;
        ] );
      ( "meta",
        [
          Alcotest.test_case "the repo lints clean" `Quick test_repo_is_clean;
        ] );
    ]
