(* Tests for the open-system (dynamic arrivals/departures) runner. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let torus () = Graphs.Gen.torus [ 6; 6 ]

let test_mass_accounting_uniform () =
  let g = torus () in
  let n = 36 in
  let balancer = Core.Send_round.make g ~self_loops:4 in
  let init = Core.Loads.flat ~n ~value:2 in
  let r =
    Core.Dynamic.run ~graph:g ~balancer
      ~injection:(Core.Dynamic.Uniform_batch { rng = Prng.Splitmix.create 1; per_round = 9 })
      ~init ~rounds:50 ()
  in
  check_int "injected" (50 * 9) r.Core.Dynamic.total_injected;
  check_int "mass = init + injected" ((36 * 2) + (50 * 9))
    (Core.Loads.total r.Core.Dynamic.final_loads)

let test_mass_accounting_with_departures () =
  let g = torus () in
  let n = 36 in
  let balancer = Core.Rotor_router.make g ~self_loops:4 in
  let init = Core.Loads.flat ~n ~value:10 in
  let r =
    Core.Dynamic.run
      ~departure:(Core.Dynamic.Uniform_work { rng = Prng.Splitmix.create 2; per_round = 5 })
      ~graph:g ~balancer
      ~injection:(Core.Dynamic.Uniform_batch { rng = Prng.Splitmix.create 3; per_round = 5 })
      ~init ~rounds:100 ()
  in
  check_int "mass = init + injected − departed"
    ((36 * 10) + r.Core.Dynamic.total_injected - r.Core.Dynamic.total_departed)
    (Core.Loads.total r.Core.Dynamic.final_loads);
  check_bool "departures happened" true (r.Core.Dynamic.total_departed > 0)

let test_steady_state_band_uniform () =
  (* With uniform arrivals, the steady discrepancy stays near the static
     O(d√(log n/µ)) band rather than growing with injected volume. *)
  let g = torus () in
  let n = 36 in
  let balancer = Core.Send_round.make g ~self_loops:4 in
  let init = Core.Loads.flat ~n ~value:0 in
  let r =
    Core.Dynamic.run ~graph:g ~balancer
      ~injection:(Core.Dynamic.Uniform_batch { rng = Prng.Splitmix.create 4; per_round = 18 })
      ~init ~rounds:600 ()
  in
  check_bool
    (Printf.sprintf "steady mean %.1f small" r.Core.Dynamic.steady_mean)
    true
    (r.Core.Dynamic.steady_mean < 20.0);
  check_bool "volume grew much larger than the band" true
    (r.Core.Dynamic.total_injected > 50 * r.Core.Dynamic.steady_max)

let test_point_injection_worse_than_uniform () =
  let g = torus () in
  let n = 36 in
  let run injection =
    let balancer = Core.Rotor_router.make g ~self_loops:4 in
    (Core.Dynamic.run ~graph:g ~balancer ~injection
       ~init:(Core.Loads.flat ~n ~value:0) ~rounds:400 ())
      .Core.Dynamic.steady_mean
  in
  let uniform =
    run (Core.Dynamic.Uniform_batch { rng = Prng.Splitmix.create 5; per_round = 12 })
  in
  let point = run (Core.Dynamic.Point_batch { node = 0; per_round = 12 }) in
  check_bool
    (Printf.sprintf "point (%.1f) ≥ uniform (%.1f)" point uniform)
    true (point >= uniform -. 1.0)

let test_max_loaded_is_bounded_anyway () =
  (* Even the adversarial max-loaded injection reaches a steady band:
     the balancer drains B per round as long as B stays below the
     node's d⁺-port throughput times the mixing headroom. *)
  let g = torus () in
  let n = 36 in
  let balancer = Core.Send_round.make g ~self_loops:4 in
  let r =
    Core.Dynamic.run ~graph:g ~balancer
      ~injection:(Core.Dynamic.Max_loaded_batch { per_round = 4 })
      ~init:(Core.Loads.flat ~n ~value:0) ~rounds:600 ()
  in
  check_bool
    (Printf.sprintf "steady p95 %.1f bounded" r.Core.Dynamic.steady_p95)
    true
    (r.Core.Dynamic.steady_p95 < 60.0);
  (* And it does not trend upward: last-quarter mean ≈ steady mean. *)
  let len = Array.length r.Core.Dynamic.series in
  let last_quarter =
    Array.map (fun (_, d) -> float_of_int d)
      (Array.sub r.Core.Dynamic.series (3 * len / 4) (len - (3 * len / 4)))
  in
  let lq_mean =
    Array.fold_left ( +. ) 0.0 last_quarter /. float_of_int (Array.length last_quarter)
  in
  check_bool "no upward trend" true (lq_mean < 2.0 *. r.Core.Dynamic.steady_mean +. 10.0)

let test_departure_drains_to_empty_and_clamps () =
  (* Departures far exceeding the remaining mass must clamp at zero:
     a departure aimed at an empty node is skipped, never counted, and
     no load ever goes negative. *)
  let g = Graphs.Gen.cycle 8 in
  let balancer = Core.Send_floor.make g ~self_loops:2 in
  let r =
    Core.Dynamic.run
      ~departure:(Core.Dynamic.Uniform_work { rng = Prng.Splitmix.create 6; per_round = 10 })
      ~graph:g ~balancer
      ~injection:(Core.Dynamic.Point_batch { node = 0; per_round = 0 })
      ~init:(Core.Loads.flat ~n:8 ~value:1) ~rounds:30 ()
  in
  check_int "injected nothing" 0 r.Core.Dynamic.total_injected;
  check_int "departed exactly the initial mass" 8 r.Core.Dynamic.total_departed;
  check_int "system fully drained" 0 (Core.Loads.total r.Core.Dynamic.final_loads);
  Array.iter (fun x -> check_bool "never negative" true (x >= 0))
    r.Core.Dynamic.final_loads

let test_departure_deterministic_replay () =
  let run () =
    let g = torus () in
    let balancer = Core.Rotor_router.make g ~self_loops:4 in
    Core.Dynamic.run
      ~departure:(Core.Dynamic.Uniform_work { rng = Prng.Splitmix.create 8; per_round = 7 })
      ~graph:g ~balancer
      ~injection:(Core.Dynamic.Uniform_batch { rng = Prng.Splitmix.create 9; per_round = 7 })
      ~init:(Core.Loads.flat ~n:36 ~value:3) ~rounds:60 ()
  in
  let a = run () and b = run () in
  Alcotest.(check (array int))
    "same seeds, same loads" a.Core.Dynamic.final_loads b.Core.Dynamic.final_loads;
  check_int "same departures" a.Core.Dynamic.total_departed
    b.Core.Dynamic.total_departed;
  check_int "same injections" a.Core.Dynamic.total_injected
    b.Core.Dynamic.total_injected

let test_departure_heavy_turnover_stays_balanced () =
  (* Arrival rate = departure capacity: the open system churns its whole
     population many times over yet the discrepancy band stays static. *)
  let g = torus () in
  let balancer = Core.Send_round.make g ~self_loops:4 in
  let r =
    Core.Dynamic.run
      ~departure:(Core.Dynamic.Uniform_work { rng = Prng.Splitmix.create 10; per_round = 18 })
      ~graph:g ~balancer
      ~injection:(Core.Dynamic.Uniform_batch { rng = Prng.Splitmix.create 11; per_round = 18 })
      ~init:(Core.Loads.flat ~n:36 ~value:5) ~rounds:500 ()
  in
  check_bool "turned the population over" true
    (r.Core.Dynamic.total_departed > 10 * (36 * 5));
  check_bool
    (Printf.sprintf "steady mean %.1f small" r.Core.Dynamic.steady_mean)
    true
    (r.Core.Dynamic.steady_mean < 25.0)

let test_rejects_bad_inputs () =
  let g = torus () in
  let balancer = Core.Rotor_router.make g ~self_loops:4 in
  check_bool "bad node" true
    (try
       ignore
         (Core.Dynamic.run ~graph:g ~balancer
            ~injection:(Core.Dynamic.Point_batch { node = 99; per_round = 1 })
            ~init:(Core.Loads.flat ~n:36 ~value:0) ~rounds:1 ());
       false
     with Invalid_argument _ -> true)

let prop_dynamic_conserves_accounting =
  QCheck.Test.make ~name:"open-system accounting always balances" ~count:20
    QCheck.(triple (int_range 3 10) (int_range 0 20) (int_range 1 50))
    (fun (n, batch, rounds) ->
      let g = Graphs.Gen.cycle n in
      let balancer = Core.Send_floor.make g ~self_loops:2 in
      let r =
        Core.Dynamic.run ~graph:g ~balancer
          ~injection:
            (Core.Dynamic.Uniform_batch
               { rng = Prng.Splitmix.create (n + batch); per_round = batch })
          ~init:(Core.Loads.flat ~n ~value:1) ~rounds ()
      in
      Core.Loads.total r.Core.Dynamic.final_loads = n + r.Core.Dynamic.total_injected)

let () =
  Alcotest.run "dynamic"
    [
      ( "accounting",
        [
          Alcotest.test_case "uniform injection" `Quick test_mass_accounting_uniform;
          Alcotest.test_case "with departures" `Quick test_mass_accounting_with_departures;
          Alcotest.test_case "rejects bad inputs" `Quick test_rejects_bad_inputs;
        ] );
      ( "departures",
        [
          Alcotest.test_case "drains to empty, clamps at zero" `Quick
            test_departure_drains_to_empty_and_clamps;
          Alcotest.test_case "seeded replay is deterministic" `Quick
            test_departure_deterministic_replay;
          Alcotest.test_case "heavy turnover stays balanced" `Quick
            test_departure_heavy_turnover_stays_balanced;
        ] );
      ( "steady state",
        [
          Alcotest.test_case "uniform band" `Quick test_steady_state_band_uniform;
          Alcotest.test_case "point ≥ uniform" `Quick test_point_injection_worse_than_uniform;
          Alcotest.test_case "max-loaded bounded" `Quick test_max_loaded_is_bounded_anyway;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_dynamic_conserves_accounting ]);
    ]
