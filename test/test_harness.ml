(* Tests for the harness: stats, tables, CSV, and the experiment
   registry. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Stats --- *)

let test_mean_variance () =
  check_float "mean" 3.0 (Harness.Stats.mean [| 1.0; 3.0; 5.0 |]);
  check_float "variance" 4.0 (Harness.Stats.variance [| 1.0; 3.0; 5.0 |]);
  check_float "stddev" 2.0 (Harness.Stats.stddev [| 1.0; 3.0; 5.0 |]);
  check_float "variance singleton" 0.0 (Harness.Stats.variance [| 7.0 |])

let test_median_percentile () =
  check_float "median odd" 3.0 (Harness.Stats.median [| 5.0; 1.0; 3.0 |]);
  check_float "median even" 2.5 (Harness.Stats.median [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "p0" 1.0 (Harness.Stats.percentile [| 1.0; 2.0; 3.0 |] 0.0);
  check_float "p100" 3.0 (Harness.Stats.percentile [| 1.0; 2.0; 3.0 |] 100.0)

let test_empty_samples_rejected () =
  (* Every sample-taking helper must refuse an empty array with a clear
     message rather than returning nan/infinity. *)
  let rejects name f =
    check_bool name true
      (try
         ignore (f [||]);
         false
       with Invalid_argument m ->
         (* The message names the offending function. *)
         String.length m > String.length "Stats."
         && String.sub m 0 6 = "Stats.")
  in
  rejects "mean" Harness.Stats.mean;
  rejects "variance" Harness.Stats.variance;
  rejects "stddev" Harness.Stats.stddev;
  rejects "median" Harness.Stats.median;
  rejects "percentile" (fun a -> Harness.Stats.percentile a 50.0);
  rejects "minimum" Harness.Stats.minimum;
  rejects "maximum" Harness.Stats.maximum;
  (* Singletons are fine everywhere. *)
  check_float "singleton mean" 7.0 (Harness.Stats.mean [| 7.0 |]);
  check_float "singleton stddev" 0.0 (Harness.Stats.stddev [| 7.0 |]);
  check_float "singleton median" 7.0 (Harness.Stats.median [| 7.0 |])

let test_linear_fit () =
  let a, b = Harness.Stats.linear_fit [| (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) |] in
  check_float "slope" 2.0 a;
  check_float "intercept" 1.0 b

let test_power_law_fit () =
  (* y = 3 x^0.5 exactly. *)
  let pts = Array.init 10 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 3.0 *. sqrt x))
  in
  let a, c = Harness.Stats.power_law_fit pts in
  check_bool "exponent" true (abs_float (a -. 0.5) < 1e-9);
  check_bool "factor" true (abs_float (c -. 3.0) < 1e-9)

let test_power_law_rejects_nonpositive () =
  check_bool "rejected" true
    (try
       ignore (Harness.Stats.power_law_fit [| (0.0, 1.0); (1.0, 2.0) |]);
       false
     with Invalid_argument _ -> true)

let test_correlation () =
  check_float "perfect" 1.0 (Harness.Stats.correlation [| (0.0, 0.0); (1.0, 2.0); (2.0, 4.0) |]);
  check_float "anti" (-1.0)
    (Harness.Stats.correlation [| (0.0, 4.0); (1.0, 2.0); (2.0, 0.0) |])

(* --- Table --- *)

let test_table_render () =
  let s =
    Harness.Table.render ~header:[ "name"; "value" ]
      ~rows:[ [ "x"; "1" ]; [ "longer"; "22" ] ]
      ()
  in
  let lines = String.split_on_char '\n' s in
  check_int "line count" 4 (List.length lines);
  List.iter
    (fun l -> check_int "equal widths" (String.length (List.hd lines)) (String.length l))
    lines

let test_table_alignment () =
  let s =
    Harness.Table.render ~align:[ Harness.Table.Left; Harness.Table.Right ]
      ~header:[ "a"; "num" ]
      ~rows:[ [ "x"; "5" ] ]
      ()
  in
  let data_row = List.nth (String.split_on_char '\n' s) 2 in
  Alcotest.(check string) "right aligned" "| x |   5 |" data_row

let test_table_rejects_ragged () =
  check_bool "ragged rejected" true
    (try
       ignore (Harness.Table.render ~header:[ "a"; "b" ] ~rows:[ [ "only one" ] ] ());
       false
     with Invalid_argument _ -> true)

let test_table_formatters () =
  Alcotest.(check string) "float" "3.14" (Harness.Table.fmt_float ~decimals:2 3.14159);
  Alcotest.(check string) "none" "-" (Harness.Table.fmt_opt_int None);
  Alcotest.(check string) "some" "7" (Harness.Table.fmt_opt_int (Some 7))

(* --- Csv --- *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Harness.Csv.escape_cell "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Harness.Csv.escape_cell "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Harness.Csv.escape_cell "a\"b")

let test_csv_roundtrip_file () =
  let path = Filename.temp_file "loadbal" ".csv" in
  Harness.Csv.write ~path ~header:[ "x"; "y" ] ~rows:[ [ "1"; "2" ]; [ "3"; "4" ] ];
  let ic = open_in path in
  let content = In_channel.input_all ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "content" "x,y\n1,2\n3,4\n" content

(* --- Experiment registry --- *)

let test_graph_specs_build () =
  List.iter
    (fun (spec, expect_n, expect_d) ->
      let g = Harness.Experiment.build_graph spec in
      check_int (Harness.Experiment.graph_name spec ^ " n") expect_n (Graphs.Graph.n g);
      check_int (Harness.Experiment.graph_name spec ^ " d") expect_d (Graphs.Graph.degree g))
    [
      (Harness.Experiment.Cycle 10, 10, 2);
      (Harness.Experiment.Torus2d 4, 16, 4);
      (Harness.Experiment.Hypercube 3, 8, 3);
      (Harness.Experiment.Complete 7, 7, 6);
      (Harness.Experiment.Random_regular { n = 20; d = 4; seed = 1 }, 20, 4);
      (Harness.Experiment.Clique_circulant { n = 20; d = 6 }, 20, 6);
    ]

let test_init_specs_build () =
  let x = Harness.Experiment.build_init (Harness.Experiment.Point_mass 99) ~n:7 in
  check_int "point mass total" 99 (Core.Loads.total x);
  let y =
    Harness.Experiment.build_init
      (Harness.Experiment.Uniform_random { total = 55; seed = 3 })
      ~n:7
  in
  check_int "random total" 55 (Core.Loads.total y)

let test_algo_specs_build () =
  let g = Harness.Experiment.build_graph (Harness.Experiment.Torus2d 3) in
  let init = Core.Loads.point_mass ~n:9 ~total:90 in
  List.iter
    (fun spec ->
      let b = Harness.Experiment.build_balancer spec g ~init in
      check_bool
        (Harness.Experiment.algo_name spec ^ " builds")
        true
        (Core.Balancer.d_plus b > Graphs.Graph.degree g || b.Core.Balancer.self_loops = 0))
    [
      Harness.Experiment.Rotor_router { self_loops = 4 };
      Harness.Experiment.Rotor_router_star;
      Harness.Experiment.Send_floor { self_loops = 4 };
      Harness.Experiment.Send_round { self_loops = 8 };
      Harness.Experiment.Mimic { self_loops = 4 };
      Harness.Experiment.Random_extra { self_loops = 4; seed = 1 };
      Harness.Experiment.Random_rounding { self_loops = 4; seed = 1 };
    ]

let test_horizon_fixed_and_mixing () =
  let g = Harness.Experiment.build_graph (Harness.Experiment.Complete 8) in
  let init = Core.Loads.point_mass ~n:8 ~total:80 in
  check_int "fixed" 42
    (Harness.Experiment.horizon_steps ~graph:g ~self_loops:7 ~init
       (Harness.Experiment.Fixed_steps 42));
  let t =
    Harness.Experiment.horizon_steps ~graph:g ~self_loops:7 ~init
      (Harness.Experiment.Mixing_multiple 4.0)
  in
  check_bool "mixing positive" true (t >= 1 && t < 1000)

let test_horizon_continuous () =
  let g = Harness.Experiment.build_graph (Harness.Experiment.Complete 8) in
  let init = Core.Loads.point_mass ~n:8 ~total:800 in
  let t =
    Harness.Experiment.horizon_steps ~graph:g ~self_loops:7 ~init
      (Harness.Experiment.Continuous_multiple 2.0)
  in
  check_bool "continuous positive" true (t >= 2 && t < 1000)

let test_run_end_to_end () =
  let outcome =
    Harness.Experiment.run ~audit:true ~target:14
      ~graph:(Harness.Experiment.Torus2d 4)
      ~algo:(Harness.Experiment.Rotor_router { self_loops = 4 })
      ~init:(Harness.Experiment.Point_mass 640)
      ~horizon:(Harness.Experiment.Mixing_multiple 4.0)
      ()
  in
  check_int "n" 16 outcome.Harness.Experiment.n;
  check_int "initial discrepancy" 640 outcome.Harness.Experiment.initial_discrepancy;
  check_bool "gap recorded" true (outcome.Harness.Experiment.gap > 0.0);
  check_bool "final small" true (outcome.Harness.Experiment.final_discrepancy < 100);
  check_bool "fairness present" true (outcome.Harness.Experiment.fairness <> None);
  (match outcome.Harness.Experiment.fairness with
  | Some rep -> check_bool "delta ≤ 1" true (rep.Core.Fairness.cumulative_delta <= 1)
  | None -> ());
  check_bool "ran to horizon" true
    (outcome.Harness.Experiment.steps = outcome.Harness.Experiment.horizon)

let test_run_records_time_to_target () =
  let outcome =
    Harness.Experiment.run ~target:20
      ~graph:(Harness.Experiment.Complete 8)
      ~algo:(Harness.Experiment.Rotor_router { self_loops = 7 })
      ~init:(Harness.Experiment.Point_mass 800)
      ~horizon:(Harness.Experiment.Fixed_steps 500)
      ()
  in
  match outcome.Harness.Experiment.time_to_target with
  | None -> Alcotest.fail "K8 should hit 20 quickly"
  | Some t -> check_bool "positive hit time" true (t > 0 && t < 500)

let () =
  Alcotest.run "harness"
    [
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "median/percentile" `Quick test_median_percentile;
          Alcotest.test_case "empty samples rejected" `Quick
            test_empty_samples_rejected;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "power law fit" `Quick test_power_law_fit;
          Alcotest.test_case "power law rejects" `Quick test_power_law_rejects_nonpositive;
          Alcotest.test_case "correlation" `Quick test_correlation;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "ragged rejected" `Quick test_table_rejects_ragged;
          Alcotest.test_case "formatters" `Quick test_table_formatters;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "file roundtrip" `Quick test_csv_roundtrip_file;
        ] );
      ( "experiment registry",
        [
          Alcotest.test_case "graph specs" `Quick test_graph_specs_build;
          Alcotest.test_case "init specs" `Quick test_init_specs_build;
          Alcotest.test_case "algo specs" `Quick test_algo_specs_build;
          Alcotest.test_case "horizons" `Quick test_horizon_fixed_and_mixing;
          Alcotest.test_case "continuous horizon" `Quick test_horizon_continuous;
          Alcotest.test_case "end to end" `Quick test_run_end_to_end;
          Alcotest.test_case "time to target" `Quick test_run_records_time_to_target;
        ] );
    ]
