(* Tests for the synchronous balancing engine: conservation, token
   movement semantics, series sampling, early stop, hooks, and invariant
   enforcement. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A trivial balancer that keeps everything on its first self-loop. *)
let keep_all g ~self_loops =
  let d = Graphs.Graph.degree g in
  {
    Core.Balancer.name = "keep-all";
    degree = d;
    self_loops;
    props = Core.Balancer.paper_stateless;
    persist = None;
    assign =
      (fun ~step:_ ~node:_ ~load ~ports ->
        Array.fill ports 0 (d + self_loops) 0;
        ports.(d) <- load);
  }

(* Sends its whole load along original port 0. *)
let push_port0 g ~self_loops =
  let d = Graphs.Graph.degree g in
  {
    Core.Balancer.name = "push-port0";
    degree = d;
    self_loops;
    props = Core.Balancer.paper_stateless;
    persist = None;
    assign =
      (fun ~step:_ ~node:_ ~load ~ports ->
        Array.fill ports 0 (d + self_loops) 0;
        ports.(0) <- load);
  }

(* A deliberately broken balancer: loses one token when it has any. *)
let leaky g ~self_loops =
  let d = Graphs.Graph.degree g in
  {
    Core.Balancer.name = "leaky";
    degree = d;
    self_loops;
    props = Core.Balancer.paper_stateless;
    persist = None;
    assign =
      (fun ~step:_ ~node:_ ~load ~ports ->
        Array.fill ports 0 (d + self_loops) 0;
        ports.(d) <- (if load > 0 then load - 1 else 0));
  }

(* Sends -1 on an original edge. *)
let negative_sender g ~self_loops =
  let d = Graphs.Graph.degree g in
  {
    Core.Balancer.name = "negative-sender";
    degree = d;
    self_loops;
    props = Core.Balancer.paper_stateless;
    persist = None;
    assign =
      (fun ~step:_ ~node:_ ~load ~ports ->
        Array.fill ports 0 (d + self_loops) 0;
        ports.(0) <- -1;
        ports.(d) <- load + 1);
  }

let test_keep_all_is_identity () =
  let g = Graphs.Gen.cycle 5 in
  let init = [| 5; 0; 3; 1; 0 |] in
  let r =
    Core.Engine.run ~graph:g ~balancer:(keep_all g ~self_loops:2) ~init ~steps:7 ()
  in
  Alcotest.(check (array int)) "loads unchanged" init r.Core.Engine.final_loads;
  check_int "steps" 7 r.Core.Engine.steps_run

let test_push_port0_moves_tokens () =
  (* On the cycle built by Gen.cycle, port 0 of node 0 points at node 1;
     verify tokens actually travel along edges. *)
  let g = Graphs.Gen.cycle 4 in
  let init = [| 8; 0; 0; 0 |] in
  let r =
    Core.Engine.run ~graph:g ~balancer:(push_port0 g ~self_loops:1) ~init ~steps:1 ()
  in
  let target = Graphs.Graph.neighbor g 0 0 in
  check_int "tokens arrived" 8 r.Core.Engine.final_loads.(target);
  check_int "total conserved" 8 (Core.Loads.total r.Core.Engine.final_loads)

let test_total_conserved_many_steps () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:4321 in
  let bal = Core.Rotor_router.make g ~self_loops:4 in
  let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:100 () in
  check_int "mass conserved" 4321 (Core.Loads.total r.Core.Engine.final_loads)

let test_conservation_enforced () =
  let g = Graphs.Gen.cycle 4 in
  let init = [| 4; 4; 4; 4 |] in
  check_bool "leak detected" true
    (try
       ignore
         (Core.Engine.run ~graph:g ~balancer:(leaky g ~self_loops:1) ~init ~steps:1 ());
       false
     with Core.Engine.Invariant_violation _ -> true)

let test_negative_send_enforced () =
  let g = Graphs.Gen.cycle 4 in
  let init = [| 1; 1; 1; 1 |] in
  check_bool "negative send detected" true
    (try
       ignore
         (Core.Engine.run ~graph:g ~balancer:(negative_sender g ~self_loops:1) ~init
            ~steps:1 ());
       false
     with Core.Engine.Invariant_violation _ -> true)

let test_series_sampling () =
  let g = Graphs.Gen.cycle 4 in
  let init = [| 12; 0; 0; 0 |] in
  let r =
    Core.Engine.run ~sample_every:3 ~graph:g
      ~balancer:(keep_all g ~self_loops:1)
      ~init ~steps:9 ()
  in
  let steps = Array.map fst r.Core.Engine.series in
  Alcotest.(check (array int)) "sampled steps" [| 0; 3; 6; 9 |] steps;
  Array.iter (fun (_, d) -> check_int "static discrepancy" 12 d) r.Core.Engine.series

let test_zero_steps () =
  let g = Graphs.Gen.cycle 3 in
  let init = [| 1; 2; 3 |] in
  let r =
    Core.Engine.run ~graph:g ~balancer:(keep_all g ~self_loops:1) ~init ~steps:0 ()
  in
  check_int "no steps" 0 r.Core.Engine.steps_run;
  Alcotest.(check (array int)) "untouched" init r.Core.Engine.final_loads

let test_stop_at_discrepancy () =
  let g = Graphs.Gen.complete 8 in
  let init = Core.Loads.point_mass ~n:8 ~total:800 in
  let bal = Core.Rotor_router.make g ~self_loops:7 in
  let r =
    Core.Engine.run ~stop_at_discrepancy:20 ~graph:g ~balancer:bal ~init ~steps:10_000 ()
  in
  (match r.Core.Engine.reached_target with
  | None -> Alcotest.fail "target never reached on K8"
  | Some t -> check_bool "stopped early" true (t < 10_000 && r.Core.Engine.steps_run <= t + 1));
  check_bool "final below target" true
    (Core.Loads.discrepancy r.Core.Engine.final_loads <= 20)

let test_hook_called_every_step () =
  let g = Graphs.Gen.cycle 4 in
  let init = [| 4; 0; 0; 0 |] in
  let calls = ref [] in
  let hook t loads = calls := (t, Core.Loads.total loads) :: !calls in
  ignore
    (Core.Engine.run ~hook ~graph:g ~balancer:(keep_all g ~self_loops:1) ~init ~steps:5 ());
  Alcotest.(check (list (pair int int)))
    "hook trace"
    [ (1, 4); (2, 4); (3, 4); (4, 4); (5, 4) ]
    (List.rev !calls)

let test_min_load_seen () =
  let g = Graphs.Gen.cycle 4 in
  let init = [| 4; 0; 0; 0 |] in
  let r =
    Core.Engine.run ~graph:g ~balancer:(keep_all g ~self_loops:1) ~init ~steps:2 ()
  in
  check_int "min load" 0 r.Core.Engine.min_load_seen

let test_degree_mismatch_rejected () =
  let g4 = Graphs.Gen.cycle 4 in
  let g_k5 = Graphs.Gen.complete 5 in
  let bal = Core.Rotor_router.make g_k5 ~self_loops:4 in
  check_bool "degree mismatch" true
    (try
       ignore (Core.Engine.run ~graph:g4 ~balancer:bal ~init:[| 0; 0; 0; 0 |] ~steps:1 ());
       false
     with Invalid_argument _ -> true)

let test_audit_attached () =
  let g = Graphs.Gen.cycle 4 in
  let init = [| 9; 1; 3; 3 |] in
  let bal = Core.Send_floor.make g ~self_loops:2 in
  let r = Core.Engine.run ~audit:true ~graph:g ~balancer:bal ~init ~steps:10 () in
  match r.Core.Engine.fairness with
  | None -> Alcotest.fail "audit requested but no report"
  | Some rep -> check_int "observations" (4 * 10) rep.Core.Fairness.observations

let prop_conservation_under_rotor_router =
  QCheck.Test.make ~name:"engine conserves mass under rotor-router" ~count:50
    QCheck.(triple (int_range 3 20) (int_range 0 4) (int_range 0 500))
    (fun (n, self_loops, total) ->
      let g = Graphs.Gen.cycle n in
      let init = Core.Loads.point_mass ~n ~total in
      let bal = Core.Rotor_router.make g ~self_loops in
      let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:20 () in
      Core.Loads.total r.Core.Engine.final_loads = total)

let prop_discrepancy_series_starts_at_initial =
  QCheck.Test.make ~name:"series starts with initial discrepancy" ~count:50
    QCheck.(pair (int_range 3 15) (int_range 0 200))
    (fun (n, total) ->
      let g = Graphs.Gen.cycle n in
      let init = Core.Loads.point_mass ~n ~total in
      let bal = Core.Send_floor.make g ~self_loops:2 in
      let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:5 () in
      Array.length r.Core.Engine.series > 0 && r.Core.Engine.series.(0) = (0, total))

let () =
  Alcotest.run "engine"
    [
      ( "semantics",
        [
          Alcotest.test_case "keep-all identity" `Quick test_keep_all_is_identity;
          Alcotest.test_case "tokens move along edges" `Quick test_push_port0_moves_tokens;
          Alcotest.test_case "mass conserved" `Quick test_total_conserved_many_steps;
          Alcotest.test_case "zero steps" `Quick test_zero_steps;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "conservation enforced" `Quick test_conservation_enforced;
          Alcotest.test_case "negative send enforced" `Quick test_negative_send_enforced;
          Alcotest.test_case "degree mismatch" `Quick test_degree_mismatch_rejected;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "series sampling" `Quick test_series_sampling;
          Alcotest.test_case "stop at discrepancy" `Quick test_stop_at_discrepancy;
          Alcotest.test_case "hook" `Quick test_hook_called_every_step;
          Alcotest.test_case "min load seen" `Quick test_min_load_seen;
          Alcotest.test_case "audit attached" `Quick test_audit_attached;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_conservation_under_rotor_router;
          QCheck_alcotest.to_alcotest prop_discrepancy_series_starts_at_initial;
        ] );
    ]
