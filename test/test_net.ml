(* Tests for the unreliable-network layer: channel faults, the
   exactly-once protocol, and the async engine's equivalence to the
   synchronous core on a reliable network. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Reliable network ≡ Core.Engine, bit for bit                         *)
(* ------------------------------------------------------------------ *)

(* Fresh balancer instances per run: stateful balancers (rotor pointers)
   must not leak state between the reference and the network run. *)
let equivalence_cases =
  [
    ("cycle(17)", fun () -> Graphs.Gen.cycle 17);
    ("torus(6x6)", fun () -> Graphs.Gen.torus [ 6; 6 ]);
    ("hypercube(5)", fun () -> Graphs.Gen.hypercube 5);
    ("rand-reg(24,4)", fun () -> Graphs.Gen.random_regular (Prng.Splitmix.create 3) ~n:24 ~d:4);
  ]

let balancers g =
  let d = Graphs.Graph.degree g in
  [
    (fun () -> Core.Rotor_router.make g ~self_loops:d);
    (fun () -> Core.Rotor_router_star.make g);
    (fun () -> Core.Send_floor.make g ~self_loops:1);
    (fun () -> Core.Send_round.make g ~self_loops:(2 * d));
  ]

let test_reliable_equivalence () =
  List.iter
    (fun (label, mk_graph) ->
      let g = mk_graph () in
      let n = Graphs.Graph.n g in
      let init = Core.Loads.point_mass ~n ~total:(13 * n) in
      List.iter
        (fun make_balancer ->
          let reference =
            Core.Engine.run ~graph:g ~balancer:(make_balancer ()) ~init ~steps:60 ()
          in
          let report =
            Net.Async_engine.run ~graph:g ~balancer:(make_balancer ()) ~init
              ~steps:60 ()
          in
          let r = report.Net.Async_engine.result in
          Alcotest.(check (array int))
            (label ^ ": final loads bit-identical")
            reference.Core.Engine.final_loads r.Core.Engine.final_loads;
          Alcotest.(check (array (pair int int)))
            (label ^ ": series bit-identical")
            reference.Core.Engine.series r.Core.Engine.series;
          check_int (label ^ ": min load") reference.Core.Engine.min_load_seen
            r.Core.Engine.min_load_seen;
          check_int (label ^ ": no drain needed") 0
            report.Net.Async_engine.drain_rounds;
          check_int (label ^ ": nothing degraded") 0
            report.Net.Async_engine.degraded_rounds;
          check_bool (label ^ ": conserved") true
            (Net.Async_engine.conserved report))
        (balancers g))
    equivalence_cases

(* ------------------------------------------------------------------ *)
(* Protocol guarantees                                                 *)
(* ------------------------------------------------------------------ *)

let lossy_config ?(drop = 0.0) ?(dup = 0.0) ?(reorder = 0.0) ?(delay = 0)
    ?(staleness = 0) ?(seed = 11) () =
  {
    Net.Async_engine.default_config with
    Net.Async_engine.channel = { Net.Channel.drop; dup; reorder; delay };
    staleness;
    seed;
  }

let test_exactly_once_under_dup_and_reorder () =
  (* Duplication and reordering but no loss: every token must be applied
     exactly once, so the drained run conserves and the receiver
     discards every duplicate copy. *)
  let g = Graphs.Gen.torus [ 6; 6 ] in
  let n = 36 in
  let init = Core.Loads.point_mass ~n ~total:720 in
  let report =
    Net.Async_engine.run
      ~config:(lossy_config ~dup:0.3 ~reorder:0.3 ~delay:2 ~staleness:2 ())
      ~graph:g
      ~balancer:(Core.Send_floor.make g ~self_loops:1)
      ~init ~steps:50 ()
  in
  check_bool "drained" true report.Net.Async_engine.drained;
  check_bool "conserved" true (Net.Async_engine.conserved report);
  check_int "total preserved" 720 report.Net.Async_engine.final_total;
  let c = report.Net.Async_engine.channel_stats in
  let p = report.Net.Async_engine.protocol_stats in
  check_bool "channel did duplicate" true (c.Net.Channel.duplicated > 0);
  check_bool "receiver discarded duplicates" true
    (p.Net.Protocol.duplicates_discarded > 0);
  check_bool "reordering was seen" true (p.Net.Protocol.out_of_order > 0)

let test_ledger_exact_under_drops_and_outage () =
  (* Heavy loss plus a scheduled outage: retransmission must recover
     every dropped token; the watchdog audits Σ loads + in-flight at
     every round, so a single lost token fails the run loudly. *)
  let g = Graphs.Gen.hypercube 5 in
  let n = 32 in
  let init = Core.Loads.point_mass ~n ~total:960 in
  let plan =
    [
      { Faults.Schedule.step = 10;
        event = Faults.Schedule.Edge_outage { node = 0; port = 1; last_step = 25 } };
      { Faults.Schedule.step = 12;
        event = Faults.Schedule.Edge_outage { node = 7; port = 0; last_step = 20 } };
    ]
  in
  let report =
    Net.Async_engine.run
      ~config:(lossy_config ~drop:0.25 ~staleness:1 ())
      ~plan ~graph:g
      ~balancer:(Core.Rotor_router.make g ~self_loops:5)
      ~init ~steps:60 ()
  in
  check_bool "drained" true report.Net.Async_engine.drained;
  check_bool "conserved" true (Net.Async_engine.conserved report);
  let c = report.Net.Async_engine.channel_stats in
  check_bool "drops happened" true (c.Net.Channel.dropped > 0);
  check_bool "outage dropped traffic" true (c.Net.Channel.outage_dropped > 0);
  check_bool "retransmissions recovered them" true
    (report.Net.Async_engine.protocol_stats.Net.Protocol.retransmissions
     >= c.Net.Channel.dropped)

let run_lossy_with_trace seed =
  let g = Graphs.Gen.torus [ 5; 5 ] in
  let init = Core.Loads.point_mass ~n:25 ~total:500 in
  let events = ref [] in
  let report =
    Net.Async_engine.run
      ~config:(lossy_config ~drop:0.15 ~dup:0.1 ~reorder:0.2 ~delay:3 ~staleness:2 ~seed ())
      ~on_message:(fun e -> events := e :: !events)
      ~graph:g
      ~balancer:(Core.Rotor_router.make g ~self_loops:4)
      ~init ~steps:40 ()
  in
  (report, List.rev !events)

let test_lossy_replay_is_deterministic () =
  let r1, ev1 = run_lossy_with_trace 77 in
  let r2, ev2 = run_lossy_with_trace 77 in
  Alcotest.(check (array int))
    "identical final loads" r1.Net.Async_engine.result.Core.Engine.final_loads
    r2.Net.Async_engine.result.Core.Engine.final_loads;
  check_int "identical message streams" (List.length ev1) (List.length ev2);
  List.iter2
    (fun (a : Trace.message_event) b ->
      check_bool "event equal" true (a = b))
    ev1 ev2;
  check_int "identical retransmission counts"
    r1.Net.Async_engine.protocol_stats.Net.Protocol.retransmissions
    r2.Net.Async_engine.protocol_stats.Net.Protocol.retransmissions;
  (* A different seed must produce a different fault pattern (the odds
     of a collision on thousands of packets are negligible). *)
  let r3, _ = run_lossy_with_trace 78 in
  check_bool "different seed differs" true
    (r1.Net.Async_engine.channel_stats.Net.Channel.dropped
     <> r3.Net.Async_engine.channel_stats.Net.Channel.dropped
    || r1.Net.Async_engine.result.Core.Engine.final_loads
       <> r3.Net.Async_engine.result.Core.Engine.final_loads)

let test_fixed_vs_exponential_backoff () =
  let run backoff =
    let g = Graphs.Gen.cycle 20 in
    let init = Core.Loads.point_mass ~n:20 ~total:400 in
    let config =
      {
        (lossy_config ~drop:0.3 ~seed:5 ()) with
        Net.Async_engine.protocol =
          { Net.Protocol.timeout = 2; backoff; cap = 16 };
      }
    in
    Net.Async_engine.run ~config ~graph:g
      ~balancer:(Core.Send_floor.make g ~self_loops:1)
      ~init ~steps:40 ()
  in
  let fixed = run Net.Protocol.Fixed in
  let exp = run Net.Protocol.Exponential in
  check_bool "fixed drains" true fixed.Net.Async_engine.drained;
  check_bool "exponential drains" true exp.Net.Async_engine.drained;
  check_bool "both conserve" true
    (Net.Async_engine.conserved fixed && Net.Async_engine.conserved exp)

let test_staleness_gates_balancing () =
  (* With σ = 0 and real delays, nodes waiting on in-flight messages
     must either degrade (balance on held load) or stall. *)
  let g = Graphs.Gen.torus [ 5; 5 ] in
  let init = Core.Loads.point_mass ~n:25 ~total:500 in
  let run degrade =
    Net.Async_engine.run
      ~config:
        { (lossy_config ~delay:3 ~seed:4 ()) with Net.Async_engine.degrade = degrade }
      ~graph:g
      ~balancer:(Core.Send_floor.make g ~self_loops:1)
      ~init ~steps:30 ()
  in
  let degraded = run true in
  check_bool "degrade mode balances on stale info" true
    (degraded.Net.Async_engine.degraded_rounds > 0);
  check_int "degrade mode never stalls" 0 degraded.Net.Async_engine.stalled_rounds;
  let stalled = run false in
  check_bool "strict mode stalls instead" true
    (stalled.Net.Async_engine.stalled_rounds > 0);
  check_int "strict mode never degrades" 0 stalled.Net.Async_engine.degraded_rounds;
  check_bool "both conserve" true
    (Net.Async_engine.conserved degraded && Net.Async_engine.conserved stalled)

let test_invalid_configs_rejected () =
  let g = Graphs.Gen.cycle 8 in
  let init = Core.Loads.flat ~n:8 ~value:4 in
  let balancer () = Core.Send_floor.make g ~self_loops:1 in
  let expect_invalid label config =
    match
      Net.Async_engine.run ~config ~graph:g ~balancer:(balancer ()) ~init
        ~steps:5 ()
    with
    | _ -> Alcotest.fail (label ^ ": accepted")
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "drop = 1" (lossy_config ~drop:1.0 ());
  expect_invalid "negative delay" (lossy_config ~delay:(-1) ());
  expect_invalid "negative staleness"
    { Net.Async_engine.default_config with Net.Async_engine.staleness = -1 };
  expect_invalid "zero timeout"
    {
      Net.Async_engine.default_config with
      Net.Async_engine.protocol =
        { Net.Protocol.timeout = 0; backoff = Net.Protocol.Fixed; cap = 4 };
    }

(* ------------------------------------------------------------------ *)
(* Property: conservation for every balancer under random faults       *)
(* ------------------------------------------------------------------ *)

let algo_specs d =
  [
    Harness.Experiment.Rotor_router { self_loops = d };
    Harness.Experiment.Rotor_router_star;
    Harness.Experiment.Send_floor { self_loops = 1 };
    Harness.Experiment.Send_round { self_loops = 2 * d };
    Harness.Experiment.Mimic { self_loops = d };
    Harness.Experiment.Random_extra { self_loops = d; seed = 13 };
    Harness.Experiment.Random_rounding { self_loops = d; seed = 13 };
  ]

let prop_retx_delay_backoff =
  (* retx_delay is the single source of truth for ARQ backoff (simulated
     rounds in Net.Protocol, real-time seconds in the dist runtime), so
     pin down its shape: monotone non-decreasing in the retry count,
     never below the base timeout, never above the cap (once the cap
     dominates the base), and a pure function of its arguments. *)
  QCheck.Test.make ~name:"retx_delay monotone, capped, deterministic" ~count:200
    QCheck.(triple (int_range 1 64) (int_range 1 1024) bool)
    (fun (timeout, cap_extra, exp) ->
      let cap = timeout + cap_extra in
      let config =
        {
          Net.Protocol.timeout;
          backoff = (if exp then Net.Protocol.Exponential else Net.Protocol.Fixed);
          cap;
        }
      in
      let delays = List.init 64 (fun r -> Net.Protocol.retx_delay config ~retries:r) in
      let monotone =
        List.for_all2
          (fun a b -> a <= b)
          (List.filteri (fun i _ -> i < 63) delays)
          (List.tl delays)
      in
      let bounded = List.for_all (fun d -> d >= timeout && d <= cap) delays in
      let capped = List.nth delays 63 <= cap in
      let deterministic =
        List.for_all2 ( = ) delays
          (List.init 64 (fun r -> Net.Protocol.retx_delay config ~retries:r))
      in
      let fixed_flat =
        exp || List.for_all (fun d -> d = timeout) delays
      in
      monotone && bounded && capped && deterministic && fixed_flat)

let prop_conservation_under_random_faults =
  (* 50 seeded iterations; each picks a graph, a channel-fault config, a
     staleness window, a retry policy and a random fault plan, then runs
     EVERY registered balancer spec through the async engine with the
     watchdog on.  The ledger must balance exactly after the final
     drain, for all of them. *)
  QCheck.Test.make ~name:"ledger exact for every balancer under random faults"
    ~count:50 QCheck.(int_range 0 1_000_000)
    (fun case_seed ->
      let rng = Prng.Splitmix.create case_seed in
      let graph =
        match Prng.Splitmix.int rng 4 with
        | 0 -> Graphs.Gen.cycle (8 + Prng.Splitmix.int rng 12)
        | 1 -> Graphs.Gen.torus [ 5; 5 ]
        | 2 -> Graphs.Gen.hypercube 5
        | _ ->
          Graphs.Gen.random_regular
            (Prng.Splitmix.create (1 + Prng.Splitmix.int rng 100))
            ~n:24 ~d:4
      in
      let n = Graphs.Graph.n graph in
      let d = Graphs.Graph.degree graph in
      let steps = 30 in
      let config =
        {
          Net.Async_engine.channel =
            {
              Net.Channel.drop = 0.4 *. Prng.Splitmix.float rng 1.0;
              dup = 0.2 *. Prng.Splitmix.float rng 1.0;
              reorder = 0.3 *. Prng.Splitmix.float rng 1.0;
              delay = Prng.Splitmix.int rng 4;
            };
          protocol =
            {
              Net.Protocol.timeout = 1 + Prng.Splitmix.int rng 4;
              backoff =
                (if Prng.Splitmix.bool rng then Net.Protocol.Fixed
                 else Net.Protocol.Exponential);
              cap = 32;
            };
          staleness = Prng.Splitmix.int rng 3;
          (* degrade=true: strict stalling can skip a whole round, which
             balancers that demand consecutive steps (mimic) reject. *)
          degrade = true;
          seed = Prng.Splitmix.int rng 1_000_000;
          max_drain_rounds = 100_000;
        }
      in
      let plan =
        List.concat_map
          (fun _ ->
            let step = 1 + Prng.Splitmix.int rng steps in
            match Prng.Splitmix.int rng 3 with
            | 0 ->
              [
                {
                  Faults.Schedule.step;
                  event =
                    Faults.Schedule.Crash
                      {
                        node = Prng.Splitmix.int rng n;
                        state =
                          (if Prng.Splitmix.bool rng then Faults.Schedule.Wipe_state
                           else Faults.Schedule.Keep_state);
                        tokens =
                          (if Prng.Splitmix.bool rng then Faults.Schedule.Lose_tokens
                           else Faults.Schedule.Spill_tokens);
                      };
                };
              ]
            | 1 ->
              [
                {
                  Faults.Schedule.step;
                  event =
                    Faults.Schedule.Load_shock
                      { node = Prng.Splitmix.int rng n;
                        amount = 1 + Prng.Splitmix.int rng 200 };
                };
              ]
            | _ ->
              [
                {
                  Faults.Schedule.step;
                  event =
                    Faults.Schedule.Edge_outage
                      {
                        node = Prng.Splitmix.int rng n;
                        port = Prng.Splitmix.int rng d;
                        last_step = step + Prng.Splitmix.int rng 10;
                      };
                };
              ])
          (List.init (Prng.Splitmix.int rng 4) Fun.id)
      in
      let init = Core.Loads.random_composition rng ~n ~total:(12 * n) in
      List.for_all
        (fun spec ->
          let balancer = Harness.Experiment.build_balancer spec graph ~init in
          let report =
            Net.Async_engine.run ~config ~plan ~graph ~balancer ~init ~steps ()
          in
          report.Net.Async_engine.drained
          && report.Net.Async_engine.final_total
             = report.Net.Async_engine.initial_total
               + report.Net.Async_engine.injected - report.Net.Async_engine.lost)
        (algo_specs d))

let () =
  Alcotest.run "net"
    [
      ( "equivalence",
        [ Alcotest.test_case "reliable ≡ core engine" `Quick test_reliable_equivalence ] );
      ( "protocol",
        [
          Alcotest.test_case "exactly-once under dup+reorder" `Quick
            test_exactly_once_under_dup_and_reorder;
          Alcotest.test_case "ledger exact under drops+outage" `Quick
            test_ledger_exact_under_drops_and_outage;
          Alcotest.test_case "lossy replay deterministic" `Quick
            test_lossy_replay_is_deterministic;
          Alcotest.test_case "fixed vs exponential backoff" `Quick
            test_fixed_vs_exponential_backoff;
          Alcotest.test_case "staleness gates balancing" `Quick
            test_staleness_gates_balancing;
          Alcotest.test_case "invalid configs rejected" `Quick
            test_invalid_configs_rejected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_retx_delay_backoff;
          QCheck_alcotest.to_alcotest prop_conservation_under_random_faults;
        ] );
    ]
