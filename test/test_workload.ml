(* Tests for the open-system traffic engine (lib/workload): seeded
   arrival processes, token lifetimes, steady-state estimators, the
   workload driver's conservation ledger, and the E17 stability sweep. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module A = Workload.Arrival
module L = Workload.Lifetime
module S = Workload.Steady
module E = Workload.Engine

let raises f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* Steady: estimators over synthetic series with known answers.        *)

let test_percentile_known () =
  let sorted = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (S.percentile sorted 0.0);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (S.percentile sorted 25.0);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (S.percentile sorted 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (S.percentile sorted 100.0);
  (* Interpolated rank: p90 of 5 points sits at rank 3.6. *)
  Alcotest.(check (float 1e-9)) "p90" 4.6 (S.percentile sorted 90.0)

let test_percentile_empty_raises () =
  check_bool "empty sample raises" true (raises (fun () -> S.percentile [||] 50.0))

let test_summarize_known () =
  let s = S.summarize [| 4.0; 1.0; 3.0; 2.0 |] in
  check_int "count" 4 s.S.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.S.mean;
  Alcotest.(check (float 1e-9)) "p50" 2.5 s.S.p50;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.S.max

let test_summarize_empty_is_zero () =
  let s = S.summarize [||] in
  check_int "count" 0 s.S.count;
  Alcotest.(check (float 1e-9)) "mean" 0.0 s.S.mean;
  check_bool "equals empty_summary" true (s = S.empty_summary)

let test_warmup_cutoff_step_series () =
  (* A hot prefix followed by a flat tail: MSER must delete exactly the
     prefix — the all-flat suffix has zero standard error. *)
  let xs = Array.init 40 (fun i -> if i < 10 then 50.0 else 0.0) in
  check_int "cutoff at the step" 10 (S.warmup_cutoff xs);
  check_int "short series: no cutoff" 0 (S.warmup_cutoff [| 9.0; 1.0; 1.0 |]);
  check_int "already flat: no cutoff" 0 (S.warmup_cutoff (Array.make 30 2.0))

let test_diverging_detector () =
  check_bool "linear ramp diverges" true
    (S.diverging (Array.init 100 float_of_int));
  check_bool "flat series settles" false (S.diverging (Array.make 100 5.0));
  check_bool "bounded noise settles" false
    (S.diverging (Array.init 100 (fun i -> if i mod 2 = 0 then 3.0 else 5.0)));
  check_bool "under 8 points never diverges" false
    (S.diverging [| 0.0; 10.0; 20.0; 30.0 |])

let test_absorb_time () =
  let series = [| (1, 2); (2, 50); (3, 30); (4, 10); (5, 4); (6, 3) |] in
  (match S.absorb_time ~series ~at:2 ~band:5 with
  | Some k -> check_int "absorbed 3 rounds after the spike" 3 k
  | None -> Alcotest.fail "expected absorption");
  (match S.absorb_time ~series ~at:1 ~band:5 with
  | Some k -> check_int "already within band" 0 k
  | None -> Alcotest.fail "expected Some 0");
  check_bool "never recovers" true (S.absorb_time ~series ~at:2 ~band:1 = None)

(* ------------------------------------------------------------------ *)
(* Arrival: determinism, composition, windows, validation.             *)

let test_arrival_replay_deterministic () =
  let trace seed =
    let arr =
      A.overlay
        (A.poisson ~rng:(Prng.Splitmix.create seed) ~rate:5.0)
        (A.flash_crowd ~at:7 ~size:32 ~node:1 ())
    in
    let loads = Array.make 8 0 in
    let counts = Array.init 20 (fun i -> A.inject arr ~round:(i + 1) ~loads) in
    (counts, loads)
  in
  let a = trace 9 and b = trace 9 and c = trace 10 in
  check_bool "same seed, same counts" true (fst a = fst b);
  Alcotest.(check (array int)) "same seed, same loads" (snd a) (snd b);
  check_bool "different seed, different trace" true (a <> c)

let test_poisson_empirical_rate () =
  (* rate 12 stays in Knuth's direct regime; rate 100 exercises the
     recursive-halving path.  500 draws pin the empirical mean within a
     few percent of λ for any healthy stream. *)
  List.iter
    (fun rate ->
      let arr = A.poisson ~rng:(Prng.Splitmix.create 61) ~rate in
      let loads = Array.make 10 0 in
      let total = ref 0 in
      for r = 1 to 500 do
        total := !total + A.inject arr ~round:r ~loads
      done;
      let mean = float_of_int !total /. 500.0 in
      check_bool
        (Printf.sprintf "empirical mean %.2f near λ=%g" mean rate)
        true
        (Float.abs (mean -. rate) < 0.15 *. rate);
      check_int "loads sum to the injected total" !total
        (Array.fold_left ( + ) 0 loads))
    [ 12.0; 100.0 ]

let test_flash_crowd_window () =
  let arr = A.flash_crowd ~width:2 ~at:5 ~size:10 ~node:3 () in
  let loads = Array.make 6 0 in
  let per_round = Array.init 10 (fun i -> A.inject arr ~round:(i + 1) ~loads) in
  check_int "fires at round 5" 10 per_round.(4);
  check_int "fires at round 6" 10 per_round.(5);
  check_int "quiet everywhere else" 20 (Array.fold_left ( + ) 0 per_round);
  check_int "lands entirely on the target node" 20 loads.(3)

let test_hotspot_targets_max_loaded () =
  let arr = A.hotspot ~per_round:4 in
  let loads = [| 0; 9; 3 |] in
  check_int "injects the batch" 4 (A.inject arr ~round:1 ~loads);
  check_int "onto the max-loaded node" 13 loads.(1);
  (* Ties break to the lowest index. *)
  let tied = [| 5; 5; 0 |] in
  ignore (A.inject arr ~round:2 ~loads:tied);
  check_int "tie goes to node 0" 9 tied.(0)

let test_diurnal_modulation () =
  (* period 4, amplitude 1: factors (1+sin) over one period are
     2, 1, 0, 1 — so a batch of 4 injects 16 tokens per period. *)
  let arr = A.diurnal ~period:4 ~amplitude:1.0 (A.point ~node:0 ~per_round:4) in
  let loads = Array.make 2 0 in
  let total = ref 0 in
  for r = 1 to 4 do
    total := !total + A.inject arr ~round:r ~loads
  done;
  check_int "one period injects batch x period" 16 !total

let test_validate_node_range () =
  let arr = A.point ~node:5 ~per_round:3 in
  (match A.validate arr ~n:4 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted an out-of-range node");
  (match A.validate arr ~n:8 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match A.validate (A.hotspot ~per_round:1) ~n:0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted an empty network")

let test_rejects_bad_specs () =
  let rng () = Prng.Splitmix.create 1 in
  check_bool "negative batch" true
    (raises (fun () -> A.uniform ~rng:(rng ()) ~per_round:(-1)));
  check_bool "negative rate" true
    (raises (fun () -> A.poisson ~rng:(rng ()) ~rate:(-2.0)));
  check_bool "amplitude > 1" true
    (raises (fun () -> A.diurnal ~period:10 ~amplitude:1.5 (A.hotspot ~per_round:1)));
  check_bool "double modulation" true
    (raises (fun () ->
         A.diurnal ~period:5 ~amplitude:0.5
           (A.diurnal ~period:5 ~amplitude:0.5 (A.hotspot ~per_round:1))));
  check_bool "flash crowd before round 1" true
    (raises (fun () -> A.flash_crowd ~at:0 ~size:1 ~node:0 ()));
  check_bool "negative service rate" true (raises (fun () -> L.service ~rate:(-1)));
  check_bool "geometric mean < 1" true
    (raises (fun () -> L.geometric ~rng:(rng ()) ~mean:0.5));
  check_bool "fixed lifetime of 0 rounds" true
    (raises (fun () -> L.fixed ~rng:(rng ()) ~rounds:0));
  check_bool "negative engine rounds" true
    (raises (fun () ->
         E.config ~arrival:(A.hotspot ~per_round:1) ~lifetime:L.immortal
           ~rounds:(-1) ()))

(* ------------------------------------------------------------------ *)
(* Lifetime: capacity caps, calendars, clamping.                       *)

let test_service_caps_per_node () =
  let lt = L.service ~rate:2 in
  let loads = [| 5; 0; 3 |] in
  check_int "departs min(load, rate) per node" 4
    (L.depart lt ~round:1 ~arrivals:0 ~loads);
  check_bool "loads reduced in place" true (loads = [| 3; 0; 1 |]);
  check_int "immortal never departs" 0
    (L.depart L.immortal ~round:1 ~arrivals:0 ~loads)

let test_fixed_lifetime_calendar () =
  (* Lifetime 3: the cohort injected at round r departs at round r+3. *)
  let lt = L.fixed ~rng:(Prng.Splitmix.create 51) ~rounds:3 in
  let loads = [| 10; 0; 0; 0 |] in
  check_int "round 1: nothing due" 0 (L.depart lt ~round:1 ~arrivals:10 ~loads);
  check_int "round 2: nothing due" 0 (L.depart lt ~round:2 ~arrivals:0 ~loads);
  check_int "round 3: nothing due" 0 (L.depart lt ~round:3 ~arrivals:0 ~loads);
  check_int "round 4: the round-1 cohort departs" 10
    (L.depart lt ~round:4 ~arrivals:0 ~loads);
  check_int "fully drained" 0 (Array.fold_left ( + ) 0 loads)

let test_fixed_lifetime_clamps_to_inflight () =
  (* The calendar says 5 are due but only 3 tokens survive (e.g. a crash
     destroyed some): departures clamp to the in-flight total. *)
  let lt = L.fixed ~rng:(Prng.Splitmix.create 52) ~rounds:2 in
  let loads = [| 3 |] in
  check_int "cohort recorded" 0 (L.depart lt ~round:1 ~arrivals:5 ~loads);
  check_int "nothing due yet" 0 (L.depart lt ~round:2 ~arrivals:0 ~loads);
  check_int "clamped to what is present" 3 (L.depart lt ~round:3 ~arrivals:0 ~loads);
  check_int "never negative" 0 loads.(0)

let test_geometric_mean_one_drains () =
  let lt = L.geometric ~rng:(Prng.Splitmix.create 53) ~mean:1.0 in
  let loads = [| 3; 2; 0 |] in
  check_int "probability-1 completion drains everything" 5
    (L.depart lt ~round:1 ~arrivals:0 ~loads);
  check_int "empty" 0 (Array.fold_left ( + ) 0 loads)

let test_uniform_attempts_clamp () =
  let lt = L.uniform_attempts ~rng:(Prng.Splitmix.create 54) ~per_round:100 in
  let loads = Array.make 4 0 in
  check_int "attempts at empty nodes never count" 0
    (L.depart lt ~round:1 ~arrivals:0 ~loads)

(* ------------------------------------------------------------------ *)
(* Engine + Openrun: conservation, replay, probes, warm-up, E17.       *)

let test_engine_rejects_bad_target () =
  let g = Graphs.Gen.cycle 8 in
  let balancer = Core.Send_floor.make g ~self_loops:2 in
  let config =
    E.config ~arrival:(A.point ~node:99 ~per_round:1) ~lifetime:L.immortal
      ~rounds:5 ()
  in
  check_bool "out-of-range arrival target rejected" true
    (raises (fun () ->
         Harness.Openrun.run ~config ~graph:g ~balancer ~init:(Array.make 8 0) ()))

let test_fixed_warmup_window () =
  let g = Graphs.Gen.cycle 12 in
  let balancer = Core.Send_round.make g ~self_loops:2 in
  let config =
    E.config ~warmup:(E.Fixed_warmup 25)
      ~arrival:(A.uniform ~rng:(Prng.Splitmix.create 41) ~per_round:3)
      ~lifetime:(L.service ~rate:1) ~rounds:100 ()
  in
  let r = Harness.Openrun.run ~config ~graph:g ~balancer ~init:(Array.make 12 0) () in
  check_int "warm-up honoured" 25 r.E.warmup_end;
  check_int "steady window = rounds - warm-up" 75 r.E.steady_discrepancy.S.count;
  check_bool "conserved" true r.E.conserved

let test_probes_on_off_bit_identical () =
  let run () =
    let g = Graphs.Gen.torus [ 4; 4 ] in
    let balancer = Core.Send_round.make g ~self_loops:4 in
    let config =
      E.config
        ~arrival:(A.uniform ~rng:(Prng.Splitmix.create 21) ~per_round:6)
        ~lifetime:(L.service ~rate:1) ~rounds:120 ()
    in
    Harness.Openrun.run ~config ~graph:g ~balancer ~init:(Array.make 16 0) ()
  in
  let off = run () in
  Obs.Probe.enable ();
  let on_ = Fun.protect ~finally:Obs.Probe.disable run in
  Alcotest.(check (array int)) "same final loads" off.E.final_loads on_.E.final_loads;
  check_bool "same discrepancy series" true
    (off.E.discrepancy_series = on_.E.discrepancy_series);
  check_bool "same in-flight series" true
    (off.E.inflight_series = on_.E.inflight_series)

let test_flash_crowd_absorbed () =
  (* A 720-token spike at round 40 on a 6x6 torus with system capacity
     36/round against base load 4/round: the backlog drains and the
     discrepancy returns to the Theorem 2.3 band (d·√n = 24). *)
  let g = Graphs.Gen.torus [ 6; 6 ] in
  let balancer = Core.Rotor_router.make g ~self_loops:4 in
  let arrival =
    A.overlay
      (A.uniform ~rng:(Prng.Splitmix.create 31) ~per_round:4)
      (A.flash_crowd ~at:40 ~size:720 ~node:0 ())
  in
  let config = E.config ~arrival ~lifetime:(L.service ~rate:1) ~rounds:400 () in
  let r = Harness.Openrun.run ~config ~graph:g ~balancer ~init:(Array.make 36 0) () in
  check_bool "conserved through the spike" true r.E.conserved;
  match S.absorb_time ~series:r.E.discrepancy_series ~at:40 ~band:24 with
  | Some k ->
    check_bool (Printf.sprintf "absorbed %d rounds after the spike" k) true
      (k < 360)
  | None -> Alcotest.fail "flash crowd never absorbed"

let test_e17_quick_stability_shape () =
  (* The acceptance gate: the quick E17 sweep must reproduce the arXiv
     2302.12201 stability shape — bounded λ-monotone steady discrepancy
     below capacity, detected divergence above. *)
  let points = Harness.Loadsweep.sweep ~quick:true () in
  check_bool "has under- and over-capacity points" true
    (List.exists (fun (p : Harness.Loadsweep.point) -> p.ratio < 1.0) points
    && List.exists (fun (p : Harness.Loadsweep.point) -> p.ratio > 1.0) points);
  check_bool "bounded below capacity" true
    (Harness.Loadsweep.stable_below_capacity points);
  check_bool "diverges above capacity" true
    (Harness.Loadsweep.divergence_detected points);
  check_bool "steady band monotone in λ" true
    (Harness.Loadsweep.monotone_in_lambda points);
  List.iter
    (fun (p : Harness.Loadsweep.point) ->
      check_bool (Printf.sprintf "%s/%s@%.2f conserved" p.graph p.algo p.ratio)
        true p.conserved)
    points

(* ------------------------------------------------------------------ *)
(* Properties.                                                         *)

let balancer_of g ~self_loops = function
  | 0 -> Core.Send_floor.make g ~self_loops
  | 1 -> Core.Send_round.make g ~self_loops
  | _ -> Core.Rotor_router.make g ~self_loops

let arrival_of ~seed ~rate = function
  | 0 -> A.uniform ~rng:(Prng.Splitmix.create seed) ~per_round:rate
  | 1 -> A.poisson ~rng:(Prng.Splitmix.create seed) ~rate:(float_of_int rate)
  | _ -> A.hotspot ~per_round:rate

let prop_conservation_across_families =
  QCheck.Test.make
    ~name:"open-system ledger balances for every balancer x arrival pair"
    ~count:40
    QCheck.(
      quad (int_range 4 12) (int_range 0 15) (int_range 5 60) (int_range 0 8))
    (fun (n, rate, rounds, pick) ->
      let g = Graphs.Gen.cycle n in
      let balancer = balancer_of g ~self_loops:2 (pick mod 3) in
      let seed = (n * 1000) + (rate * 10) + rounds in
      let arrival = arrival_of ~seed ~rate (pick / 3) in
      let lifetime =
        L.uniform_attempts
          ~rng:(Prng.Splitmix.create (seed + 1))
          ~per_round:(rate / 2)
      in
      let config = E.config ~arrival ~lifetime ~rounds () in
      let r = Harness.Openrun.run ~config ~graph:g ~balancer ~init:(Array.make n 1) () in
      let final = Array.fold_left ( + ) 0 r.E.final_loads in
      r.E.conserved
      && final = n + r.E.total_arrivals - r.E.total_departures
      && Array.for_all (fun x -> x >= 0) r.E.final_loads)

let prop_replay_bit_identical =
  QCheck.Test.make ~name:"equal workload seeds replay bit-identically" ~count:20
    QCheck.(triple (int_range 4 10) (int_range 1 12) (int_range 10 80))
    (fun (n, rate, rounds) ->
      let run () =
        let g = Graphs.Gen.cycle n in
        let balancer = Core.Rotor_router.make g ~self_loops:2 in
        let master = Prng.Splitmix.create ((n * 1000) + rate) in
        let arrival =
          A.poisson ~rng:(Prng.Splitmix.split master) ~rate:(float_of_int rate)
        in
        let lifetime = L.geometric ~rng:(Prng.Splitmix.split master) ~mean:4.0 in
        let config = E.config ~arrival ~lifetime ~rounds () in
        Harness.Openrun.run ~config ~graph:g ~balancer ~init:(Array.make n 2) ()
      in
      let a = run () and b = run () in
      a.E.final_loads = b.E.final_loads
      && a.E.discrepancy_series = b.E.discrepancy_series
      && a.E.inflight_series = b.E.inflight_series
      && a.E.total_arrivals = b.E.total_arrivals
      && a.E.total_departures = b.E.total_departures)

let () =
  Alcotest.run "workload"
    [
      ( "steady",
        [
          Alcotest.test_case "percentile: known values" `Quick test_percentile_known;
          Alcotest.test_case "percentile: empty raises" `Quick
            test_percentile_empty_raises;
          Alcotest.test_case "summarize: known values" `Quick test_summarize_known;
          Alcotest.test_case "summarize: empty is zero" `Quick
            test_summarize_empty_is_zero;
          Alcotest.test_case "MSER cutoff on a step series" `Quick
            test_warmup_cutoff_step_series;
          Alcotest.test_case "divergence detector" `Quick test_diverging_detector;
          Alcotest.test_case "absorb time" `Quick test_absorb_time;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "seeded replay is deterministic" `Quick
            test_arrival_replay_deterministic;
          Alcotest.test_case "poisson empirical rate" `Quick
            test_poisson_empirical_rate;
          Alcotest.test_case "flash crowd window" `Quick test_flash_crowd_window;
          Alcotest.test_case "hotspot targets max-loaded" `Quick
            test_hotspot_targets_max_loaded;
          Alcotest.test_case "diurnal modulation" `Quick test_diurnal_modulation;
          Alcotest.test_case "validate node range" `Quick test_validate_node_range;
          Alcotest.test_case "rejects bad specs" `Quick test_rejects_bad_specs;
        ] );
      ( "lifetimes",
        [
          Alcotest.test_case "service caps per node" `Quick test_service_caps_per_node;
          Alcotest.test_case "fixed calendar" `Quick test_fixed_lifetime_calendar;
          Alcotest.test_case "fixed clamps to in-flight" `Quick
            test_fixed_lifetime_clamps_to_inflight;
          Alcotest.test_case "geometric mean-1 drains" `Quick
            test_geometric_mean_one_drains;
          Alcotest.test_case "uniform attempts clamp" `Quick
            test_uniform_attempts_clamp;
        ] );
      ( "engine",
        [
          Alcotest.test_case "rejects bad arrival target" `Quick
            test_engine_rejects_bad_target;
          Alcotest.test_case "fixed warm-up window" `Quick test_fixed_warmup_window;
          Alcotest.test_case "probes on/off bit-identical" `Quick
            test_probes_on_off_bit_identical;
          Alcotest.test_case "flash crowd absorbed" `Quick test_flash_crowd_absorbed;
          Alcotest.test_case "E17 quick stability shape" `Quick
            test_e17_quick_stability_shape;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_conservation_across_families;
          QCheck_alcotest.to_alcotest prop_replay_bit_identical;
        ] );
    ]
