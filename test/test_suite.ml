(* Tests for the experiment suite plumbing (Harness.Suite) and the
   multi-seed replication helper (Harness.Series).

   The cheap lower-bound experiments are executed for real (they're
   milliseconds at quick size and fully deterministic); the expensive
   sweeps are only validated through the registry. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_silenced_stdout f =
  (* The suite prints reports; keep test output clean by diverting. *)
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 devnull Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close devnull)
    f

let run_exp id =
  (* All execution goes through the named registry — the same lookup
     the CLI and the scenario compiler use. *)
  match Harness.Suite.find id with
  | Some e -> e.Harness.Suite.run ~quick:true
  | None -> Alcotest.fail (id ^ " missing from the registry")

let test_registry_complete () =
  check_int "17 experiments" 17 (List.length Harness.Suite.all);
  let ids = List.map (fun e -> e.Harness.Suite.id) Harness.Suite.all in
  List.iteri
    (fun i id -> Alcotest.(check string) "ordered ids" (Printf.sprintf "E%d" (i + 1)) id)
    ids;
  List.iter
    (fun e -> check_bool "has description" true (String.length e.Harness.Suite.reproduces > 0))
    Harness.Suite.all

let test_run_by_id_unknown () =
  match Harness.Suite.run_by_id ~quick:true "E99" with
  | Ok _ -> Alcotest.fail "E99 should not exist"
  | Error msg -> check_bool "lists valid ids" true (String.length msg > 10)

let test_run_by_id_case_insensitive () =
  with_silenced_stdout (fun () ->
      match Harness.Suite.run_by_id ~quick:true "e6" with
      | Ok rows -> check_bool "rows produced" true (List.length rows > 0)
      | Error msg -> Alcotest.fail msg)

let test_e5_rows () =
  with_silenced_stdout (fun () ->
      let rows = run_exp "E5" in
      check_bool "at least one row" true (List.length rows >= 1);
      List.iter
        (fun row ->
          match row with
          | "E5" :: _ :: _ :: _ :: disc :: _ ->
            check_bool "discrepancy parses" true (int_of_string_opt disc <> None)
          | _ -> Alcotest.fail "unexpected row shape")
        rows)

let test_e7_rows_match_formula () =
  with_silenced_stdout (fun () ->
      let rows = run_exp "E7" in
      List.iter
        (fun row ->
          match row with
          | [ "E7"; n; _phi; disc; amp; periodic ] ->
            let n = int_of_string n in
            check_int "disc = 2dφ − 1" (2 * (n - 1) - 1) (int_of_string disc);
            check_int "amp = 2dφ" (2 * (n - 1)) (int_of_string amp);
            Alcotest.(check string) "period 2" "yes" periodic
          | _ -> Alcotest.fail "unexpected row shape")
        rows)

let test_e6_rows_match_formula () =
  with_silenced_stdout (fun () ->
      let rows = run_exp "E6" in
      List.iter
        (fun row ->
          match row with
          | [ "E6"; _n; d; _c; disc; frozen ] ->
            check_int "disc = ⌊d/2⌋ − 1"
              ((int_of_string d / 2) - 1)
              (int_of_string disc);
            Alcotest.(check string) "frozen" "yes" frozen
          | _ -> Alcotest.fail "unexpected row shape")
        rows)

let test_e12_rows_within_bound () =
  with_silenced_stdout (fun () ->
      let rows = run_exp "E12" in
      List.iter
        (fun row ->
          match row with
          | [ "E12"; _g; rotor; _random; bound; _ratio ] ->
            check_bool "rotor cover ≤ 2mD" true
              (int_of_string rotor <= int_of_string bound)
          | _ -> Alcotest.fail "unexpected E12 row shape")
        rows)

let test_e14_rows_all_hold () =
  with_silenced_stdout (fun () ->
      let rows = run_exp "E14" in
      check_bool "several windows" true (List.length rows >= 3);
      List.iter
        (fun row ->
          match row with
          | [ "E14"; _w; _lhs; _rhs; holds ] ->
            Alcotest.(check string) "eq(7) holds" "yes" holds
          | _ -> Alcotest.fail "unexpected E14 row shape")
        rows)

let test_e15_rows_recover_and_conserve () =
  with_silenced_stdout (fun () ->
      let rows = run_exp "E15" in
      (* 3 graphs × 2 algorithms × 4 fault scenarios. *)
      check_int "24 sweep points" 24 (List.length rows);
      List.iter
        (fun row ->
          match row with
          | [ "E15"; _g; _a; _fault; _eps; _pre; _shock; _worst; recovered; conserved ] ->
            check_bool "recovered within band" true
              (recovered <> "never" && int_of_string_opt recovered <> None);
            Alcotest.(check string) "tokens conserved" "yes" conserved
          | _ -> Alcotest.fail "unexpected E15 row shape")
        rows)

(* --- Series --- *)

let test_summarize () =
  let s = Harness.Series.summarize [| 1.0; 2.0; 3.0 |] in
  check_int "n" 3 s.Harness.Series.n;
  Alcotest.(check (float 1e-9)) "mean" 2.0 s.Harness.Series.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Harness.Series.min;
  Alcotest.(check (float 1e-9)) "max" 3.0 s.Harness.Series.max;
  Alcotest.(check (float 1e-9)) "median" 2.0 s.Harness.Series.median

let test_replicate_randomized_baseline () =
  (* Replicate the random-extra discrepancy across seeds: all runs are
     in a sane band, and distinct seeds genuinely differ. *)
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:640 in
  let measure seed =
    let bal = Baselines.Random_extra.make (Prng.Splitmix.create seed) g ~self_loops:4 in
    let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:100 () in
    float_of_int (Core.Loads.discrepancy r.Core.Engine.final_loads)
  in
  let s = Harness.Series.replicate ~seeds:[ 1; 2; 3; 4; 5; 6; 7; 8 ] measure in
  check_int "8 runs" 8 s.Harness.Series.n;
  check_bool "band" true (s.Harness.Series.max <= 40.0 && s.Harness.Series.min >= 0.0);
  check_bool "seeds differ" true (s.Harness.Series.stddev > 0.0)

let test_replicate_deterministic_has_zero_variance () =
  let measure _seed = 42.0 in
  let s = Harness.Series.replicate ~seeds:[ 1; 2; 3 ] measure in
  Alcotest.(check (float 1e-12)) "no variance" 0.0 s.Harness.Series.stddev

let test_sweep () =
  let out = Harness.Series.sweep [ 1; 2; 3 ] (fun x -> x * x) in
  Alcotest.(check (list (pair int int))) "pairs" [ (1, 1); (2, 4); (3, 9) ] out

let test_replicate_empty_rejected () =
  check_bool "empty rejected" true
    (try
       ignore (Harness.Series.replicate ~seeds:[] (fun _ -> 0.0));
       false
     with Invalid_argument _ -> true)

(* --- Parallel --- *)

let test_parallel_map_order () =
  let xs = List.init 37 (fun i -> i) in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * 2) xs)
    (Harness.Parallel.map (fun x -> x * 2) xs)

let test_parallel_map_single_domain () =
  Alcotest.(check (list int)) "degenerate" [ 2; 4 ]
    (Harness.Parallel.map ~domains:1 (fun x -> x * 2) [ 1; 2 ])

let test_parallel_map_empty () =
  Alcotest.(check (list int)) "empty" [] (Harness.Parallel.map (fun x -> x) [])

let test_parallel_exception_propagates () =
  check_bool "raises" true
    (try
       ignore
         (Harness.Parallel.map ~domains:2
            (fun x -> if x = 3 then failwith "boom" else x)
            [ 1; 2; 3; 4 ]);
       false
     with Failure m -> m = "boom")

let test_parallel_matches_sequential_experiment () =
  (* Real workload: discrepancy of random-extra across seeds, computed
     both ways, must agree exactly (everything is seed-deterministic). *)
  let measure seed =
    let g = Graphs.Gen.torus [ 4; 4 ] in
    let init = Core.Loads.point_mass ~n:16 ~total:320 in
    let bal = Baselines.Random_extra.make (Prng.Splitmix.create seed) g ~self_loops:4 in
    let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:60 () in
    float_of_int (Core.Loads.discrepancy r.Core.Engine.final_loads)
  in
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let seq = Harness.Series.replicate ~seeds measure in
  let par = Harness.Parallel.replicate ~seeds measure in
  Alcotest.(check (float 1e-12)) "same mean" seq.Harness.Series.mean par.Harness.Series.mean;
  Alcotest.(check (float 1e-12)) "same stddev" seq.Harness.Series.stddev
    par.Harness.Series.stddev

let () =
  Alcotest.run "suite"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "unknown id" `Quick test_run_by_id_unknown;
          Alcotest.test_case "case insensitive" `Quick test_run_by_id_case_insensitive;
        ] );
      ( "experiment rows",
        [
          Alcotest.test_case "E5 shape" `Quick test_e5_rows;
          Alcotest.test_case "E7 formulas" `Quick test_e7_rows_match_formula;
          Alcotest.test_case "E6 formulas" `Quick test_e6_rows_match_formula;
          Alcotest.test_case "E12 within bound" `Quick test_e12_rows_within_bound;
          Alcotest.test_case "E14 all hold" `Quick test_e14_rows_all_hold;
          Alcotest.test_case "E15 recovery" `Quick test_e15_rows_recover_and_conserve;
        ] );
      ( "series",
        [
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "replicate randomized" `Quick
            test_replicate_randomized_baseline;
          Alcotest.test_case "replicate deterministic" `Quick
            test_replicate_deterministic_has_zero_variance;
          Alcotest.test_case "sweep" `Quick test_sweep;
          Alcotest.test_case "empty rejected" `Quick test_replicate_empty_rejected;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map order" `Quick test_parallel_map_order;
          Alcotest.test_case "single domain" `Quick test_parallel_map_single_domain;
          Alcotest.test_case "empty" `Quick test_parallel_map_empty;
          Alcotest.test_case "exception propagates" `Quick
            test_parallel_exception_propagates;
          Alcotest.test_case "matches sequential" `Quick
            test_parallel_matches_sequential_experiment;
        ] );
    ]
