(* Tests for lib/faults: seeded fault schedules, the invariant
   watchdog, and the fault-injecting engine wrapper —

   - Schedule.parse / spec_to_string round-trip and realize determinism
     (same seed + specs + graph ⇒ identical plans);
   - Watchdog raises structured diagnostics naming step/node/kind;
   - Faults.Engine: replayable (sequential ≡ sharded, run-to-run
     identical), token ledger exact for lose/spill/shock, recovery
     episodes measured, outages conserve mass and end on schedule. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Schedule ---------- *)

let test_parse_roundtrip () =
  let s = "crash:0.1@500:keep:spill; outage:0.25@10+5; shock:64@100:node=3" in
  match Faults.Schedule.parse s with
  | Error m -> Alcotest.fail m
  | Ok specs ->
    check_int "three specs" 3 (List.length specs);
    let printed = String.concat "; " (List.map Faults.Schedule.spec_to_string specs) in
    (match Faults.Schedule.parse printed with
    | Ok specs' -> check_bool "round-trip" true (specs = specs')
    | Error m -> Alcotest.fail ("reparse failed: " ^ m))

let test_parse_defaults_and_errors () =
  (match Faults.Schedule.parse "crash:0.5@3" with
  | Ok [ Faults.Schedule.Crash_fraction { state; tokens; _ } ] ->
    check_bool "default wipe" true (state = Faults.Schedule.Wipe_state);
    check_bool "default lose" true (tokens = Faults.Schedule.Lose_tokens)
  | _ -> Alcotest.fail "crash defaults");
  List.iter
    (fun bad ->
      match Faults.Schedule.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted bad spec: " ^ bad))
    [ ""; "crash:half@3"; "outage:0.1@5"; "shock:10"; "frobnicate:1@2";
      "crash:0.1@3:explode" ]

let test_realize_deterministic () =
  let g = Graphs.Gen.torus [ 6; 6 ] in
  let specs =
    match Faults.Schedule.parse "crash:0.25@5; outage:0.3@2+4; shock:100@8" with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let p1 = Faults.Schedule.realize ~seed:42 ~graph:g specs in
  let p2 = Faults.Schedule.realize ~seed:42 ~graph:g specs in
  let p3 = Faults.Schedule.realize ~seed:43 ~graph:g specs in
  check_bool "same seed, same plan" true (p1 = p2);
  check_bool "different seed, different plan" true (p1 <> p3);
  (* 25% of 36 nodes = 9 crash events. *)
  let crashes =
    List.length
      (List.filter
         (fun t ->
           match t.Faults.Schedule.event with
           | Faults.Schedule.Crash _ -> true
           | _ -> false)
         p1)
  in
  check_int "crash count" 9 crashes;
  (* Outages come in matched directed pairs: an even count, all within
     the declared window. *)
  let outages =
    List.filter_map
      (fun t ->
        match t.Faults.Schedule.event with
        | Faults.Schedule.Edge_outage { last_step; _ } ->
          check_int "outage start" 2 t.Faults.Schedule.step;
          check_int "outage end" 5 last_step;
          Some ()
        | _ -> None)
      p1
  in
  check_int "paired directed outages" 0 (List.length outages mod 2);
  (* Plan is sorted by step. *)
  let steps = List.map (fun t -> t.Faults.Schedule.step) p1 in
  check_bool "sorted" true (steps = List.sort compare steps)

(* ---------- Watchdog ---------- *)

let test_watchdog_conservation () =
  let w =
    Faults.Watchdog.create ~name:"test" ~never_negative:false ~expected_total:10 ()
  in
  Faults.Watchdog.check w ~step:1 ~loads:[| 4; 6 |];
  (match Faults.Watchdog.check w ~step:2 ~loads:[| 4; 7 |] with
  | () -> Alcotest.fail "drift not caught"
  | exception Faults.Watchdog.Invariant_violation d ->
    check_int "step named" 2 d.Faults.Watchdog.step;
    check_bool "kind" true (d.Faults.Watchdog.kind = Faults.Watchdog.Conservation));
  Faults.Watchdog.adjust_expected w 1;
  Faults.Watchdog.check w ~step:3 ~loads:[| 4; 7 |];
  check_int "checks counted" 3 (Faults.Watchdog.checks w)

let test_watchdog_negative_and_range () =
  let w =
    Faults.Watchdog.create ~name:"nl" ~never_negative:true ~expected_total:0 ()
  in
  (match Faults.Watchdog.check w ~step:5 ~loads:[| 3; -3 |] with
  | () -> Alcotest.fail "negative load not caught"
  | exception Faults.Watchdog.Invariant_violation d ->
    check_bool "kind" true (d.Faults.Watchdog.kind = Faults.Watchdog.Negative_load);
    check_bool "node named" true (d.Faults.Watchdog.node = Some 1));
  let state = [| 0; 3; 7 |] in
  let w =
    Faults.Watchdog.create ~state_range:(0, 4)
      ~state_sources:[ (fun () -> state) ]
      ~name:"rotor" ~never_negative:false ~expected_total:6 ()
  in
  match Faults.Watchdog.check w ~step:9 ~loads:[| 2; 2; 2 |] with
  | () -> Alcotest.fail "out-of-range state not caught"
  | exception Faults.Watchdog.Invariant_violation d ->
    check_bool "kind" true (d.Faults.Watchdog.kind = Faults.Watchdog.State_range);
    check_bool "node named" true (d.Faults.Watchdog.node = Some 2)

(* ---------- Engine ---------- *)

let episode_key (e : Faults.Engine.episode) =
  ( e.Faults.Engine.step,
    e.Faults.Engine.events,
    e.Faults.Engine.pre_discrepancy,
    e.Faults.Engine.shock_discrepancy,
    e.Faults.Engine.worst_discrepancy,
    e.Faults.Engine.recovered_at )

let run_faulted ?mode ?eps ~graph ~plan ~init ~steps () =
  Faults.Engine.run ?mode ?eps ~graph
    ~make_balancer:(fun () ->
      Core.Rotor_router.make graph ~self_loops:(Graphs.Graph.degree graph))
    ~plan ~init ~steps ()

let test_replayable_and_shard_equivalent () =
  let g = Graphs.Gen.torus [ 5; 5 ] in
  let init = Core.Loads.point_mass ~n:25 ~total:2500 in
  let specs =
    match Faults.Schedule.parse "crash:0.2@10:wipe:lose; outage:0.2@20+6; shock:80@35" with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let plan = Faults.Schedule.realize ~seed:7 ~graph:g specs in
  let r1 = run_faulted ~graph:g ~plan ~init ~steps:60 () in
  let r2 = run_faulted ~graph:g ~plan ~init ~steps:60 () in
  let shard mode_shards =
    run_faulted
      ~mode:
        (Faults.Engine.Sharded
           { shards = mode_shards; strategy = Shard.Partition.Contiguous })
      ~graph:g ~plan ~init ~steps:60 ()
  in
  let r4 = shard 4 in
  let r3 = shard 3 in
  Alcotest.(check (array int))
    "run-to-run final loads" r1.Faults.Engine.result.Core.Engine.final_loads
    r2.Faults.Engine.result.Core.Engine.final_loads;
  List.iter
    (fun (label, r) ->
      Alcotest.(check (array int))
        (label ^ ": final loads") r1.Faults.Engine.result.Core.Engine.final_loads
        r.Faults.Engine.result.Core.Engine.final_loads;
      check_bool (label ^ ": episodes") true
        (List.map episode_key r1.Faults.Engine.episodes
        = List.map episode_key r.Faults.Engine.episodes);
      check_int (label ^ ": lost") r1.Faults.Engine.lost r.Faults.Engine.lost)
    [ ("rerun", r2); ("4 shards", r4); ("3 shards", r3) ]

let test_ledger_exact () =
  let g = Graphs.Gen.cycle 16 in
  let init = Array.make 16 10 in
  let plan =
    Faults.Schedule.
      [
        { step = 3; event = Crash { node = 2; state = Keep_state; tokens = Lose_tokens } };
        { step = 3; event = Crash { node = 9; state = Keep_state; tokens = Spill_tokens } };
        { step = 6; event = Load_shock { node = 0; amount = 37 } };
      ]
  in
  let r = run_faulted ~graph:g ~plan ~init ~steps:20 () in
  check_int "lost = node 2's 10 tokens" 10 r.Faults.Engine.lost;
  check_int "spilled = node 9's 10 tokens" 10 r.Faults.Engine.spilled;
  check_int "injected" 37 r.Faults.Engine.injected;
  check_int "initial total" 160 r.Faults.Engine.initial_total;
  check_int "final = initial + injected - lost" (160 + 37 - 10)
    r.Faults.Engine.final_total;
  check_int "watchdog ran every step" 20 r.Faults.Engine.watchdog_checks;
  check_int "two episodes" 2 (List.length r.Faults.Engine.episodes)

let test_recovery_measured () =
  let g = Graphs.Gen.hypercube 4 in
  let n = 16 in
  (* Start uniform, crash one heavy corner: recovery back to a flat
     profile is fast on the hypercube. *)
  let init = Array.make n 50 in
  let plan =
    Faults.Schedule.
      [ { step = 5; event = Crash { node = 0; state = Wipe_state; tokens = Lose_tokens } } ]
  in
  let r = run_faulted ~graph:g ~plan ~init ~steps:200 () in
  (match r.Faults.Engine.episodes with
  | [ e ] ->
    (* Rotor remainder rotation keeps a small transient ripple even from
       a uniform start; the crash craters one node by ~50. *)
    check_bool "pre-discrepancy near flat" true (e.Faults.Engine.pre_discrepancy <= 4);
    check_bool "shock is the crater" true (e.Faults.Engine.shock_discrepancy >= 40);
    check_bool "recovered" true (e.Faults.Engine.recovered_at <> None);
    (match Faults.Engine.steps_to_recover e with
    | Some k -> check_bool "took at least a step" true (k >= 1)
    | None -> Alcotest.fail "no recovery count");
    check_bool "worst >= shock" true
      (e.Faults.Engine.worst_discrepancy >= e.Faults.Engine.shock_discrepancy)
  | es -> Alcotest.failf "expected 1 episode, got %d" (List.length es));
  check_bool "report says recovered" true (Faults.Engine.all_recovered r);
  check_bool "report renders" true (List.length (Faults.Engine.report_lines r) >= 3)

let test_shock_within_band_is_instant_recovery () =
  let g = Graphs.Gen.cycle 8 in
  let init = Array.make 8 5 in
  let plan =
    Faults.Schedule.[ { step = 4; event = Load_shock { node = 3; amount = 1 } } ]
  in
  let r = run_faulted ~eps:2 ~graph:g ~plan ~init ~steps:10 () in
  match r.Faults.Engine.episodes with
  | [ e ] -> (
    match Faults.Engine.steps_to_recover e with
    | Some 0 -> ()
    | other ->
      Alcotest.failf "expected instant recovery, got %s"
        (match other with None -> "none" | Some k -> string_of_int k))
  | _ -> Alcotest.fail "expected 1 episode"

let test_outage_conserves_and_expires () =
  let g = Graphs.Gen.cycle 10 in
  let init = Core.Loads.point_mass ~n:10 ~total:1000 in
  let plan =
    Faults.Schedule.
      [
        { step = 2; event = Edge_outage { node = 0; port = 0; last_step = 6 } };
        {
          step = 2;
          event =
            Edge_outage
              {
                node = Graphs.Graph.neighbor g 0 0;
                port = Graphs.Graph.reverse_port g 0 0;
                last_step = 6;
              };
        };
      ]
  in
  let faulted = run_faulted ~graph:g ~plan ~init ~steps:80 () in
  let clean = run_faulted ~graph:g ~plan:[] ~init ~steps:80 () in
  check_int "outage conserves mass" 1000 faulted.Faults.Engine.final_total;
  (* The severed edge perturbs the flow while down... *)
  check_bool "outage perturbs the run" true
    (faulted.Faults.Engine.result.Core.Engine.series
    <> clean.Faults.Engine.result.Core.Engine.series);
  (* ...but once restored the rotor-router still balances to the same
     discrepancy band (cycle: within O(d) = O(1) of clean). *)
  let final_disc r =
    Core.Loads.discrepancy r.Faults.Engine.result.Core.Engine.final_loads
  in
  check_bool "balances after restoration" true
    (final_disc faulted <= final_disc clean + 2 * Graphs.Graph.degree g)

let test_fault_injection_detected_by_watchdog () =
  (* Corrupt the run behind the ledger's back: a hook that teleports a
     token in must trip the conservation check at the next step. *)
  let g = Graphs.Gen.cycle 6 in
  let init = Array.make 6 4 in
  check_bool "corruption caught" true
    (try
       ignore
         (Faults.Engine.run ~graph:g
            ~make_balancer:(fun () -> Core.Send_floor.make g ~self_loops:1)
            ~plan:[]
            ~hook:(fun t loads -> if t = 3 then loads.(0) <- loads.(0) + 1)
            ~init ~steps:10 ());
       false
     with Faults.Watchdog.Invariant_violation d ->
       d.Faults.Watchdog.kind = Faults.Watchdog.Conservation
       && d.Faults.Watchdog.step = 4)

let test_plan_validation () =
  let g = Graphs.Gen.cycle 4 in
  let init = Array.make 4 1 in
  List.iter
    (fun (label, plan) ->
      check_bool label true
        (try
           ignore (run_faulted ~graph:g ~plan ~init ~steps:5 ());
           false
         with Invalid_argument _ -> true))
    Faults.Schedule.
      [
        ( "step out of range",
          [ { step = 9; event = Load_shock { node = 0; amount = 1 } } ] );
        ( "node out of range",
          [ { step = 1; event = Load_shock { node = 7; amount = 1 } } ] );
        ( "port out of range",
          [ { step = 1; event = Edge_outage { node = 0; port = 5; last_step = 2 } } ]
        );
      ]

let prop_sequential_equals_sharded_under_faults =
  QCheck.Test.make
    ~name:"faulted runs: sequential ≡ sharded final loads and episodes" ~count:15
    QCheck.(triple (int_range 0 1000) (int_range 1 6) (int_range 2 5))
    (fun (seed, fault_step, shards) ->
      let g = Graphs.Gen.torus [ 4; 4 ] in
      let init = Core.Loads.uniform_random (Prng.Splitmix.create 11) ~n:16 ~total:800 in
      let specs =
        match
          Faults.Schedule.parse
            (Printf.sprintf "crash:0.2@%d:wipe:spill; shock:50@%d" fault_step
               (fault_step + 3))
        with
        | Ok s -> s
        | Error m -> failwith m
      in
      let plan = Faults.Schedule.realize ~seed ~graph:g specs in
      let seq = run_faulted ~graph:g ~plan ~init ~steps:25 () in
      let par =
        run_faulted
          ~mode:(Faults.Engine.Sharded { shards; strategy = Shard.Partition.Bfs_blocks })
          ~graph:g ~plan ~init ~steps:25 ()
      in
      seq.Faults.Engine.result.Core.Engine.final_loads
      = par.Faults.Engine.result.Core.Engine.final_loads
      && List.map episode_key seq.Faults.Engine.episodes
         = List.map episode_key par.Faults.Engine.episodes)

let () =
  Alcotest.run "faults"
    [
      ( "schedule",
        [
          Alcotest.test_case "parse round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "defaults and rejects" `Quick
            test_parse_defaults_and_errors;
          Alcotest.test_case "realize is seeded-deterministic" `Quick
            test_realize_deterministic;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "conservation ledger" `Quick test_watchdog_conservation;
          Alcotest.test_case "negative load and state range" `Quick
            test_watchdog_negative_and_range;
        ] );
      ( "engine",
        [
          Alcotest.test_case "replayable, shard-equivalent" `Quick
            test_replayable_and_shard_equivalent;
          Alcotest.test_case "token ledger exact" `Quick test_ledger_exact;
          Alcotest.test_case "recovery measured" `Quick test_recovery_measured;
          Alcotest.test_case "in-band shock recovers instantly" `Quick
            test_shock_within_band_is_instant_recovery;
          Alcotest.test_case "outage conserves and expires" `Quick
            test_outage_conserves_and_expires;
          Alcotest.test_case "watchdog catches corruption" `Quick
            test_fault_injection_detected_by_watchdog;
          Alcotest.test_case "plan validation" `Quick test_plan_validation;
          QCheck_alcotest.to_alcotest prop_sequential_equals_sharded_under_faults;
        ] );
    ]
