(* Tests for the Definition 2.1 / 3.1 auditors. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let audit_run ~graph ~balancer ~init ~steps =
  let r = Core.Engine.run ~audit:true ~graph ~balancer ~init ~steps () in
  Option.get r.Core.Engine.fairness

let test_send_floor_is_0_fair () =
  (* Observation 2.2: SEND(⌊x/d+⌋) is cumulatively 0-fair. *)
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:1000 in
  let rep = audit_run ~graph:g ~balancer:(Core.Send_floor.make g ~self_loops:4) ~init ~steps:200 in
  check_int "delta = 0" 0 rep.Core.Fairness.cumulative_delta;
  check_bool "floor share" true rep.Core.Fairness.floor_share_ok

let test_send_round_is_0_fair () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:1000 in
  let rep = audit_run ~graph:g ~balancer:(Core.Send_round.make g ~self_loops:8) ~init ~steps:200 in
  check_int "delta = 0" 0 rep.Core.Fairness.cumulative_delta;
  check_bool "floor share" true rep.Core.Fairness.floor_share_ok;
  check_bool "round fair" true rep.Core.Fairness.round_fair;
  check_bool "ceil cap" true rep.Core.Fairness.ceil_cap_ok

let test_rotor_router_is_1_fair () =
  (* Observation 2.2: ROTOR-ROUTER is cumulatively 1-fair. *)
  List.iter
    (fun (g, d0) ->
      let n = Graphs.Graph.n g in
      let init = Core.Loads.point_mass ~n ~total:(37 * n) in
      let rep =
        audit_run ~graph:g ~balancer:(Core.Rotor_router.make g ~self_loops:d0) ~init
          ~steps:300
      in
      check_bool
        (Printf.sprintf "delta ≤ 1 (got %d)" rep.Core.Fairness.cumulative_delta)
        true
        (rep.Core.Fairness.cumulative_delta <= 1);
      check_bool "floor share" true rep.Core.Fairness.floor_share_ok;
      check_bool "round fair" true rep.Core.Fairness.round_fair)
    [
      (Graphs.Gen.cycle 9, 2);
      (Graphs.Gen.torus [ 4; 4 ], 4);
      (Graphs.Gen.hypercube 3, 3);
    ]

let test_rotor_router_star_good_1_balancer () =
  (* Observation 3.2: ROTOR-ROUTER* is a good 1-balancer. *)
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:999 in
  let rep = audit_run ~graph:g ~balancer:(Core.Rotor_router_star.make g) ~init ~steps:300 in
  check_bool "cumulatively 1-fair" true (rep.Core.Fairness.cumulative_delta <= 1);
  check_bool "round fair" true rep.Core.Fairness.round_fair;
  check_bool "ceil cap" true rep.Core.Fairness.ceil_cap_ok;
  (match rep.Core.Fairness.self_pref_s with
  | None -> () (* never constrained: even stronger than s = 1 *)
  | Some s -> check_bool (Printf.sprintf "s ≥ 1 (got %d)" s) true (s >= 1))

let test_send_round_self_preference () =
  (* With d° = 3d, SEND([x/d+]) must audit as a good s-balancer with
     s ≥ ⌈(d+ - 2d)/2⌉ = d (see Send_round's doc). *)
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let d = 4 in
  let rep =
    audit_run ~graph:g
      ~balancer:(Core.Send_round.make g ~self_loops:(3 * d))
      ~init:(Core.Loads.point_mass ~n:16 ~total:1777)
      ~steps:300
  in
  (match rep.Core.Fairness.self_pref_s with
  | None -> ()
  | Some s -> check_bool (Printf.sprintf "s ≥ d (got %d)" s) true (s >= d));
  check_bool "round fair" true rep.Core.Fairness.round_fair

let test_unfair_balancer_flagged () =
  (* A balancer that always dumps the excess on original port 0 is not
     cumulatively fair: its delta grows with time. *)
  let g = Graphs.Gen.cycle 6 in
  let d = 2 in
  let self_loops = 2 in
  let dp = d + self_loops in
  let biased =
    {
      Core.Balancer.name = "biased";
      degree = d;
      self_loops;
      props = Core.Balancer.paper_stateless;
      persist = None;
      assign =
        (fun ~step:_ ~node:_ ~load ~ports ->
          let q = load / dp and e = load mod dp in
          Array.fill ports 0 dp q;
          ports.(0) <- ports.(0) + e);
    }
  in
  let init = Core.Loads.flat ~n:6 ~value:7 in
  (* load 7, dp 4: e = 3 extra on port 0 every step *)
  let rep = audit_run ~graph:g ~balancer:biased ~init ~steps:10 in
  check_bool
    (Printf.sprintf "delta grows (got %d)" rep.Core.Fairness.cumulative_delta)
    true
    (rep.Core.Fairness.cumulative_delta >= 10)

let test_floor_violation_flagged () =
  (* Sending everything on port 0 violates the ⌊x/d+⌋ floor share. *)
  let g = Graphs.Gen.cycle 4 in
  let greedy =
    {
      Core.Balancer.name = "greedy";
      degree = 2;
      self_loops = 1;
      props = Core.Balancer.paper_stateless;
      persist = None;
      assign =
        (fun ~step:_ ~node:_ ~load ~ports ->
          ports.(0) <- load;
          ports.(1) <- 0;
          ports.(2) <- 0);
    }
  in
  let rep =
    audit_run ~graph:g ~balancer:greedy ~init:(Core.Loads.flat ~n:4 ~value:9) ~steps:3
  in
  check_bool "floor violated" false rep.Core.Fairness.floor_share_ok;
  check_bool "not round fair" false rep.Core.Fairness.round_fair;
  check_bool "ceil cap violated" false rep.Core.Fairness.ceil_cap_ok

let test_eq3_deviation_small_for_fair_balancers () =
  (* Equation (3) of the Theorem 2.3 proof: after the A.2 reformulation,
     every original edge's cumulative flow stays within δ of F_out/d⁺. *)
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:1000 in
  List.iter
    (fun (label, balancer, bound) ->
      let rep = audit_run ~graph:g ~balancer ~init ~steps:300 in
      check_bool
        (Printf.sprintf "%s: eq3 %.3f ≤ %.1f" label rep.Core.Fairness.eq3_deviation bound)
        true
        (rep.Core.Fairness.eq3_deviation <= bound))
    [
      ("send-floor", Core.Send_floor.make g ~self_loops:4, 1.0);
      ("send-round", Core.Send_round.make g ~self_loops:4, 1.0);
      ("rotor-router", Core.Rotor_router.make g ~self_loops:4, 2.0);
      ("rotor-router*", Core.Rotor_router_star.make g, 2.0);
    ]

let test_eq3_deviation_grows_for_unfair () =
  (* The Theorem 4.1 adversary's per-edge flows drift apart from
     F_out/d⁺ linearly — eq (3) is exactly what it violates. *)
  let g = Graphs.Gen.cycle 12 in
  let balancer, init = Baselines.Adversary_roundfair.make g in
  let r = Core.Engine.run ~audit:true ~graph:g ~balancer ~init ~steps:50 () in
  let rep = Option.get r.Core.Engine.fairness in
  check_bool
    (Printf.sprintf "deviation %.1f grows" rep.Core.Fairness.eq3_deviation)
    true
    (rep.Core.Fairness.eq3_deviation > 10.0)

let test_node_spread_accessor () =
  let tr = Core.Fairness.create ~degree:2 ~self_loops:1 ~n:2 in
  Core.Fairness.observe tr ~node:0 ~load:5 ~ports:[| 2; 1; 2 |];
  check_int "spread after one step" 1 (Core.Fairness.node_spread tr 0);
  Core.Fairness.observe tr ~node:0 ~load:5 ~ports:[| 1; 2; 2 |];
  check_int "spread evens out" 0 (Core.Fairness.node_spread tr 0)

let test_empirical_s_cap () =
  (* degree 1 not allowed; use degree 2, d° = 2, d+ = 4.  With load 6
     (e = 2) and both extras on original ports, zero self-loops get the
     ceil → empirical s = 0. *)
  let tr = Core.Fairness.create ~degree:2 ~self_loops:2 ~n:1 in
  Core.Fairness.observe tr ~node:0 ~load:6 ~ports:[| 2; 2; 1; 1 |];
  Alcotest.(check (option int))
    "s capped at 0" (Some 0)
    (Core.Fairness.report tr).Core.Fairness.self_pref_s

let prop_rotor_router_delta_at_most_1 =
  QCheck.Test.make ~name:"rotor-router audits at δ ≤ 1 on random cycles" ~count:25
    QCheck.(pair (int_range 3 20) (int_range 0 300))
    (fun (n, total) ->
      let g = Graphs.Gen.cycle n in
      let init = Core.Loads.point_mass ~n ~total in
      let bal = Core.Rotor_router.make g ~self_loops:2 in
      let r = Core.Engine.run ~audit:true ~graph:g ~balancer:bal ~init ~steps:50 () in
      (Option.get r.Core.Engine.fairness).Core.Fairness.cumulative_delta <= 1)

let prop_send_floor_delta_zero =
  QCheck.Test.make ~name:"send-floor audits at δ = 0 on random input" ~count:25
    QCheck.(pair (int_range 3 20) (int_range 0 500))
    (fun (n, total) ->
      let g = Graphs.Gen.cycle n in
      let rng = Prng.Splitmix.create (n + total) in
      let init = Core.Loads.uniform_random rng ~n ~total in
      let bal = Core.Send_floor.make g ~self_loops:3 in
      let r = Core.Engine.run ~audit:true ~graph:g ~balancer:bal ~init ~steps:50 () in
      (Option.get r.Core.Engine.fairness).Core.Fairness.cumulative_delta = 0)

let () =
  Alcotest.run "fairness"
    [
      ( "class membership",
        [
          Alcotest.test_case "send-floor 0-fair" `Quick test_send_floor_is_0_fair;
          Alcotest.test_case "send-round 0-fair" `Quick test_send_round_is_0_fair;
          Alcotest.test_case "rotor-router 1-fair" `Quick test_rotor_router_is_1_fair;
          Alcotest.test_case "rotor-router* good 1-balancer" `Quick
            test_rotor_router_star_good_1_balancer;
          Alcotest.test_case "send-round self-preference" `Quick
            test_send_round_self_preference;
        ] );
      ( "violations",
        [
          Alcotest.test_case "unfair flagged" `Quick test_unfair_balancer_flagged;
          Alcotest.test_case "eq(3) small for fair" `Quick
            test_eq3_deviation_small_for_fair_balancers;
          Alcotest.test_case "eq(3) grows for adversary" `Quick
            test_eq3_deviation_grows_for_unfair;
          Alcotest.test_case "floor violation flagged" `Quick test_floor_violation_flagged;
        ] );
      ( "internals",
        [
          Alcotest.test_case "node spread" `Quick test_node_spread_accessor;
          Alcotest.test_case "empirical s cap" `Quick test_empirical_s_cap;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_rotor_router_delta_at_most_1;
          QCheck_alcotest.to_alcotest prop_send_floor_delta_zero;
        ] );
    ]
