(* Tests for the distributed runtime (lib/dist):

   - Frame: stream framing round-trips through arbitrary chunkings,
     truncation waits for more input, corrupted CRC and oversized
     headers poison the stream permanently (satellite of Issue 7's
     Net.Protocol hardening);
   - Msg: wire codec round-trips every message shape and rejects
     garbage and unknown versions;
   - Arq: the real-time sender/receiver pair delivers in order exactly
     once, retransmits on the Net.Protocol backoff schedule, and
     discards duplicates;
   - Heartbeat: pacing and fixed-timeout failure detection;
   - Loss: the seeded shim is replayable and its rates are honest;
   - Member: the membership/round-barrier state machine — boot,
     commits, death mid-round (abort + respawn), checkpoint-matched
     re-admission, shutdown;
   - end-to-end: a real forked cluster over loopback sockets matches
     Core.Engine bit for bit when lossless, and conserves tokens under
     drop + kill -9 chaos. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---------- Frame ---------- *)

(* Feed [data] to a decoder in [chunk]-byte slices. *)
let feed_chunked dec data chunk =
  let buf = Bytes.of_string data in
  let len = Bytes.length buf in
  let pos = ref 0 in
  while !pos < len do
    let k = min chunk (len - !pos) in
    Dist.Frame.feed dec buf !pos k;
    pos := !pos + k
  done

let drain dec =
  let rec go acc =
    match Dist.Frame.next dec with
    | None -> List.rev acc
    | Some (Ok p) -> go (p :: acc)
    | Some (Error e) -> Alcotest.fail (Dist.Frame.error_message e)
  in
  go []

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; "hello"; String.make 1000 '\255'; "\000\001\002" ] in
  let stream = String.concat "" (List.map Dist.Frame.encode payloads) in
  List.iter
    (fun chunk ->
      let dec = Dist.Frame.create () in
      feed_chunked dec stream chunk;
      Alcotest.(check (list string))
        (Printf.sprintf "chunk=%d" chunk)
        payloads (drain dec))
    [ 1; 2; 3; 7; 8; 9; 1024; String.length stream ]

let test_frame_truncated () =
  let frame = Dist.Frame.encode "truncate me" in
  let dec = Dist.Frame.create () in
  (* everything but the last byte: no frame, no error *)
  Dist.Frame.feed dec (Bytes.of_string frame) 0 (String.length frame - 1);
  (match Dist.Frame.next dec with
   | None -> ()
   | Some _ -> Alcotest.fail "truncated frame should yield nothing yet");
  check_int "buffered" (String.length frame - 1) (Dist.Frame.buffered dec);
  (* the last byte completes it *)
  Dist.Frame.feed dec (Bytes.of_string frame) (String.length frame - 1) 1;
  match Dist.Frame.next dec with
  | Some (Ok p) -> check_string "payload" "truncate me" p
  | _ -> Alcotest.fail "completed frame should decode"

let test_frame_bad_crc () =
  let frame = Bytes.of_string (Dist.Frame.encode "corrupt me") in
  (* flip a payload bit (past the 8-byte header) *)
  Bytes.set frame 9 (Char.chr (Char.code (Bytes.get frame 9) lxor 0x40));
  let dec = Dist.Frame.create () in
  Dist.Frame.feed dec frame 0 (Bytes.length frame);
  (match Dist.Frame.next dec with
   | Some (Error (Dist.Frame.Bad_crc _)) -> ()
   | _ -> Alcotest.fail "corrupted payload should fail the checksum");
  (* the error is sticky: feeding a pristine frame cannot resync *)
  let good = Dist.Frame.encode "fine" in
  Dist.Frame.feed dec (Bytes.of_string good) 0 (String.length good);
  match Dist.Frame.next dec with
  | Some (Error (Dist.Frame.Bad_crc _)) -> ()
  | _ -> Alcotest.fail "framing errors must be sticky"

let test_frame_oversized () =
  let header = Bytes.create 8 in
  Bytes.set_int32_be header 0 (Int32.of_int (Dist.Frame.max_payload + 1));
  Bytes.set_int32_be header 4 0l;
  let dec = Dist.Frame.create () in
  Dist.Frame.feed dec header 0 8;
  match Dist.Frame.next dec with
  | Some (Error (Dist.Frame.Oversized _)) -> ()
  | _ -> Alcotest.fail "oversized length claim should be rejected"

(* ---------- Msg ---------- *)

let sample_msgs =
  [ Dist.Msg.Hello
      { shard = 3; staged_round = Some 7; primary_round = Some 6;
        rotated_round = None };
    Dist.Msg.Welcome
      { epoch = 2; round = 8; members = [ 0; 1; 3 ];
        use = Dist.Msg.Use_staged };
    Dist.Msg.Start { epoch = 2; round = 9; members = [ 0; 1; 3 ] };
    Dist.Msg.Abort { epoch = 3; round = 9; members = [ 0; 1 ] };
    Dist.Msg.Data
      { src = 1; dst = 2; epoch = 2; round = 9; seq = 41;
        transfers = [ { Dist.Msg.dest = 5; tokens = 3 } ]; fin = true };
    Dist.Msg.Data_ack { src = 2; dst = 1; epoch = 2; ack = 41 };
    Dist.Msg.Round_done
      { shard = 0; epoch = 2; round = 9; load_sum = 128; min_load = 1;
        max_load = 9 };
    Dist.Msg.Heartbeat { shard = 1; epoch = 2; round = 9; load_sum = 64 };
    Dist.Msg.Shutdown;
    Dist.Msg.Result { shard = 0; loads = [ (0, 4); (1, 5) ] } ]

let test_msg_roundtrip () =
  List.iter
    (fun m ->
      match Dist.Msg.decode (Dist.Msg.encode m) with
      | Ok m' -> check_bool (Dist.Msg.describe m) true (m = m')
      | Error e -> Alcotest.fail e)
    sample_msgs

let test_msg_rejects_garbage () =
  let bad s =
    match Dist.Msg.decode s with
    | Error _ -> ()
    | Ok m ->
      Alcotest.fail ("garbage decoded as " ^ Dist.Msg.describe m)
  in
  bad "";
  bad "\002rest";
  (* future version *)
  bad "\001not a marshalled value"

(* ---------- Arq ---------- *)

let arq_config = { Net.Protocol.timeout = 2; backoff = Net.Protocol.Exponential; cap = 8 }

let test_arq_sender_flow () =
  let s = Dist.Arq.sender ~config:arq_config ~tick:1.0 in
  let s0 = Dist.Arq.send s ~now:0.0 "a" in
  let s1 = Dist.Arq.send s ~now:0.0 "b" in
  let s2 = Dist.Arq.send s ~now:0.0 "c" in
  Alcotest.(check (list int)) "seqs" [ 0; 1; 2 ] [ s0; s1; s2 ];
  (* first sweep transmits everything, ascending *)
  Alcotest.(check (list (pair int string)))
    "first due" [ (0, "a"); (1, "b"); (2, "c") ]
    (Dist.Arq.due s ~now:0.0);
  check_int "no retransmissions yet" 0 (Dist.Arq.retransmissions s);
  (* nothing due before the 2-tick timeout *)
  Alcotest.(check (list (pair int string))) "quiet" [] (Dist.Arq.due s ~now:1.9);
  Dist.Arq.ack s ~upto:1;
  check_int "unacked after ack" 1 (Dist.Arq.unacked s);
  (* only the unacked tail retransmits *)
  Alcotest.(check (list (pair int string)))
    "retransmit" [ (2, "c") ] (Dist.Arq.due s ~now:2.5);
  check_int "retransmissions" 1 (Dist.Arq.retransmissions s);
  (* exponential backoff: next gap is 4 ticks (2 * 2^1) *)
  Alcotest.(check (list (pair int string))) "backoff quiet" []
    (Dist.Arq.due s ~now:5.0);
  Alcotest.(check (list (pair int string)))
    "backoff fire" [ (2, "c") ] (Dist.Arq.due s ~now:6.6);
  Dist.Arq.ack s ~upto:2;
  check_int "drained" 0 (Dist.Arq.unacked s);
  check_bool "no deadline when drained" true
    (Dist.Arq.next_deadline s = None)

let test_arq_receiver_flow () =
  let r = Dist.Arq.receiver () in
  (* out-of-order arrival stashes *)
  Alcotest.(check (list string)) "gap" [] (Dist.Arq.accept r ~seq:1 "b");
  check_int "ack before seq 0" (-1) (Dist.Arq.cumulative_ack r);
  Alcotest.(check (list string))
    "in-order drain" [ "a"; "b" ] (Dist.Arq.accept r ~seq:0 "a");
  check_int "ack after drain" 1 (Dist.Arq.cumulative_ack r);
  (* duplicates are counted and not redelivered *)
  Alcotest.(check (list string)) "dup" [] (Dist.Arq.accept r ~seq:0 "a");
  check_int "duplicates" 1 (Dist.Arq.duplicates r);
  Alcotest.(check (list string)) "next" [ "c" ] (Dist.Arq.accept r ~seq:2 "c")

(* ---------- Heartbeat ---------- *)

let test_heartbeat_pacer () =
  let p = Dist.Heartbeat.pacer ~interval:0.5 ~now:10.0 in
  check_bool "not yet" false (Dist.Heartbeat.due p ~now:10.4);
  check_bool "due" true (Dist.Heartbeat.due p ~now:10.5);
  check_bool "advanced" false (Dist.Heartbeat.due p ~now:10.6);
  check_bool "due again" true (Dist.Heartbeat.due p ~now:11.1)

let test_heartbeat_monitor () =
  let m = Dist.Heartbeat.monitor ~timeout:1.0 in
  Dist.Heartbeat.watch m ~now:0.0 3;
  Dist.Heartbeat.watch m ~now:0.0 1;
  Alcotest.(check (list int)) "watched" [ 1; 3 ] (Dist.Heartbeat.watched m);
  Alcotest.(check (list int)) "quiet" [] (Dist.Heartbeat.suspects m ~now:0.9);
  Dist.Heartbeat.beat m ~now:0.8 1;
  Alcotest.(check (list int))
    "only the silent one" [ 3 ]
    (Dist.Heartbeat.suspects m ~now:1.1);
  Dist.Heartbeat.unwatch m 3;
  Dist.Heartbeat.beat m ~now:5.0 1;
  Alcotest.(check (list int)) "unwatched" [] (Dist.Heartbeat.suspects m ~now:5.5);
  (* a beat cannot resurrect an unwatched shard *)
  Dist.Heartbeat.beat m ~now:5.5 3;
  Alcotest.(check (list int)) "no resurrection" [ 1 ] (Dist.Heartbeat.watched m)

(* ---------- Loss ---------- *)

let test_loss_none () =
  let t = Dist.Loss.create Dist.Loss.none in
  for _ = 1 to 100 do
    match Dist.Loss.decide t ~src:0 ~dst:1 with
    | Dist.Loss.Deliver -> ()
    | _ -> Alcotest.fail "lossless shim must always deliver"
  done;
  check_int "dropped" 0 (Dist.Loss.dropped t)

let test_loss_replayable () =
  let config =
    { Dist.Loss.drop = 0.3; delay_prob = 0.2; delay_max = 0.1; seed = 42 }
  in
  let sample () =
    let t = Dist.Loss.create config in
    List.init 200 (fun i ->
        match Dist.Loss.decide t ~src:(i mod 3) ~dst:((i + 1) mod 3) with
        | Dist.Loss.Deliver -> "D"
        | Dist.Loss.Drop -> "X"
        | Dist.Loss.Delay d -> Printf.sprintf "%.6f" d)
  in
  Alcotest.(check (list string)) "same seed, same verdicts" (sample ()) (sample ());
  let other = Dist.Loss.create { config with seed = 43 } in
  let differs = ref false in
  let t = Dist.Loss.create config in
  for _ = 1 to 200 do
    if Dist.Loss.decide t ~src:0 ~dst:1 <> Dist.Loss.decide other ~src:0 ~dst:1
    then differs := true
  done;
  check_bool "different seed differs" true !differs

let test_loss_rates () =
  let t =
    Dist.Loss.create
      { Dist.Loss.drop = 0.3; delay_prob = 0.; delay_max = 0.; seed = 7 }
  in
  let n = 20_000 in
  for _ = 1 to n do
    ignore (Dist.Loss.decide t ~src:0 ~dst:1)
  done;
  let rate = float (Dist.Loss.dropped t) /. float n in
  check_bool
    (Printf.sprintf "drop rate %.3f near 0.3" rate)
    true
    (abs_float (rate -. 0.3) < 0.02)

let test_loss_delay_bounds () =
  let t =
    Dist.Loss.create
      { Dist.Loss.drop = 0.; delay_prob = 0.9; delay_max = 0.25; seed = 9 }
  in
  for _ = 1 to 1000 do
    match Dist.Loss.decide t ~src:4 ~dst:5 with
    | Dist.Loss.Delay d ->
      check_bool "delay in bounds" true (d >= 0. && d <= 0.25)
    | Dist.Loss.Deliver -> ()
    | Dist.Loss.Drop -> Alcotest.fail "drop=0 must not drop"
  done;
  check_bool "some delays happened" true (Dist.Loss.delayed t > 500)

(* ---------- Member ---------- *)

let hello_fresh m shard =
  Dist.Member.on_hello m ~shard ~staged_round:None ~primary_round:None
    ~rotated_round:None

let tells_to shard actions =
  List.filter_map
    (function
      | Dist.Member.Tell { shard = s; msg } when s = shard -> Some msg
      | _ -> None)
    actions

let has_respawn shard actions =
  List.exists
    (function Dist.Member.Respawn { shard = s } -> s = shard | _ -> false)
    actions

let committed_round actions =
  List.filter_map
    (function
      | Dist.Member.Committed { round; _ } -> Some round
      | _ -> None)
    actions

let mk_member () =
  (* 2 shards, 64 tokens each, horizon 3 rounds *)
  Dist.Member.create ~shards:2 ~rounds:3 ~init_sums:[| 64; 64 |]
    ~init_mins:[| 0; 0 |] ~init_maxs:[| 64; 64 |]

let round_done m ~shard ~round =
  Dist.Member.on_round_done m ~shard ~epoch:(Dist.Member.epoch m) ~round
    ~load_sum:64 ~min_load:0 ~max_load:64

let test_member_boot () =
  let m = mk_member () in
  check_int "no hello yet" 0 (List.length (hello_fresh m 0));
  let acts = hello_fresh m 1 in
  (* the round-0 baseline commits, then both shards are welcomed fresh *)
  Alcotest.(check (list int)) "round 0 committed" [ 0 ] (committed_round acts);
  List.iter
    (fun shard ->
      match tells_to shard acts with
      | [ Dist.Msg.Welcome { round = 1; use = Dist.Msg.Use_fresh; members; _ } ]
        ->
        Alcotest.(check (list int)) "members" [ 0; 1 ] members
      | _ -> Alcotest.fail "boot should welcome every shard fresh")
    [ 0; 1 ];
  check_bool "running" true (Dist.Member.phase m = Dist.Member.Running)

let test_member_commit_and_finish () =
  let m = mk_member () in
  ignore (hello_fresh m 0);
  ignore (hello_fresh m 1);
  (* round 1: first reporter does not commit, the last one does *)
  check_int "half-barrier" 0 (List.length (round_done m ~shard:0 ~round:1));
  let acts = round_done m ~shard:1 ~round:1 in
  Alcotest.(check (list int)) "round 1 commits" [ 1 ] (committed_round acts);
  (match tells_to 0 acts with
   | [ Dist.Msg.Start { round = 2; _ } ] -> ()
   | _ -> Alcotest.fail "commit should start the next round");
  ignore (round_done m ~shard:0 ~round:2);
  ignore (round_done m ~shard:1 ~round:2);
  ignore (round_done m ~shard:0 ~round:3);
  let final = round_done m ~shard:1 ~round:3 in
  check_bool "finishes" true
    (List.exists (fun a -> a = Dist.Member.Finished) final);
  (match tells_to 0 final with
   | [ Dist.Msg.Shutdown ] -> ()
   | _ -> Alcotest.fail "horizon reached should shut shards down");
  check_bool "stale round_done ignored" true (round_done m ~shard:0 ~round:3 = [])

let test_member_death_and_rejoin () =
  let m = mk_member () in
  ignore (hello_fresh m 0);
  ignore (hello_fresh m 1);
  ignore (round_done m ~shard:0 ~round:1);
  ignore (round_done m ~shard:1 ~round:1);
  let epoch0 = Dist.Member.epoch m in
  (* shard 1 dies mid-round-2: respawn + abort to the survivor *)
  let acts = Dist.Member.on_death m ~shard:1 in
  check_bool "respawn requested" true (has_respawn 1 acts);
  (match tells_to 0 acts with
   | [ Dist.Msg.Abort { round = 2; epoch; members } ] ->
     check_bool "new epoch" true (epoch > epoch0);
     Alcotest.(check (list int)) "survivors" [ 0 ] members
   | _ -> Alcotest.fail "death mid-round should abort the round");
  check_bool "idempotent" true (Dist.Member.on_death m ~shard:1 = []);
  (match Dist.Member.status m 1 with
   | Dist.Member.Dead { frozen_round = 1; frozen_sum = 64 } -> ()
   | _ -> Alcotest.fail "dead shard should freeze at its committed round");
  (* survivor re-runs round 2 alone; commit happens without shard 1 *)
  let solo = round_done m ~shard:0 ~round:2 in
  Alcotest.(check (list int)) "degraded commit" [ 2 ] (committed_round solo);
  (* the replacement reports a primary checkpoint for round 1: admitted
     at the next commit, directed to its committed state *)
  let back =
    Dist.Member.on_hello m ~shard:1 ~staged_round:(Some 2)
      ~primary_round:(Some 1) ~rotated_round:(Some 0)
  in
  check_int "admission waits for the barrier" 0 (List.length back);
  (match Dist.Member.status m 1 with
   | Dist.Member.Joining { use = Dist.Msg.Use_primary; frozen_round = 1; _ } ->
     ()
   | _ -> Alcotest.fail "rejoin should match the primary checkpoint");
  (* round 3 is the horizon, so the joiner is re-admitted straight into
     the shutdown sequence: restore committed state, then report *)
  let admit = round_done m ~shard:0 ~round:3 in
  match tells_to 1 admit with
  | [ Dist.Msg.Welcome { round = 4; use = Dist.Msg.Use_primary; _ };
      Dist.Msg.Shutdown ] ->
    ()
  | _ -> Alcotest.fail "final commit should welcome the joiner and shut down"

let test_member_choose_source () =
  let ok = function Ok c -> c | Error e -> Alcotest.fail e in
  check_bool "primary preferred" true
    (ok
       (Dist.Member.choose_source ~frozen_round:5 ~staged:(Some 5)
          ~primary:(Some 5) ~rotated:None)
     = Dist.Msg.Use_primary);
  check_bool "staged carries the frozen round" true
    (ok
       (Dist.Member.choose_source ~frozen_round:5 ~staged:(Some 5)
          ~primary:(Some 4) ~rotated:None)
     = Dist.Msg.Use_staged);
  check_bool "rotated as last resort" true
    (ok
       (Dist.Member.choose_source ~frozen_round:4 ~staged:(Some 6)
          ~primary:(Some 5) ~rotated:(Some 4))
     = Dist.Msg.Use_rotated);
  check_bool "fresh only for a virgin round-0 restart" true
    (ok
       (Dist.Member.choose_source ~frozen_round:0 ~staged:None ~primary:None
          ~rotated:None)
     = Dist.Msg.Use_fresh);
  check_bool "no matching checkpoint is unrecoverable" true
    (match
       Dist.Member.choose_source ~frozen_round:3 ~staged:(Some 5)
         ~primary:(Some 4) ~rotated:(Some 2)
     with
     | Error _ -> true
     | Ok _ -> false)

(* ---------- Setup ---------- *)

let test_setup_build () =
  match
    Dist.Setup.build
      { Dist.Setup.graph = "cycle:8"; init = "point:256"; algo = "rotor-router";
        seed = 1; self_loops = None }
  with
  | Error e -> Alcotest.fail e
  | Ok b ->
    check_int "n" 8 (Graphs.Graph.n b.Dist.Setup.graph);
    check_int "total" 256 (Array.fold_left ( + ) 0 b.Dist.Setup.init);
    check_bool "band positive" true (Dist.Setup.theorem_band b > 0);
    (match Dist.Setup.parse_band b "auto" with
     | Ok (Some _) -> ()
     | _ -> Alcotest.fail "band auto");
    (match Dist.Setup.parse_band b "none" with
     | Ok None -> ()
     | _ -> Alcotest.fail "band none");
    (match Dist.Setup.parse_band b "17" with
     | Ok (Some 17) -> ()
     | _ -> Alcotest.fail "band int");
    (match Dist.Setup.parse_band b "-3" with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "negative band must be rejected")

let test_setup_rejects () =
  let bad spec =
    match Dist.Setup.build spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "bad spec accepted"
  in
  bad
    { Dist.Setup.graph = "nonsense"; init = "point:256"; algo = "rotor-router";
      seed = 1; self_loops = None };
  bad
    { Dist.Setup.graph = "cycle:8"; init = "nonsense"; algo = "rotor-router";
      seed = 1; self_loops = None };
  bad
    { Dist.Setup.graph = "cycle:8"; init = "point:256"; algo = "nonsense";
      seed = 1; self_loops = None }

(* ---------- End-to-end over real sockets ---------- *)

let mkdtemp () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d = Printf.sprintf "%s/test_dist.%d.%d" base (Unix.getpid ()) k in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
  in
  go 0

let rmdir_r d =
  Array.iter (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
    (Sys.readdir d);
  try Unix.rmdir d with Unix.Unix_error _ -> ()

(* Run a full forked cluster; returns (exit_code, final_loads option). *)
let run_cluster ~shards ~rounds ~loss ~kills ~band built =
  let ckpt_dir = mkdtemp () in
  let out = Filename.concat ckpt_dir "loads.txt" in
  Dist.Launch.ignore_sigpipe ();
  let listen_fd, port = Dist.Transport.listen_loopback () in
  let node_cfg shard =
    { Dist.Node.shard; shards; port; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init;
      make_balancer = built.Dist.Setup.make_balancer; rounds; ckpt_dir; loss;
      protocol = Net.Protocol.default_config; tick = 0.01; hb_interval = 0.03;
      metrics_port = None; verbose = false }
  in
  let sup = Dist.Launch.create ~listen_fd ~node_cfg ~shards ~verbose:false in
  Dist.Launch.spawn_all sup;
  let on_commit round =
    List.iter (fun (sh, r) -> if r = round then Dist.Launch.kill sup sh) kills
  in
  let cfg =
    { Dist.Coord.shards; rounds; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init; balancer_name = built.Dist.Setup.name;
      listen_fd; suspect_timeout = 0.25; band; out_path = Some out;
      metrics_port = None;
      respawn = Some (fun s -> Dist.Launch.reap sup; Dist.Launch.spawn sup s);
      on_commit = (if kills = [] then None else Some on_commit);
      deadline = Some 60.; verbose = false }
  in
  let code =
    Fun.protect
      ~finally:(fun () -> Dist.Launch.shutdown sup)
      (fun () -> Dist.Coord.main cfg)
  in
  let loads =
    if Sys.file_exists out then begin
      let ic = open_in out in
      let rec go acc =
        match input_line ic with
        | line -> go (int_of_string line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let l = go [] in
      close_in ic;
      Some (Array.of_list l)
    end
    else None
  in
  rmdir_r ckpt_dir;
  (code, loads)

let build_e2e () =
  match
    Dist.Setup.build
      { Dist.Setup.graph = "cycle:8"; init = "point:256"; algo = "rotor-router";
        seed = 1; self_loops = None }
  with
  | Ok b -> b
  | Error e -> Alcotest.fail e

let test_e2e_lossless_matches_engine () =
  let built = build_e2e () in
  let rounds = 12 in
  let code, loads =
    run_cluster ~shards:3 ~rounds ~loss:Dist.Loss.none ~kills:[] ~band:None
      built
  in
  check_int "exit code" 0 code;
  let reference =
    Core.Engine.run ~graph:built.Dist.Setup.graph
      ~balancer:(built.Dist.Setup.make_balancer ())
      ~init:built.Dist.Setup.init ~steps:rounds ()
  in
  match loads with
  | None -> Alcotest.fail "cluster wrote no load vector"
  | Some l ->
    Alcotest.(check (array int))
      "bit-for-bit with Core.Engine" reference.Core.Engine.final_loads l

let test_e2e_chaos_conserves () =
  let built = build_e2e () in
  let loss =
    { Dist.Loss.drop = 0.15; delay_prob = 0.1; delay_max = 0.02; seed = 5 }
  in
  let code, loads =
    run_cluster ~shards:3 ~rounds:12 ~loss ~kills:[ (1, 4) ] ~band:None built
  in
  (* exit 0 already implies the coordinator's exact-conservation check
     passed; re-assert the total from the written vector anyway *)
  check_int "exit code" 0 code;
  match loads with
  | None -> Alcotest.fail "cluster wrote no load vector"
  | Some l -> check_int "tokens conserved" 256 (Array.fold_left ( + ) 0 l)

let () =
  Alcotest.run "dist"
    [ ( "frame",
        [ Alcotest.test_case "roundtrip under chunking" `Quick
            test_frame_roundtrip;
          Alcotest.test_case "truncation waits" `Quick test_frame_truncated;
          Alcotest.test_case "bad crc is sticky" `Quick test_frame_bad_crc;
          Alcotest.test_case "oversized rejected" `Quick test_frame_oversized ] );
      ( "msg",
        [ Alcotest.test_case "roundtrip" `Quick test_msg_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_msg_rejects_garbage ] );
      ( "arq",
        [ Alcotest.test_case "sender flow" `Quick test_arq_sender_flow;
          Alcotest.test_case "receiver flow" `Quick test_arq_receiver_flow ] );
      ( "heartbeat",
        [ Alcotest.test_case "pacer" `Quick test_heartbeat_pacer;
          Alcotest.test_case "monitor" `Quick test_heartbeat_monitor ] );
      ( "loss",
        [ Alcotest.test_case "none delivers" `Quick test_loss_none;
          Alcotest.test_case "replayable" `Quick test_loss_replayable;
          Alcotest.test_case "rates" `Quick test_loss_rates;
          Alcotest.test_case "delay bounds" `Quick test_loss_delay_bounds ] );
      ( "member",
        [ Alcotest.test_case "boot" `Quick test_member_boot;
          Alcotest.test_case "commit and finish" `Quick
            test_member_commit_and_finish;
          Alcotest.test_case "death and rejoin" `Quick
            test_member_death_and_rejoin;
          Alcotest.test_case "choose_source" `Quick test_member_choose_source ] );
      ( "setup",
        [ Alcotest.test_case "build" `Quick test_setup_build;
          Alcotest.test_case "rejects" `Quick test_setup_rejects ] );
      ( "e2e",
        [ Alcotest.test_case "lossless matches Core.Engine" `Slow
            test_e2e_lossless_matches_engine;
          Alcotest.test_case "chaos conserves tokens" `Slow
            test_e2e_chaos_conserves ] ) ]
