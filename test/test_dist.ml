(* Tests for the distributed runtime (lib/dist):

   - Frame: stream framing round-trips through arbitrary chunkings,
     truncation waits for more input, corrupted CRC and oversized
     headers poison the stream permanently (satellite of Issue 7's
     Net.Protocol hardening);
   - Msg: wire codec round-trips every message shape and rejects
     garbage and unknown versions;
   - Arq: the real-time sender/receiver pair delivers in order exactly
     once, retransmits on the Net.Protocol backoff schedule, and
     discards duplicates;
   - Heartbeat: pacing and fixed-timeout failure detection;
   - Loss: the seeded shim is replayable, its rates are honest, and
     partition windows cut exactly the configured links;
   - Wal: the coordinator's write-ahead log round-trips, replays to the
     last snapshot, discards torn tails, and truncates them on reopen;
   - Member: the membership/round-barrier state machine — boot,
     commits, death mid-round (abort + respawn), checkpoint-matched
     re-admission, snapshot/recover (coordinator restart), poisoned
     commit rollback, shutdown — plus a property-based fuzz of the
     whole machine (epoch monotonicity, no double-commit, sum
     conservation, recoverable frozen rounds);
   - Chaos: scenario generation is a pure function of (seed, index)
     and the shrinker reduces a failing schedule to a minimal one;
   - end-to-end: real forked clusters over loopback sockets — the
     Launch supervisor (in-process coordinator) matches Core.Engine
     bit for bit when lossless and conserves tokens under drop +
     kill -9 chaos; the Super supervisor (forked coordinator) survives
     a coordinator kill -9 with bit-identical output via WAL replay,
     heals partitions, handles graceful SIGTERM, and rolls back a
     once-misreported audit while failing a persistent liar. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let mkdtemp () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d = Printf.sprintf "%s/test_dist.%d.%d" base (Unix.getpid ()) k in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
  in
  go 0

let rmdir_r d =
  Array.iter (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
    (Sys.readdir d);
  try Unix.rmdir d with Unix.Unix_error _ -> ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------- Frame ---------- *)

(* Feed [data] to a decoder in [chunk]-byte slices. *)
let feed_chunked dec data chunk =
  let buf = Bytes.of_string data in
  let len = Bytes.length buf in
  let pos = ref 0 in
  while !pos < len do
    let k = min chunk (len - !pos) in
    Dist.Frame.feed dec buf !pos k;
    pos := !pos + k
  done

let drain dec =
  let rec go acc =
    match Dist.Frame.next dec with
    | None -> List.rev acc
    | Some (Ok p) -> go (p :: acc)
    | Some (Error e) -> Alcotest.fail (Dist.Frame.error_message e)
  in
  go []

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; "hello"; String.make 1000 '\255'; "\000\001\002" ] in
  let stream = String.concat "" (List.map Dist.Frame.encode payloads) in
  List.iter
    (fun chunk ->
      let dec = Dist.Frame.create () in
      feed_chunked dec stream chunk;
      Alcotest.(check (list string))
        (Printf.sprintf "chunk=%d" chunk)
        payloads (drain dec))
    [ 1; 2; 3; 7; 8; 9; 1024; String.length stream ]

let test_frame_truncated () =
  let frame = Dist.Frame.encode "truncate me" in
  let dec = Dist.Frame.create () in
  (* everything but the last byte: no frame, no error *)
  Dist.Frame.feed dec (Bytes.of_string frame) 0 (String.length frame - 1);
  (match Dist.Frame.next dec with
   | None -> ()
   | Some _ -> Alcotest.fail "truncated frame should yield nothing yet");
  check_int "buffered" (String.length frame - 1) (Dist.Frame.buffered dec);
  (* the last byte completes it *)
  Dist.Frame.feed dec (Bytes.of_string frame) (String.length frame - 1) 1;
  match Dist.Frame.next dec with
  | Some (Ok p) -> check_string "payload" "truncate me" p
  | _ -> Alcotest.fail "completed frame should decode"

let test_frame_bad_crc () =
  let frame = Bytes.of_string (Dist.Frame.encode "corrupt me") in
  (* flip a payload bit (past the 8-byte header) *)
  Bytes.set frame 9 (Char.chr (Char.code (Bytes.get frame 9) lxor 0x40));
  let dec = Dist.Frame.create () in
  Dist.Frame.feed dec frame 0 (Bytes.length frame);
  (match Dist.Frame.next dec with
   | Some (Error (Dist.Frame.Bad_crc _)) -> ()
   | _ -> Alcotest.fail "corrupted payload should fail the checksum");
  (* the error is sticky: feeding a pristine frame cannot resync *)
  let good = Dist.Frame.encode "fine" in
  Dist.Frame.feed dec (Bytes.of_string good) 0 (String.length good);
  match Dist.Frame.next dec with
  | Some (Error (Dist.Frame.Bad_crc _)) -> ()
  | _ -> Alcotest.fail "framing errors must be sticky"

let test_frame_oversized () =
  let header = Bytes.create 8 in
  Bytes.set_int32_be header 0 (Int32.of_int (Dist.Frame.max_payload + 1));
  Bytes.set_int32_be header 4 0l;
  let dec = Dist.Frame.create () in
  Dist.Frame.feed dec header 0 8;
  match Dist.Frame.next dec with
  | Some (Error (Dist.Frame.Oversized _)) -> ()
  | _ -> Alcotest.fail "oversized length claim should be rejected"

(* ---------- Msg ---------- *)

let sample_msgs =
  [ Dist.Msg.Hello
      { shard = 3; staged_round = Some 7; primary_round = Some 6;
        rotated_round = None };
    Dist.Msg.Welcome
      { epoch = 2; round = 8; members = [ 0; 1; 3 ];
        use = Dist.Msg.Use_staged };
    Dist.Msg.Start { epoch = 2; round = 9; members = [ 0; 1; 3 ] };
    Dist.Msg.Abort { epoch = 3; round = 9; members = [ 0; 1 ] };
    Dist.Msg.Data
      { src = 1; dst = 2; epoch = 2; round = 9; seq = 41;
        transfers = [ { Dist.Msg.dest = 5; tokens = 3 } ]; fin = true };
    Dist.Msg.Data_ack { src = 2; dst = 1; epoch = 2; ack = 41 };
    Dist.Msg.Round_done
      { shard = 0; epoch = 2; round = 9; load_sum = 128; min_load = 1;
        max_load = 9 };
    Dist.Msg.Heartbeat { shard = 1; epoch = 2; round = 9; load_sum = 64 };
    Dist.Msg.Shutdown { epoch = 2 };
    Dist.Msg.Result { shard = 0; loads = [ (0, 4); (1, 5) ] } ]

let test_msg_roundtrip () =
  List.iter
    (fun m ->
      match Dist.Msg.decode (Dist.Msg.encode m) with
      | Ok m' -> check_bool (Dist.Msg.describe m) true (m = m')
      | Error e -> Alcotest.fail e)
    sample_msgs

let test_msg_rejects_garbage () =
  let bad s =
    match Dist.Msg.decode s with
    | Error _ -> ()
    | Ok m ->
      Alcotest.fail ("garbage decoded as " ^ Dist.Msg.describe m)
  in
  bad "";
  bad "\002rest";
  (* future version *)
  bad "\001not a marshalled value"

(* ---------- Arq ---------- *)

let arq_config = { Net.Protocol.timeout = 2; backoff = Net.Protocol.Exponential; cap = 8 }

let test_arq_sender_flow () =
  let s = Dist.Arq.sender ~config:arq_config ~tick:1.0 in
  let s0 = Dist.Arq.send s ~now:0.0 "a" in
  let s1 = Dist.Arq.send s ~now:0.0 "b" in
  let s2 = Dist.Arq.send s ~now:0.0 "c" in
  Alcotest.(check (list int)) "seqs" [ 0; 1; 2 ] [ s0; s1; s2 ];
  (* first sweep transmits everything, ascending *)
  Alcotest.(check (list (pair int string)))
    "first due" [ (0, "a"); (1, "b"); (2, "c") ]
    (Dist.Arq.due s ~now:0.0);
  check_int "no retransmissions yet" 0 (Dist.Arq.retransmissions s);
  (* nothing due before the 2-tick timeout *)
  Alcotest.(check (list (pair int string))) "quiet" [] (Dist.Arq.due s ~now:1.9);
  Dist.Arq.ack s ~upto:1;
  check_int "unacked after ack" 1 (Dist.Arq.unacked s);
  (* only the unacked tail retransmits *)
  Alcotest.(check (list (pair int string)))
    "retransmit" [ (2, "c") ] (Dist.Arq.due s ~now:2.5);
  check_int "retransmissions" 1 (Dist.Arq.retransmissions s);
  (* exponential backoff: next gap is 4 ticks (2 * 2^1) *)
  Alcotest.(check (list (pair int string))) "backoff quiet" []
    (Dist.Arq.due s ~now:5.0);
  Alcotest.(check (list (pair int string)))
    "backoff fire" [ (2, "c") ] (Dist.Arq.due s ~now:6.6);
  Dist.Arq.ack s ~upto:2;
  check_int "drained" 0 (Dist.Arq.unacked s);
  check_bool "no deadline when drained" true
    (Dist.Arq.next_deadline s = None)

let test_arq_receiver_flow () =
  let r = Dist.Arq.receiver () in
  (* out-of-order arrival stashes *)
  Alcotest.(check (list string)) "gap" [] (Dist.Arq.accept r ~seq:1 "b");
  check_int "ack before seq 0" (-1) (Dist.Arq.cumulative_ack r);
  Alcotest.(check (list string))
    "in-order drain" [ "a"; "b" ] (Dist.Arq.accept r ~seq:0 "a");
  check_int "ack after drain" 1 (Dist.Arq.cumulative_ack r);
  (* duplicates are counted and not redelivered *)
  Alcotest.(check (list string)) "dup" [] (Dist.Arq.accept r ~seq:0 "a");
  check_int "duplicates" 1 (Dist.Arq.duplicates r);
  Alcotest.(check (list string)) "next" [ "c" ] (Dist.Arq.accept r ~seq:2 "c")

(* ---------- Heartbeat ---------- *)

let test_heartbeat_pacer () =
  let p = Dist.Heartbeat.pacer ~interval:0.5 ~now:10.0 in
  check_bool "not yet" false (Dist.Heartbeat.due p ~now:10.4);
  check_bool "due" true (Dist.Heartbeat.due p ~now:10.5);
  check_bool "advanced" false (Dist.Heartbeat.due p ~now:10.6);
  check_bool "due again" true (Dist.Heartbeat.due p ~now:11.1)

let test_heartbeat_monitor () =
  let m = Dist.Heartbeat.monitor ~timeout:1.0 in
  Dist.Heartbeat.watch m ~now:0.0 3;
  Dist.Heartbeat.watch m ~now:0.0 1;
  Alcotest.(check (list int)) "watched" [ 1; 3 ] (Dist.Heartbeat.watched m);
  Alcotest.(check (list int)) "quiet" [] (Dist.Heartbeat.suspects m ~now:0.9);
  Dist.Heartbeat.beat m ~now:0.8 1;
  Alcotest.(check (list int))
    "only the silent one" [ 3 ]
    (Dist.Heartbeat.suspects m ~now:1.1);
  Dist.Heartbeat.unwatch m 3;
  Dist.Heartbeat.beat m ~now:5.0 1;
  Alcotest.(check (list int)) "unwatched" [] (Dist.Heartbeat.suspects m ~now:5.5);
  (* a beat cannot resurrect an unwatched shard *)
  Dist.Heartbeat.beat m ~now:5.5 3;
  Alcotest.(check (list int)) "no resurrection" [ 1 ] (Dist.Heartbeat.watched m)

let test_heartbeat_validate () =
  (match Dist.Heartbeat.validate_timeout ~interval:0.05 ~timeout:0.5 () with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let bad interval timeout =
    match Dist.Heartbeat.validate_timeout ~interval ~timeout () with
    | Error _ -> ()
    | Ok () ->
      Alcotest.fail
        (Printf.sprintf "interval %g / timeout %g should be rejected" interval
           timeout)
  in
  (* non-positive, non-finite, and a timeout the heartbeat cadence
     cannot possibly satisfy *)
  bad 0.05 0.0;
  bad 0.05 (-1.0);
  bad 0.05 Float.infinity;
  bad 0.05 Float.nan;
  bad 0.5 0.5;
  bad (-0.1) 0.5

(* ---------- Loss ---------- *)

let test_loss_none () =
  let t = Dist.Loss.create Dist.Loss.none in
  for _ = 1 to 100 do
    match Dist.Loss.decide t ~src:0 ~dst:1 with
    | Dist.Loss.Deliver -> ()
    | _ -> Alcotest.fail "lossless shim must always deliver"
  done;
  check_int "dropped" 0 (Dist.Loss.dropped t)

let test_loss_replayable () =
  let config =
    { Dist.Loss.drop = 0.3; delay_prob = 0.2; delay_max = 0.1; seed = 42;
      partitions = [] }
  in
  let sample () =
    let t = Dist.Loss.create config in
    List.init 200 (fun i ->
        match Dist.Loss.decide t ~src:(i mod 3) ~dst:((i + 1) mod 3) with
        | Dist.Loss.Deliver -> "D"
        | Dist.Loss.Drop -> "X"
        | Dist.Loss.Delay d -> Printf.sprintf "%.6f" d)
  in
  Alcotest.(check (list string)) "same seed, same verdicts" (sample ()) (sample ());
  let other = Dist.Loss.create { config with seed = 43 } in
  let differs = ref false in
  let t = Dist.Loss.create config in
  for _ = 1 to 200 do
    if Dist.Loss.decide t ~src:0 ~dst:1 <> Dist.Loss.decide other ~src:0 ~dst:1
    then differs := true
  done;
  check_bool "different seed differs" true !differs

let test_loss_rates () =
  let t =
    Dist.Loss.create
      { Dist.Loss.drop = 0.3; delay_prob = 0.; delay_max = 0.; seed = 7;
        partitions = [] }
  in
  let n = 20_000 in
  for _ = 1 to n do
    ignore (Dist.Loss.decide t ~src:0 ~dst:1)
  done;
  let rate = float (Dist.Loss.dropped t) /. float n in
  check_bool
    (Printf.sprintf "drop rate %.3f near 0.3" rate)
    true
    (abs_float (rate -. 0.3) < 0.02)

let test_loss_delay_bounds () =
  let t =
    Dist.Loss.create
      { Dist.Loss.drop = 0.; delay_prob = 0.9; delay_max = 0.25; seed = 9;
        partitions = [] }
  in
  for _ = 1 to 1000 do
    match Dist.Loss.decide t ~src:4 ~dst:5 with
    | Dist.Loss.Delay d ->
      check_bool "delay in bounds" true (d >= 0. && d <= 0.25)
    | Dist.Loss.Deliver -> ()
    | Dist.Loss.Drop -> Alcotest.fail "drop=0 must not drop"
  done;
  check_bool "some delays happened" true (Dist.Loss.delayed t > 500)

let test_loss_partition_cut () =
  let w = { Dist.Loss.cut = [ 1 ]; from_s = 1.0; until_s = 2.0 } in
  let cfg = { Dist.Loss.none with Dist.Loss.partitions = [ w ] } in
  check_bool "closed before the window" false
    (Dist.Loss.cut cfg ~elapsed:0.99 ~src:1 ~dst:(-1));
  check_bool "open: shard to coordinator" true
    (Dist.Loss.cut cfg ~elapsed:1.0 ~src:1 ~dst:(-1));
  check_bool "open: coordinator to shard" true
    (Dist.Loss.cut cfg ~elapsed:1.5 ~src:(-1) ~dst:1);
  check_bool "open: across the cut" true
    (Dist.Loss.cut cfg ~elapsed:1.5 ~src:0 ~dst:1);
  check_bool "open: both on the majority side" false
    (Dist.Loss.cut cfg ~elapsed:1.5 ~src:0 ~dst:2);
  check_bool "closed at until_s" false
    (Dist.Loss.cut cfg ~elapsed:2.0 ~src:1 ~dst:0);
  (* two shards cut together still talk to each other *)
  let both = { Dist.Loss.cut = [ 0; 1 ]; from_s = 0.0; until_s = 1.0 } in
  let cfg2 = { Dist.Loss.none with Dist.Loss.partitions = [ both ] } in
  check_bool "inside the cut group" false
    (Dist.Loss.cut cfg2 ~elapsed:0.5 ~src:0 ~dst:1);
  check_bool "cut group to coordinator" true
    (Dist.Loss.cut cfg2 ~elapsed:0.5 ~src:0 ~dst:(-1));
  (* validation rejects nonsense windows *)
  let bad win =
    match
      Dist.Loss.validate { Dist.Loss.none with Dist.Loss.partitions = [ win ] }
    with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "bad partition window accepted"
  in
  bad { Dist.Loss.cut = []; from_s = 0.0; until_s = 1.0 };
  bad { Dist.Loss.cut = [ 0 ]; from_s = 1.0; until_s = 1.0 };
  bad { Dist.Loss.cut = [ 0 ]; from_s = -0.5; until_s = 1.0 }

(* ---------- Wal ---------- *)

let wal_snap ~epoch ~committed =
  { Dist.Member.epoch; committed; sums = [| 64; 64 |]; mins = [| 0; 0 |];
    maxs = [| 64; 64 |]; dead = []; admitted = [] }

let test_wal_roundtrip_replay () =
  let dir = mkdtemp () in
  let path = Filename.concat dir "coord.wal" in
  let w = Dist.Wal.create ~path in
  Dist.Wal.append w
    (Dist.Wal.Boot
       { time = 1.0; shards = 2; rounds = 3; expected_total = 128;
         snap = wal_snap ~epoch:1 ~committed:0 });
  Dist.Wal.append w
    (Dist.Wal.Commit { time = 2.0; snap = wal_snap ~epoch:1 ~committed:1 });
  Dist.Wal.append w
    (Dist.Wal.Elect
       { time = 2.5; shard = 1; round = 1; use = Dist.Msg.Use_primary });
  Dist.Wal.append w
    (Dist.Wal.Epoch
       { time = 3.0; reason = "shard death";
         snap =
           { (wal_snap ~epoch:2 ~committed:1) with dead = [ (1, 1, 64) ] } });
  Dist.Wal.sync w;
  Dist.Wal.close w;
  (match Dist.Wal.read_records ~path with
   | Ok (records, torn) ->
     check_int "records" 4 (List.length records);
     check_bool "no tear" false torn
   | Error e -> Alcotest.fail e);
  (match Dist.Wal.replay ~path with
   | Ok (Some r) ->
     check_int "shards" 2 r.Dist.Wal.shards;
     check_int "rounds" 3 r.Dist.Wal.rounds;
     check_int "expected_total" 128 r.Dist.Wal.expected_total;
     check_int "commits" 1 r.Dist.Wal.commits;
     check_bool "no torn tail" false r.Dist.Wal.torn_tail;
     check_int "last epoch wins" 2 r.Dist.Wal.snap.Dist.Member.epoch;
     check_int "committed" 1 r.Dist.Wal.snap.Dist.Member.committed;
     Alcotest.(check (list (pair int (pair int int))))
       "dead roster carried" [ (1, (1, 64)) ]
       (List.map (fun (s, a, b) -> (s, (a, b)))
          r.Dist.Wal.snap.Dist.Member.dead)
   | Ok None -> Alcotest.fail "non-empty log replayed as a fresh boot"
   | Error e -> Alcotest.fail e);
  (match Dist.Wal.commit_times ~path with
   | Ok ts ->
     Alcotest.(check (list (float 1e-9))) "commit times" [ 1.0; 2.0 ] ts
   | Error e -> Alcotest.fail e);
  check_bool "commit advances the round" true
    (Dist.Wal.committed_round
       (Dist.Wal.Commit { time = 0.; snap = wal_snap ~epoch:0 ~committed:5 })
     = Some 5);
  check_bool "elect advances nothing" true
    (Dist.Wal.committed_round
       (Dist.Wal.Elect
          { time = 0.; shard = 0; round = 1; use = Dist.Msg.Use_fresh })
     = None);
  rmdir_r dir

let test_wal_fresh_and_bootless () =
  let dir = mkdtemp () in
  (match Dist.Wal.replay ~path:(Filename.concat dir "absent.wal") with
   | Ok None -> ()
   | _ -> Alcotest.fail "a missing log is a fresh boot");
  let path = Filename.concat dir "bootless.wal" in
  let w = Dist.Wal.create ~path in
  Dist.Wal.append w
    (Dist.Wal.Commit { time = 1.0; snap = wal_snap ~epoch:0 ~committed:1 });
  Dist.Wal.sync w;
  Dist.Wal.close w;
  (match Dist.Wal.replay ~path with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "a log without a Boot record must not replay");
  rmdir_r dir

let test_wal_torn_tail () =
  let dir = mkdtemp () in
  let path = Filename.concat dir "torn.wal" in
  let w = Dist.Wal.create ~path in
  Dist.Wal.append w
    (Dist.Wal.Boot
       { time = 1.0; shards = 2; rounds = 3; expected_total = 128;
         snap = wal_snap ~epoch:1 ~committed:0 });
  Dist.Wal.append w
    (Dist.Wal.Commit { time = 2.0; snap = wal_snap ~epoch:1 ~committed:1 });
  Dist.Wal.sync w;
  Dist.Wal.close w;
  (* a crash mid-append leaves a partial frame at the tail *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o600 path in
  output_string oc "\000\000\000\012torn";
  close_out oc;
  (match Dist.Wal.read_records ~path with
   | Ok (records, torn) ->
     check_int "valid prefix" 2 (List.length records);
     check_bool "tear detected" true torn
   | Error e -> Alcotest.fail e);
  (match Dist.Wal.replay ~path with
   | Ok (Some r) ->
     check_int "commits despite the tear" 1 r.Dist.Wal.commits;
     check_bool "tear flagged" true r.Dist.Wal.torn_tail
   | _ -> Alcotest.fail "torn log must still replay its valid prefix");
  (* a new writer truncates the tear, so its appends extend the valid
     prefix instead of hiding behind the garbage *)
  let w2 = Dist.Wal.create ~path in
  Dist.Wal.append w2
    (Dist.Wal.Commit { time = 3.0; snap = wal_snap ~epoch:1 ~committed:2 });
  Dist.Wal.sync w2;
  Dist.Wal.close w2;
  (match Dist.Wal.replay ~path with
   | Ok (Some r) ->
     check_int "appended past the tear" 2 r.Dist.Wal.commits;
     check_bool "tear gone" false r.Dist.Wal.torn_tail;
     check_int "resumes at the new commit" 2
       r.Dist.Wal.snap.Dist.Member.committed
   | _ -> Alcotest.fail "truncated log must replay cleanly");
  rmdir_r dir

(* ---------- Member ---------- *)

let hello_fresh m shard =
  Dist.Member.on_hello m ~shard ~staged_round:None ~primary_round:None
    ~rotated_round:None

let tells_to shard actions =
  List.filter_map
    (function
      | Dist.Member.Tell { shard = s; msg } when s = shard -> Some msg
      | _ -> None)
    actions

let has_respawn shard actions =
  List.exists
    (function Dist.Member.Respawn { shard = s } -> s = shard | _ -> false)
    actions

let committed_round actions =
  List.filter_map
    (function
      | Dist.Member.Committed { round; _ } -> Some round
      | _ -> None)
    actions

let mk_member () =
  (* 2 shards, 64 tokens each, horizon 3 rounds *)
  Dist.Member.create ~shards:2 ~rounds:3 ~init_sums:[| 64; 64 |]
    ~init_mins:[| 0; 0 |] ~init_maxs:[| 64; 64 |]

let round_done m ~shard ~round =
  Dist.Member.on_round_done m ~shard ~epoch:(Dist.Member.epoch m) ~round
    ~load_sum:64 ~min_load:0 ~max_load:64

let test_member_boot () =
  let m = mk_member () in
  check_int "no hello yet" 0 (List.length (hello_fresh m 0));
  let acts = hello_fresh m 1 in
  (* the round-0 baseline commits, then both shards are welcomed fresh *)
  Alcotest.(check (list int)) "round 0 committed" [ 0 ] (committed_round acts);
  List.iter
    (fun shard ->
      match tells_to shard acts with
      | [ Dist.Msg.Welcome { round = 1; use = Dist.Msg.Use_fresh; members; _ } ]
        ->
        Alcotest.(check (list int)) "members" [ 0; 1 ] members
      | _ -> Alcotest.fail "boot should welcome every shard fresh")
    [ 0; 1 ];
  check_bool "running" true (Dist.Member.phase m = Dist.Member.Running)

let test_member_commit_and_finish () =
  let m = mk_member () in
  ignore (hello_fresh m 0);
  ignore (hello_fresh m 1);
  (* round 1: first reporter does not commit, the last one does *)
  check_int "half-barrier" 0 (List.length (round_done m ~shard:0 ~round:1));
  let acts = round_done m ~shard:1 ~round:1 in
  Alcotest.(check (list int)) "round 1 commits" [ 1 ] (committed_round acts);
  (match tells_to 0 acts with
   | [ Dist.Msg.Start { round = 2; _ } ] -> ()
   | _ -> Alcotest.fail "commit should start the next round");
  ignore (round_done m ~shard:0 ~round:2);
  ignore (round_done m ~shard:1 ~round:2);
  ignore (round_done m ~shard:0 ~round:3);
  let final = round_done m ~shard:1 ~round:3 in
  check_bool "finishes" true
    (List.exists (fun a -> a = Dist.Member.Finished) final);
  (match tells_to 0 final with
   | [ Dist.Msg.Shutdown _ ] -> ()
   | _ -> Alcotest.fail "horizon reached should shut shards down");
  check_bool "stale round_done ignored" true (round_done m ~shard:0 ~round:3 = [])

let test_member_death_and_rejoin () =
  let m = mk_member () in
  ignore (hello_fresh m 0);
  ignore (hello_fresh m 1);
  ignore (round_done m ~shard:0 ~round:1);
  ignore (round_done m ~shard:1 ~round:1);
  let epoch0 = Dist.Member.epoch m in
  (* shard 1 dies mid-round-2: respawn + abort to the survivor *)
  let acts = Dist.Member.on_death m ~shard:1 in
  check_bool "respawn requested" true (has_respawn 1 acts);
  (match tells_to 0 acts with
   | [ Dist.Msg.Abort { round = 2; epoch; members } ] ->
     check_bool "new epoch" true (epoch > epoch0);
     Alcotest.(check (list int)) "survivors" [ 0 ] members
   | _ -> Alcotest.fail "death mid-round should abort the round");
  check_bool "idempotent" true (Dist.Member.on_death m ~shard:1 = []);
  (match Dist.Member.status m 1 with
   | Dist.Member.Dead { frozen_round = 1; frozen_sum = 64 } -> ()
   | _ -> Alcotest.fail "dead shard should freeze at its committed round");
  (* survivor re-runs round 2 alone; commit happens without shard 1 *)
  let solo = round_done m ~shard:0 ~round:2 in
  Alcotest.(check (list int)) "degraded commit" [ 2 ] (committed_round solo);
  (* the replacement reports a primary checkpoint for round 1: admitted
     at the next commit, directed to its committed state *)
  let back =
    Dist.Member.on_hello m ~shard:1 ~staged_round:(Some 2)
      ~primary_round:(Some 1) ~rotated_round:(Some 0)
  in
  check_int "admission waits for the barrier" 0 (List.length back);
  (match Dist.Member.status m 1 with
   | Dist.Member.Joining { use = Dist.Msg.Use_primary; frozen_round = 1; _ } ->
     ()
   | _ -> Alcotest.fail "rejoin should match the primary checkpoint");
  (* round 3 is the horizon, so the joiner is re-admitted straight into
     the shutdown sequence: restore committed state, then report *)
  let admit = round_done m ~shard:0 ~round:3 in
  match tells_to 1 admit with
  | [ Dist.Msg.Welcome { round = 4; use = Dist.Msg.Use_primary; _ };
      Dist.Msg.Shutdown _ ] ->
    ()
  | _ -> Alcotest.fail "final commit should welcome the joiner and shut down"

(* A shard admitted at the very commit the coordinator dies on has
   checkpoints only for its old frozen round: the snapshot must carry
   the admission so recovery demands THAT round, not the global one.
   Same for a re-death before the shard commits a round of its own. *)
let test_member_admitted_recover () =
  let drive () =
    let m = mk_member () in
    ignore (hello_fresh m 0);
    ignore (hello_fresh m 1);
    ignore (round_done m ~shard:0 ~round:1);
    ignore (round_done m ~shard:1 ~round:1);
    ignore (Dist.Member.on_death m ~shard:1);
    ignore (round_done m ~shard:0 ~round:2);
    ignore
      (Dist.Member.on_hello m ~shard:1 ~staged_round:(Some 2)
         ~primary_round:(Some 1) ~rotated_round:(Some 0));
    (* the horizon commit admits shard 1; its checkpoints still top out
       at round 2 even though the cluster committed round 3 *)
    ignore (round_done m ~shard:0 ~round:3);
    m
  in
  let m = drive () in
  let snap = Dist.Member.snapshot m in
  check_int "committed at horizon" 3 snap.Dist.Member.committed;
  check_bool "admitted recorded" true
    (snap.Dist.Member.admitted = [ (1, 1, 64) ]);
  let m' = Dist.Member.recover ~shards:2 ~rounds:3 snap in
  (match Dist.Member.status m' 1 with
   | Dist.Member.Dead { frozen_round = 1; frozen_sum = 64 } -> ()
   | _ ->
     Alcotest.fail
       "recovery must demand the admitted shard's pre-admission round");
  (match Dist.Member.status m' 0 with
   | Dist.Member.Dead { frozen_round = 3; _ } -> ()
   | _ -> Alcotest.fail "full members recover at the committed round");
  (* re-death right after admission: freeze back at the old round *)
  let m2 = drive () in
  ignore (Dist.Member.on_death m2 ~shard:1);
  (match Dist.Member.status m2 1 with
   | Dist.Member.Dead { frozen_round = 1; frozen_sum = 64 } -> ()
   | _ -> Alcotest.fail "re-death must restore the pre-admission freeze");
  (* a duplicate hello from an alive shard is a lost Welcome, not a
     config error: demote (no respawn) and replay against the frozen
     state *)
  let m3 = drive () in
  let again =
    Dist.Member.on_hello m3 ~shard:1 ~staged_round:(Some 2)
      ~primary_round:(Some 1) ~rotated_round:(Some 0)
  in
  check_bool "no fatal" true
    (List.for_all
       (function Dist.Member.Fail _ -> false | _ -> true)
       again);
  check_bool "no respawn" false (has_respawn 1 again);
  match tells_to 1 again with
  | Dist.Msg.Welcome { use = Dist.Msg.Use_primary; _ } :: _ -> ()
  | _ -> Alcotest.fail "re-hello during Finishing should re-welcome"

let test_member_choose_source () =
  let ok = function Ok c -> c | Error e -> Alcotest.fail e in
  check_bool "primary preferred" true
    (ok
       (Dist.Member.choose_source ~frozen_round:5 ~staged:(Some 5)
          ~primary:(Some 5) ~rotated:None)
     = Dist.Msg.Use_primary);
  check_bool "staged carries the frozen round" true
    (ok
       (Dist.Member.choose_source ~frozen_round:5 ~staged:(Some 5)
          ~primary:(Some 4) ~rotated:None)
     = Dist.Msg.Use_staged);
  check_bool "rotated as last resort" true
    (ok
       (Dist.Member.choose_source ~frozen_round:4 ~staged:(Some 6)
          ~primary:(Some 5) ~rotated:(Some 4))
     = Dist.Msg.Use_rotated);
  check_bool "fresh only for a virgin round-0 restart" true
    (ok
       (Dist.Member.choose_source ~frozen_round:0 ~staged:None ~primary:None
          ~rotated:None)
     = Dist.Msg.Use_fresh);
  check_bool "no matching checkpoint is unrecoverable" true
    (match
       Dist.Member.choose_source ~frozen_round:3 ~staged:(Some 5)
         ~primary:(Some 4) ~rotated:(Some 2)
     with
     | Error _ -> true
     | Ok _ -> false)

let test_member_snapshot_recover () =
  let m = mk_member () in
  ignore (hello_fresh m 0);
  ignore (hello_fresh m 1);
  ignore (round_done m ~shard:0 ~round:1);
  ignore (round_done m ~shard:1 ~round:1);
  let snap = Dist.Member.snapshot m in
  check_int "snapshot committed" 1 snap.Dist.Member.committed;
  check_int "snapshot conserves" 128
    (Array.fold_left ( + ) 0 snap.Dist.Member.sums);
  check_bool "no dead shards" true (snap.Dist.Member.dead = []);
  (* a coordinator restart rebuilds from the snapshot: everything Dead
     at the logged round, epoch fenced past the logged one *)
  let m' = Dist.Member.recover ~shards:2 ~rounds:3 snap in
  check_bool "recovering" true (Dist.Member.phase m' = Dist.Member.Recovering);
  check_bool "epoch fenced" true
    (Dist.Member.epoch m' > snap.Dist.Member.epoch);
  check_int "committed preserved" 1 (Dist.Member.committed m');
  (match Dist.Member.status m' 0 with
   | Dist.Member.Dead { frozen_round = 1; frozen_sum = 64 } -> ()
   | _ -> Alcotest.fail "recovered shards start Dead at the logged round");
  (* recovery is a barrier: the first re-hello stays pending *)
  let a0 =
    Dist.Member.on_hello m' ~shard:0 ~staged_round:None ~primary_round:(Some 1)
      ~rotated_round:None
  in
  check_int "barrier holds" 0 (List.length a0);
  let a1 =
    Dist.Member.on_hello m' ~shard:1 ~staged_round:(Some 1)
      ~primary_round:(Some 1) ~rotated_round:None
  in
  (* the frozen round re-commits as a fresh audit point, then round 2
     starts exactly where the crash interrupted it *)
  Alcotest.(check (list int)) "re-audit" [ 1 ] (committed_round a1);
  List.iter
    (fun s ->
      match tells_to s a1 with
      | [ Dist.Msg.Welcome { round = 2; use = Dist.Msg.Use_primary; _ } ] -> ()
      | _ -> Alcotest.fail "recovery should resume the frozen round")
    [ 0; 1 ];
  (* a snapshot that does not fit the cluster is rejected *)
  match Dist.Member.recover ~shards:3 ~rounds:3 snap with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mis-sized snapshot must be rejected"

let test_member_poison_rollback () =
  let m = mk_member () in
  ignore (hello_fresh m 0);
  ignore (hello_fresh m 1);
  ignore (round_done m ~shard:0 ~round:1);
  ignore (round_done m ~shard:1 ~round:1);
  let epoch1 = Dist.Member.epoch m in
  (* the audit of round 1 failed: roll it back and re-run *)
  let acts = Dist.Member.on_poison m ~reason:"sums diverged" in
  check_bool "recoverable" true
    (not
       (List.exists
          (function Dist.Member.Fail _ -> true | _ -> false)
          acts));
  check_int "rolled back one commit" 0 (Dist.Member.committed m);
  check_bool "epoch fenced" true (Dist.Member.epoch m > epoch1);
  check_bool "recovering" true (Dist.Member.phase m = Dist.Member.Recovering);
  (match Dist.Member.status m 0 with
   | Dist.Member.Dead { frozen_round = 0; frozen_sum = 64 } -> ()
   | _ -> Alcotest.fail "poison freezes live shards at the rolled-back round");
  (* both re-hello from round-0 checkpoints; round 1 re-runs *)
  ignore
    (Dist.Member.on_hello m ~shard:0 ~staged_round:None ~primary_round:(Some 0)
       ~rotated_round:None);
  let a =
    Dist.Member.on_hello m ~shard:1 ~staged_round:None ~primary_round:(Some 0)
      ~rotated_round:None
  in
  Alcotest.(check (list int)) "re-audit of the rollback" [ 0 ]
    (committed_round a);
  List.iter
    (fun s ->
      match tells_to s a with
      | [ Dist.Msg.Welcome { round = 1; _ } ] -> ()
      | _ -> Alcotest.fail "the poisoned round must re-run")
    [ 0; 1 ]

let test_member_poison_unrecoverable () =
  let m = mk_member () in
  ignore (hello_fresh m 0);
  ignore (hello_fresh m 1);
  (* only the round-0 baseline exists: nothing to roll back *)
  match Dist.Member.on_poison m ~reason:"bad baseline" with
  | [ Dist.Member.Fail { code = 4; _ } ] -> ()
  | _ -> Alcotest.fail "poison without a rollback window must fail the run"

(* Property-based fuzz of the Member machine: arbitrary interleavings
   of hellos, round completions, deaths, and poisons must preserve
   epoch monotonicity, never commit the same round twice under one
   epoch, conserve the snapshot's token total, and keep every frozen
   shard within reach of a checkpoint (frozen_round <= committed + 1,
   the rollback window). *)

type op = Op_hello of int | Op_done of int | Op_death of int | Op_poison

let op_print = function
  | Op_hello s -> Printf.sprintf "hello:%d" s
  | Op_done s -> Printf.sprintf "done:%d" s
  | Op_death s -> Printf.sprintf "death:%d" s
  | Op_poison -> "poison"

let ops_arb shards =
  QCheck.make
    ~print:(fun l -> String.concat " " (List.map op_print l))
    QCheck.Gen.(
      list_size (int_range 1 60)
        (frequency
           [ (3, map (fun s -> Op_hello s) (int_bound (shards - 1)));
             (6, map (fun s -> Op_done s) (int_bound (shards - 1)));
             (2, map (fun s -> Op_death s) (int_bound (shards - 1)));
             (1, return Op_poison) ]))

let member_machine_prop ops =
  let shards = 3 in
  let total = 96 in
  let m =
    Dist.Member.create ~shards ~rounds:6 ~init_sums:[| 32; 32; 32 |]
      ~init_mins:[| 0; 0; 0 |] ~init_maxs:[| 32; 32; 32 |]
  in
  let last_epoch = ref 0 in
  let commits = Hashtbl.create 16 in
  let failed = ref false in
  let observe acts =
    let e = Dist.Member.epoch m in
    if e < !last_epoch then
      QCheck.Test.fail_reportf "epoch went backwards: %d -> %d" !last_epoch e;
    last_epoch := e;
    List.iter
      (function
        | Dist.Member.Committed { round; sums; _ } ->
          if Hashtbl.mem commits (e, round) then
            QCheck.Test.fail_reportf "round %d committed twice under epoch %d"
              round e;
          Hashtbl.add commits (e, round) ();
          let s = Array.fold_left ( + ) 0 sums in
          if s <> total then
            QCheck.Test.fail_reportf "commit of round %d sums to %d" round s
        | Dist.Member.Fail _ -> failed := true
        | Dist.Member.Tell _ | Dist.Member.Respawn _ | Dist.Member.Finished ->
          ())
      acts;
    let snap = Dist.Member.snapshot m in
    let s = Array.fold_left ( + ) 0 snap.Dist.Member.sums in
    if s <> total then QCheck.Test.fail_reportf "snapshot sums to %d" s;
    List.iter
      (fun (shard, fr, _) ->
        if fr < 0 || fr > Dist.Member.committed m + 1 then
          QCheck.Test.fail_reportf
            "shard %d frozen at round %d with only %d committed" shard fr
            (Dist.Member.committed m))
      snap.Dist.Member.dead
  in
  List.iter
    (fun op ->
      if not !failed then
        let acts =
          match op with
          | Op_hello s -> (
            match Dist.Member.status m s with
            | Dist.Member.Waiting_hello -> hello_fresh m s
            | Dist.Member.Dead { frozen_round; _ } ->
              Dist.Member.on_hello m ~shard:s ~staged_round:None
                ~primary_round:(Some frozen_round) ~rotated_round:None
            | Dist.Member.Alive | Dist.Member.Joining _ -> [])
          | Op_done s -> (
            match (Dist.Member.status m s, Dist.Member.phase m) with
            | Dist.Member.Alive, Dist.Member.Running ->
              Dist.Member.on_round_done m ~shard:s
                ~epoch:(Dist.Member.epoch m)
                ~round:(Dist.Member.committed m + 1)
                ~load_sum:32 ~min_load:0 ~max_load:32
            | _ -> [])
          | Op_death s -> Dist.Member.on_death m ~shard:s
          | Op_poison -> Dist.Member.on_poison m ~reason:"fuzz"
        in
        observe acts)
    ops;
  true

let member_machine_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"machine invariants under fuzz"
       (ops_arb 3) member_machine_prop)

(* ---------- Chaos ---------- *)

let test_chaos_generate_deterministic () =
  for i = 0 to 19 do
    let a = Dist.Chaos.generate ~seed:42 ~index:i in
    let b = Dist.Chaos.generate ~seed:42 ~index:i in
    check_bool (Printf.sprintf "index %d replays" i) true (a = b);
    check_bool "shard count in range" true (a.shards >= 2 && a.shards <= 4);
    check_bool "rounds in range" true (a.rounds >= 6 && a.rounds <= 15);
    List.iter
      (function
        | Dist.Super.Kill_shard { shard; round }
        | Dist.Super.Term_shard { shard; round } ->
          check_bool "shard fault in range" true
            (shard >= 0 && shard < a.shards && round >= 1 && round < a.rounds)
        | Dist.Super.Kill_coord { round } ->
          check_bool "coord fault in range" true
            (round >= 1 && round < a.rounds))
      a.faults;
    List.iter
      (fun (w : Dist.Loss.window) ->
        check_bool "partition in range" true
          (w.from_s < w.until_s
           && List.for_all (fun s -> s >= 0 && s < a.shards) w.cut))
      a.partitions
  done;
  check_bool "different streams diverge" true
    (List.exists
       (fun i ->
         Dist.Chaos.generate ~seed:1 ~index:i
         <> Dist.Chaos.generate ~seed:2 ~index:i)
       (List.init 10 (fun i -> i)))

let test_chaos_shrink_minimizes () =
  (* find a rich scenario, declare one of its faults "the bug", and
     check the shrinker strips everything else *)
  let rec find i =
    if i > 500 then Alcotest.fail "no rich scenario in 500 indices"
    else
      let s = Dist.Chaos.generate ~seed:7 ~index:i in
      if
        List.length s.faults >= 2
        && (s.drop > 0.0 || s.delay_prob > 0.0 || s.partitions <> [])
      then s
      else find (i + 1)
  in
  let s = find 0 in
  let target = match s.faults with f :: _ -> f | [] -> assert false in
  let fails c = List.mem target c.Dist.Chaos.faults in
  let m = Dist.Chaos.minimize ~fails s in
  check_bool "still failing" true (fails m);
  check_int "single fault survives" 1 (List.length m.faults);
  check_bool "partitions stripped" true (m.partitions = []);
  check_bool "loss silenced" true (m.drop = 0.0 && m.delay_prob = 0.0);
  check_bool "horizon no larger" true (m.rounds <= s.rounds);
  check_bool "experiment unchanged" true
    (m.graph = s.graph && m.init = s.init && m.algo = s.algo && m.seed = s.seed);
  (* every shrink candidate is strictly simpler, so minimize terminates
     with nothing left to strip *)
  check_bool "locally minimal" true
    (not (List.exists fails (Dist.Chaos.shrink m)));
  let cl = Dist.Chaos.command_line m in
  check_bool "replayable command line" true
    (contains cl "lb_cluster --graph"
     && (contains cl "--kill" || contains cl "--term"));
  check_bool "no loss flags when lossless" true (not (contains cl "--drop"))

(* ---------- Setup ---------- *)

let test_setup_build () =
  match
    Dist.Setup.build
      { Dist.Setup.graph = "cycle:8"; init = "point:256"; algo = "rotor-router";
        seed = 1; self_loops = None }
  with
  | Error e -> Alcotest.fail e
  | Ok b ->
    check_int "n" 8 (Graphs.Graph.n b.Dist.Setup.graph);
    check_int "total" 256 (Array.fold_left ( + ) 0 b.Dist.Setup.init);
    check_bool "band positive" true (Dist.Setup.theorem_band b > 0);
    (match Dist.Setup.parse_band b "auto" with
     | Ok (Some _) -> ()
     | _ -> Alcotest.fail "band auto");
    (match Dist.Setup.parse_band b "none" with
     | Ok None -> ()
     | _ -> Alcotest.fail "band none");
    (match Dist.Setup.parse_band b "17" with
     | Ok (Some 17) -> ()
     | _ -> Alcotest.fail "band int");
    (match Dist.Setup.parse_band b "-3" with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "negative band must be rejected")

let test_setup_rejects () =
  let bad spec =
    match Dist.Setup.build spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "bad spec accepted"
  in
  bad
    { Dist.Setup.graph = "nonsense"; init = "point:256"; algo = "rotor-router";
      seed = 1; self_loops = None };
  bad
    { Dist.Setup.graph = "cycle:8"; init = "nonsense"; algo = "rotor-router";
      seed = 1; self_loops = None };
  bad
    { Dist.Setup.graph = "cycle:8"; init = "point:256"; algo = "nonsense";
      seed = 1; self_loops = None }

(* ---------- End-to-end over real sockets ---------- *)

let read_loads out =
  if Sys.file_exists out then begin
    let ic = open_in out in
    let rec go acc =
      match input_line ic with
      | line -> go (int_of_string line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let l = go [] in
    close_in ic;
    Some (Array.of_list l)
  end
  else None

(* Run a full forked cluster under the Launch supervisor (coordinator
   in-process); returns (exit_code, final_loads option). *)
let run_cluster ~shards ~rounds ~loss ~kills ~band built =
  let ckpt_dir = mkdtemp () in
  let out = Filename.concat ckpt_dir "loads.txt" in
  Dist.Launch.ignore_sigpipe ();
  let listen_fd, port = Dist.Transport.listen_loopback () in
  let node_cfg shard =
    { Dist.Node.shard; shards; port; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init;
      make_balancer = built.Dist.Setup.make_balancer; rounds; ckpt_dir; loss;
      protocol = Net.Protocol.default_config; tick = 0.01; hb_interval = 0.03;
      metrics_port = None; reconnects = 5; graceful_term = false;
      injection = Dist.Node.No_injection; verbose = false }
  in
  let sup = Dist.Launch.create ~listen_fd ~node_cfg ~shards ~verbose:false in
  Dist.Launch.spawn_all sup;
  let on_commit round =
    List.iter (fun (sh, r) -> if r = round then Dist.Launch.kill sup sh) kills
  in
  let cfg =
    { Dist.Coord.shards; rounds; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init; balancer_name = built.Dist.Setup.name;
      listen_fd; suspect_timeout = 0.25; band; out_path = Some out;
      metrics_port = None;
      respawn = Some (fun s -> Dist.Launch.reap sup; Dist.Launch.spawn sup s);
      on_commit = (if kills = [] then None else Some on_commit);
      deadline = Some 60.; wal = None; graceful_term = false; verbose = false }
  in
  let code =
    Fun.protect
      ~finally:(fun () -> Dist.Launch.shutdown sup)
      (fun () -> Dist.Coord.main cfg)
  in
  let loads = read_loads out in
  rmdir_r ckpt_dir;
  (code, loads)

(* Run a full forked cluster under the Super supervisor (coordinator
   forked too, WAL-backed); returns (exit_code, final_loads option). *)
let run_super ?(faults = []) ?(partitions = []) ?(loss = Dist.Loss.none)
    ?(injection = fun _ -> Dist.Node.No_injection) ?(band = None) ~shards
    ~rounds built =
  let dir = mkdtemp () in
  let out = Filename.concat dir "loads.txt" in
  let wal_path = Filename.concat dir "coord.wal" in
  let loss = { loss with Dist.Loss.partitions } in
  let node_cfg ~port shard =
    { Dist.Node.shard; shards; port; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init;
      make_balancer = built.Dist.Setup.make_balancer; rounds; ckpt_dir = dir;
      loss; protocol = Net.Protocol.default_config; tick = 0.005;
      hb_interval = 0.02; metrics_port = None; reconnects = 8;
      graceful_term = true; injection = injection shard; verbose = false }
  in
  let coord_cfg ~listen_fd =
    { Dist.Coord.shards; rounds; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init; balancer_name = built.Dist.Setup.name;
      listen_fd; suspect_timeout = 0.3; band; out_path = Some out;
      metrics_port = None; respawn = None; on_commit = None;
      deadline = Some 60.; wal = Some wal_path; graceful_term = true;
      verbose = false }
  in
  let coord_kills =
    List.length
      (List.filter
         (function Dist.Super.Kill_coord _ -> true | _ -> false)
         faults)
  in
  let code =
    Dist.Super.run
      { Dist.Super.shards; node_cfg; coord_cfg; wal_path; faults;
        deadline = Some 90.; coord_respawns = coord_kills;
        node_respawns = 3 + List.length faults; verbose = false }
  in
  let loads = read_loads out in
  rmdir_r dir;
  (code, loads)

let build_e2e () =
  match
    Dist.Setup.build
      { Dist.Setup.graph = "cycle:8"; init = "point:256"; algo = "rotor-router";
        seed = 1; self_loops = None }
  with
  | Ok b -> b
  | Error e -> Alcotest.fail e

let engine_reference built rounds =
  Core.Engine.run ~graph:built.Dist.Setup.graph
    ~balancer:(built.Dist.Setup.make_balancer ())
    ~init:built.Dist.Setup.init ~steps:rounds ()

let test_e2e_lossless_matches_engine () =
  let built = build_e2e () in
  let rounds = 12 in
  let code, loads =
    run_cluster ~shards:3 ~rounds ~loss:Dist.Loss.none ~kills:[] ~band:None
      built
  in
  check_int "exit code" 0 code;
  let reference = engine_reference built rounds in
  match loads with
  | None -> Alcotest.fail "cluster wrote no load vector"
  | Some l ->
    Alcotest.(check (array int))
      "bit-for-bit with Core.Engine" reference.Core.Engine.final_loads l

let test_e2e_chaos_conserves () =
  let built = build_e2e () in
  let loss =
    { Dist.Loss.drop = 0.15; delay_prob = 0.1; delay_max = 0.02; seed = 5;
      partitions = [] }
  in
  let code, loads =
    run_cluster ~shards:3 ~rounds:12 ~loss ~kills:[ (1, 4) ] ~band:None built
  in
  (* exit 0 already implies the coordinator's exact-conservation check
     passed; re-assert the total from the written vector anyway *)
  check_int "exit code" 0 code;
  match loads with
  | None -> Alcotest.fail "cluster wrote no load vector"
  | Some l -> check_int "tokens conserved" 256 (Array.fold_left ( + ) 0 l)

let test_e2e_coord_crash_replays () =
  let built = build_e2e () in
  let rounds = 40 in
  let code, loads =
    run_super ~faults:[ Dist.Super.Kill_coord { round = 6 } ] ~shards:3 ~rounds
      built
  in
  check_int "exit code" 0 code;
  let reference = engine_reference built rounds in
  match loads with
  | None -> Alcotest.fail "cluster wrote no load vector"
  | Some l ->
    (* WAL replay resumed the frozen round exactly: the full-roster
       lossless run is indistinguishable from an uninterrupted one *)
    Alcotest.(check (array int))
      "bit-for-bit through the crash" reference.Core.Engine.final_loads l

let test_e2e_partition_heals () =
  let built = build_e2e () in
  let partitions =
    [ { Dist.Loss.cut = [ 1 ]; from_s = 0.15; until_s = 0.55 } ]
  in
  let code, loads = run_super ~partitions ~shards:3 ~rounds:40 built in
  check_int "exit code" 0 code;
  match loads with
  | None -> Alcotest.fail "cluster wrote no load vector"
  | Some l -> check_int "tokens conserved" 256 (Array.fold_left ( + ) 0 l)

let test_e2e_sigterm_graceful () =
  let built = build_e2e () in
  let code, loads =
    run_super ~faults:[ Dist.Super.Term_shard { shard = 2; round = 3 } ]
      ~shards:3 ~rounds:20 built
  in
  check_int "exit code" 0 code;
  match loads with
  | None -> Alcotest.fail "cluster wrote no load vector"
  | Some l -> check_int "tokens conserved" 256 (Array.fold_left ( + ) 0 l)

let test_e2e_misreport_once_heals () =
  let built = build_e2e () in
  let rounds = 12 in
  let injection s =
    if s = 1 then Dist.Node.Misreport_once 3 else Dist.Node.No_injection
  in
  let code, loads = run_super ~injection ~shards:3 ~rounds built in
  (* the poisoned commit rolls back, round 3 re-runs with an honest
     report, and the rollback is exact: bit-identical output *)
  check_int "exit code" 0 code;
  let reference = engine_reference built rounds in
  match loads with
  | None -> Alcotest.fail "cluster wrote no load vector"
  | Some l ->
    Alcotest.(check (array int))
      "bit-for-bit through the rollback" reference.Core.Engine.final_loads l

let test_e2e_misreport_persistent_fails () =
  let built = build_e2e () in
  let injection s =
    if s = 1 then Dist.Node.Misreport_from 3 else Dist.Node.No_injection
  in
  let code, _ = run_super ~injection ~shards:3 ~rounds:12 built in
  (* the same round poisons twice: the fault is durable, exit 4 *)
  check_int "exit code" 4 code

let () =
  Alcotest.run "dist"
    [ ( "frame",
        [ Alcotest.test_case "roundtrip under chunking" `Quick
            test_frame_roundtrip;
          Alcotest.test_case "truncation waits" `Quick test_frame_truncated;
          Alcotest.test_case "bad crc is sticky" `Quick test_frame_bad_crc;
          Alcotest.test_case "oversized rejected" `Quick test_frame_oversized ] );
      ( "msg",
        [ Alcotest.test_case "roundtrip" `Quick test_msg_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_msg_rejects_garbage ] );
      ( "arq",
        [ Alcotest.test_case "sender flow" `Quick test_arq_sender_flow;
          Alcotest.test_case "receiver flow" `Quick test_arq_receiver_flow ] );
      ( "heartbeat",
        [ Alcotest.test_case "pacer" `Quick test_heartbeat_pacer;
          Alcotest.test_case "monitor" `Quick test_heartbeat_monitor;
          Alcotest.test_case "timeout validation" `Quick
            test_heartbeat_validate ] );
      ( "loss",
        [ Alcotest.test_case "none delivers" `Quick test_loss_none;
          Alcotest.test_case "replayable" `Quick test_loss_replayable;
          Alcotest.test_case "rates" `Quick test_loss_rates;
          Alcotest.test_case "delay bounds" `Quick test_loss_delay_bounds;
          Alcotest.test_case "partition windows" `Quick
            test_loss_partition_cut ] );
      ( "wal",
        [ Alcotest.test_case "roundtrip and replay" `Quick
            test_wal_roundtrip_replay;
          Alcotest.test_case "fresh boot and bootless logs" `Quick
            test_wal_fresh_and_bootless;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail ] );
      ( "member",
        [ Alcotest.test_case "boot" `Quick test_member_boot;
          Alcotest.test_case "commit and finish" `Quick
            test_member_commit_and_finish;
          Alcotest.test_case "death and rejoin" `Quick
            test_member_death_and_rejoin;
          Alcotest.test_case "choose_source" `Quick test_member_choose_source;
          Alcotest.test_case "admitted shard recovers at its own round"
            `Quick test_member_admitted_recover;
          Alcotest.test_case "snapshot and recover" `Quick
            test_member_snapshot_recover;
          Alcotest.test_case "poison rollback" `Quick
            test_member_poison_rollback;
          Alcotest.test_case "poison unrecoverable" `Quick
            test_member_poison_unrecoverable;
          member_machine_test ] );
      ( "chaos",
        [ Alcotest.test_case "generation is deterministic" `Quick
            test_chaos_generate_deterministic;
          Alcotest.test_case "shrinker minimizes" `Quick
            test_chaos_shrink_minimizes ] );
      ( "setup",
        [ Alcotest.test_case "build" `Quick test_setup_build;
          Alcotest.test_case "rejects" `Quick test_setup_rejects ] );
      ( "e2e",
        [ Alcotest.test_case "lossless matches Core.Engine" `Slow
            test_e2e_lossless_matches_engine;
          Alcotest.test_case "chaos conserves tokens" `Slow
            test_e2e_chaos_conserves;
          Alcotest.test_case "coordinator crash replays the WAL" `Slow
            test_e2e_coord_crash_replays;
          Alcotest.test_case "partition heals" `Slow test_e2e_partition_heals;
          Alcotest.test_case "graceful SIGTERM" `Slow
            test_e2e_sigterm_graceful;
          Alcotest.test_case "misreport once heals" `Slow
            test_e2e_misreport_once_heals;
          Alcotest.test_case "persistent misreport fails" `Slow
            test_e2e_misreport_persistent_fails ] ) ]
