(* Tests for the proof-technique modules: Tap, Remainder (Prop. A.2),
   Coloring (Lemma 3.5), Metrics, and the quasirandom baseline [9]. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Tap --- *)

let test_tap_transparent () =
  let g = Graphs.Gen.cycle 8 in
  let mk () = Core.Rotor_router.make g ~self_loops:2 in
  let init = Core.Loads.point_mass ~n:8 ~total:100 in
  let plain = Core.Engine.run ~graph:g ~balancer:(mk ()) ~init ~steps:30 () in
  let count = ref 0 in
  let tapped =
    Core.Tap.wrap (mk ()) ~on_assign:(fun ~step:_ ~node:_ ~load:_ ~ports:_ -> incr count)
  in
  let seen = Core.Engine.run ~graph:g ~balancer:tapped ~init ~steps:30 () in
  Alcotest.(check (array int))
    "identical dynamics" plain.Core.Engine.final_loads seen.Core.Engine.final_loads;
  check_int "observer called n*steps times" (8 * 30) !count

let test_tap_sees_filled_ports () =
  let g = Graphs.Gen.cycle 4 in
  let sums_ok = ref true in
  let tapped =
    Core.Tap.wrap
      (Core.Send_floor.make g ~self_loops:2)
      ~on_assign:(fun ~step:_ ~node:_ ~load ~ports ->
        if Array.fold_left ( + ) 0 ports <> load then sums_ok := false)
  in
  let init = Core.Loads.flat ~n:4 ~value:13 in
  ignore (Core.Engine.run ~graph:g ~balancer:tapped ~init ~steps:10 ());
  check_bool "ports filled before observation" true !sums_ok

(* --- Remainder (Proposition A.2) --- *)

let test_remainder_bound_send_floor () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let balancer, finish = Core.Remainder.wrap (Core.Send_floor.make g ~self_loops:4) in
  let init = Core.Loads.point_mass ~n:16 ~total:977 in
  ignore (Core.Engine.run ~graph:g ~balancer ~init ~steps:100 ());
  let rep = finish () in
  check_bool
    (Printf.sprintf "max |r| = %d ≤ d+ = %d" rep.Core.Remainder.max_abs_remainder
       rep.Core.Remainder.remainder_bound)
    true rep.Core.Remainder.bound_ok;
  check_int "observed all node-steps" (16 * 100) rep.Core.Remainder.observations

let test_remainder_bound_rotor_router () =
  let g = Graphs.Gen.cycle 12 in
  let balancer, finish = Core.Remainder.wrap (Core.Rotor_router.make g ~self_loops:2) in
  let init = Core.Loads.point_mass ~n:12 ~total:500 in
  ignore (Core.Engine.run ~graph:g ~balancer ~init ~steps:200 ());
  check_bool "rotor-router remainder bounded" true (finish ()).Core.Remainder.bound_ok

let test_remainder_identical_dynamics () =
  let g = Graphs.Gen.hypercube 3 in
  let init = Core.Loads.point_mass ~n:8 ~total:333 in
  let plain =
    Core.Engine.run ~graph:g ~balancer:(Core.Send_round.make g ~self_loops:6) ~init
      ~steps:50 ()
  in
  let wrapped, _ = Core.Remainder.wrap (Core.Send_round.make g ~self_loops:6) in
  let via = Core.Engine.run ~graph:g ~balancer:wrapped ~init ~steps:50 () in
  Alcotest.(check (array int))
    "A and A' move the same load" plain.Core.Engine.final_loads
    via.Core.Engine.final_loads

let test_remainder_rejects_no_self_loops () =
  let g = Graphs.Gen.cycle 5 in
  check_bool "rejected" true
    (try
       ignore (Core.Remainder.wrap (Core.Rotor_router.make g ~self_loops:0));
       false
     with Invalid_argument _ -> true)

(* --- Coloring (Lemma 3.5) --- *)

let coloring_all_ok (r : Core.Coloring.report) =
  r.Core.Coloring.rule1_ok && r.Core.Coloring.no_forced_downgrade
  && r.Core.Coloring.drop_dominated && r.Core.Coloring.phi_equals_red

let test_coloring_send_round () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let d = 4 in
  let init = Core.Loads.point_mass ~n:16 ~total:888 in
  (* c around the average load level over d+ = 16. *)
  List.iter
    (fun c ->
      let balancer = Core.Send_round.make g ~self_loops:(3 * d) in
      let r = Core.Coloring.check ~graph:g ~balancer ~s:d ~c ~init ~steps:200 in
      check_bool (Printf.sprintf "c=%d all invariants" c) true (coloring_all_ok r);
      check_int (Printf.sprintf "c=%d steps" c) 200 r.Core.Coloring.steps_checked)
    [ 2; 4; 8 ]

let test_coloring_rotor_router_star () =
  let g = Graphs.Gen.hypercube 4 in
  let init = Core.Loads.point_mass ~n:16 ~total:500 in
  let balancer = Core.Rotor_router_star.make g in
  let r = Core.Coloring.check ~graph:g ~balancer ~s:1 ~c:5 ~init ~steps:300 in
  check_bool "rotor-router* satisfies the coloring argument" true (coloring_all_ok r)

let test_coloring_recolor_count_is_phi_drop () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let d = 4 in
  let dp = d + (3 * d) in
  let c = 3 in
  let init = Core.Loads.point_mass ~n:16 ~total:700 in
  let balancer = Core.Send_round.make g ~self_loops:(3 * d) in
  let phi0 = Core.Potential.phi ~d_plus:dp ~c init in
  let r = Core.Coloring.check ~graph:g ~balancer ~s:d ~c ~init ~steps:400 in
  check_bool "all invariants" true (coloring_all_ok r);
  (* Run the same config again to get final loads. *)
  let run =
    Core.Engine.run ~graph:g
      ~balancer:(Core.Send_round.make g ~self_loops:(3 * d))
      ~init ~steps:400 ()
  in
  let phi_final = Core.Potential.phi ~d_plus:dp ~c run.Core.Engine.final_loads in
  check_int "total recolorings = φ drop" (phi0 - phi_final) r.Core.Coloring.total_recolored

let test_gap_coloring_send_round () =
  (* Lemma 3.7's symmetric argument on a live run: start low-heavy so
     the gap potential genuinely drains. *)
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let d = 4 in
  let init = Core.Loads.bimodal ~n:16 ~high:80 ~low:0 in
  List.iter
    (fun c ->
      let balancer = Core.Send_round.make g ~self_loops:(3 * d) in
      let r = Core.Coloring.check_gap ~graph:g ~balancer ~s:d ~c ~init ~steps:300 in
      check_bool (Printf.sprintf "gap c=%d all invariants" c) true (coloring_all_ok r))
    [ 1; 2 ]

let test_gap_coloring_recolor_count_is_phi'_drop () =
  let g = Graphs.Gen.hypercube 4 in
  let d = 4 in
  let d0 = 3 * d in
  let dp = d + d0 in
  let s = d in
  let c = 1 in
  let init = Core.Loads.bimodal ~n:16 ~high:66 ~low:2 in
  let balancer = Core.Send_round.make g ~self_loops:d0 in
  let phi0 = Core.Potential.phi' ~d_plus:dp ~s ~c init in
  let r = Core.Coloring.check_gap ~graph:g ~balancer ~s ~c ~init ~steps:400 in
  check_bool "all invariants" true (coloring_all_ok r);
  let run =
    Core.Engine.run ~graph:g
      ~balancer:(Core.Send_round.make g ~self_loops:d0)
      ~init ~steps:400 ()
  in
  let phi_final = Core.Potential.phi' ~d_plus:dp ~s ~c run.Core.Engine.final_loads in
  check_int "total recolorings = φ' drop" (phi0 - phi_final)
    r.Core.Coloring.total_recolored

let test_coloring_flags_bad_balancer () =
  (* A greedy balancer that is NOT round-fair must trip rule (1). *)
  let g = Graphs.Gen.cycle 6 in
  let greedy =
    {
      Core.Balancer.name = "greedy";
      degree = 2;
      self_loops = 2;
      props = Core.Balancer.paper_stateless;
      persist = None;
      assign =
        (fun ~step:_ ~node:_ ~load ~ports ->
          Array.fill ports 0 4 0;
          ports.(0) <- load);
    }
  in
  let init = Core.Loads.flat ~n:6 ~value:40 in
  let r = Core.Coloring.check ~graph:g ~balancer:greedy ~s:1 ~c:5 ~init ~steps:5 in
  check_bool "rule 1 violated" false r.Core.Coloring.rule1_ok

(* --- Metrics --- *)

let test_metrics_recorder () =
  let g = Graphs.Gen.complete 6 in
  let init = Core.Loads.point_mass ~n:6 ~total:60 in
  let t, hook = Core.Metrics.recorder () in
  hook 0 init;
  ignore
    (Core.Engine.run ~hook ~graph:g
       ~balancer:(Core.Rotor_router.make g ~self_loops:5)
       ~init ~steps:20 ());
  let samples = Core.Metrics.samples t in
  check_int "21 samples" 21 (Array.length samples);
  check_int "first is initial" 60 samples.(0).Core.Metrics.discrepancy;
  let last = samples.(20) in
  check_bool "converged" true (last.Core.Metrics.discrepancy <= 10);
  (* Quadratic potential of the continuous-like trajectory shrinks. *)
  check_bool "quadratic decreased" true
    (last.Core.Metrics.quadratic < samples.(0).Core.Metrics.quadratic)

let test_metrics_every () =
  let t, hook = Core.Metrics.recorder ~every:5 () in
  for step = 1 to 20 do
    hook step [| step; 0 |]
  done;
  let s = Core.Metrics.samples t in
  Alcotest.(check (list int)) "sampled steps" [ 5; 10; 15; 20 ]
    (Array.to_list (Array.map (fun x -> x.Core.Metrics.step) s))

let test_quadratic_potential () =
  Alcotest.(check (float 1e-9)) "flat" 0.0 (Core.Metrics.quadratic_potential [| 3; 3 |]);
  Alcotest.(check (float 1e-9)) "pair" 2.0 (Core.Metrics.quadratic_potential [| 2; 4 |])

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Core.Metrics.sparkline [||]);
  let s = Core.Metrics.sparkline [| 0.0; 1.0 |] in
  check_bool "two blocks" true (String.length s > 0);
  (* Monotone series renders monotone blocks: first char is the lowest
     block, last is the highest. *)
  let s = Core.Metrics.sparkline [| 0.0; 0.25; 0.5; 0.75; 1.0 |] in
  check_bool "starts low" true (String.sub s 0 3 = "\xe2\x96\x81");
  check_bool "ends high" true (String.sub s (String.length s - 3) 3 = "\xe2\x96\x88")

(* --- Quasirandom [9] --- *)

let test_quasirandom_bounded_error () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let balancer, max_err = Baselines.Quasirandom.make g ~self_loops:4 in
  let init = Core.Loads.point_mass ~n:16 ~total:1000 in
  ignore (Core.Engine.run ~graph:g ~balancer ~init ~steps:300 ());
  check_bool
    (Printf.sprintf "per-edge error %.3f < 1" (max_err ()))
    true
    (max_err () < 1.0)

let test_quasirandom_conserves_and_balances () =
  let g = Graphs.Gen.hypercube 4 in
  let balancer, _ = Baselines.Quasirandom.make g ~self_loops:4 in
  let init = Core.Loads.point_mass ~n:16 ~total:1600 in
  let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:300 () in
  check_int "mass" 1600 (Core.Loads.total r.Core.Engine.final_loads);
  check_bool "balanced" true (Core.Loads.discrepancy r.Core.Engine.final_loads <= 16)

let test_quasirandom_props () =
  let g = Graphs.Gen.cycle 4 in
  let balancer, _ = Baselines.Quasirandom.make g ~self_loops:1 in
  check_bool "deterministic" true balancer.Core.Balancer.props.deterministic;
  check_bool "may overdraw" false balancer.Core.Balancer.props.never_negative

(* --- randomized balancing circuit --- *)

let test_randomized_circuit_constant_on_torus () =
  let g = Graphs.Gen.torus [ 8; 8 ] in
  let init = Core.Loads.point_mass ~n:64 ~total:6400 in
  let rng = Prng.Splitmix.create 4 in
  let r =
    Baselines.Dimexch.run
      (Baselines.Dimexch.Balancing_circuit_randomized rng)
      g ~init ~steps:2000
  in
  let disc = Core.Loads.discrepancy r.Baselines.Dimexch.final_loads in
  check_bool (Printf.sprintf "constant discrepancy (got %d)" disc) true (disc <= 3)

let prop_remainder_bound_universal =
  QCheck.Test.make ~name:"Prop A.2 remainder bound holds for the paper's algorithms"
    ~count:40
    QCheck.(triple (int_range 0 2) (int_range 3 12) (int_range 0 1000))
    (fun (which, n, total) ->
      let g = Graphs.Gen.cycle n in
      let inner =
        match which with
        | 0 -> Core.Rotor_router.make g ~self_loops:2
        | 1 -> Core.Send_floor.make g ~self_loops:2
        | _ -> Core.Send_round.make g ~self_loops:2
      in
      let balancer, finish = Core.Remainder.wrap inner in
      let init = Core.Loads.point_mass ~n ~total in
      ignore (Core.Engine.run ~graph:g ~balancer ~init ~steps:40 ());
      (finish ()).Core.Remainder.bound_ok)

let prop_quasirandom_error_stays_bounded =
  QCheck.Test.make ~name:"quasirandom per-edge error < 1 on random inputs" ~count:30
    QCheck.(pair (int_range 4 16) (int_range 0 2000))
    (fun (n, total) ->
      let g = Graphs.Gen.cycle n in
      let balancer, max_err = Baselines.Quasirandom.make g ~self_loops:2 in
      let rng = Prng.Splitmix.create (n + total) in
      let init = Core.Loads.uniform_random rng ~n ~total in
      ignore (Core.Engine.run ~graph:g ~balancer ~init ~steps:60 ());
      max_err () < 1.0)

let () =
  Alcotest.run "analysis"
    [
      ( "tap",
        [
          Alcotest.test_case "transparent" `Quick test_tap_transparent;
          Alcotest.test_case "sees filled ports" `Quick test_tap_sees_filled_ports;
        ] );
      ( "remainder (Prop A.2)",
        [
          Alcotest.test_case "send-floor bounded" `Quick test_remainder_bound_send_floor;
          Alcotest.test_case "rotor-router bounded" `Quick
            test_remainder_bound_rotor_router;
          Alcotest.test_case "identical dynamics" `Quick test_remainder_identical_dynamics;
          Alcotest.test_case "needs self-loops" `Quick test_remainder_rejects_no_self_loops;
        ] );
      ( "coloring (Lemma 3.5)",
        [
          Alcotest.test_case "send-round invariants" `Quick test_coloring_send_round;
          Alcotest.test_case "rotor-router* invariants" `Quick
            test_coloring_rotor_router_star;
          Alcotest.test_case "recolorings = φ drop" `Quick
            test_coloring_recolor_count_is_phi_drop;
          Alcotest.test_case "gap coloring (Lemma 3.7)" `Quick
            test_gap_coloring_send_round;
          Alcotest.test_case "gap recolorings = φ' drop" `Quick
            test_gap_coloring_recolor_count_is_phi'_drop;
          Alcotest.test_case "flags bad balancer" `Quick test_coloring_flags_bad_balancer;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "recorder" `Quick test_metrics_recorder;
          Alcotest.test_case "every" `Quick test_metrics_every;
          Alcotest.test_case "quadratic potential" `Quick test_quadratic_potential;
          Alcotest.test_case "sparkline" `Quick test_sparkline;
        ] );
      ( "quasirandom [9]",
        [
          Alcotest.test_case "bounded error" `Quick test_quasirandom_bounded_error;
          Alcotest.test_case "conserves + balances" `Quick
            test_quasirandom_conserves_and_balances;
          Alcotest.test_case "properties" `Quick test_quasirandom_props;
        ] );
      ( "randomized circuit [10]",
        [
          Alcotest.test_case "constant on torus" `Quick
            test_randomized_circuit_constant_on_torus;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_remainder_bound_universal;
          QCheck_alcotest.to_alcotest prop_quasirandom_error_stays_bounded;
        ] );
    ]
