(* Tests for the sharded domain-parallel engine (lib/shard):

   - the partitioner covers every node exactly once and its cut-edge
     statistics are consistent;
   - the domain pool dispatches, barriers, maps and propagates
     exceptions;
   - Shard_engine.run is bit-identical to Core.Engine.run — final
     loads, full series, min_load_seen, reached_target, steps_run and
     the fairness audit — for every deterministic balancer, across
     shard counts 1–8, every partition strategy, on random regular
     graphs (property-tested) and fixed families;
   - a checkpoint saved at step k, restored and finished matches the
     uninterrupted run (golden round-trip), including across different
     shard counts and through lb_sim-style kill/resume. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let series_t = Alcotest.(array (pair int int))

let check_result_equal label (a : Core.Engine.result) (b : Core.Engine.result) =
  check_int (label ^ ": steps_run") a.Core.Engine.steps_run b.Core.Engine.steps_run;
  Alcotest.(check (array int))
    (label ^ ": final loads") a.Core.Engine.final_loads b.Core.Engine.final_loads;
  Alcotest.check series_t (label ^ ": series") a.Core.Engine.series
    b.Core.Engine.series;
  check_int (label ^ ": min_load_seen") a.Core.Engine.min_load_seen
    b.Core.Engine.min_load_seen;
  Alcotest.(check (option int))
    (label ^ ": reached_target") a.Core.Engine.reached_target
    b.Core.Engine.reached_target

(* ---------- Partition ---------- *)

let test_partition_covers_all () =
  let g = Graphs.Gen.torus [ 6; 6 ] in
  List.iter
    (fun strategy ->
      List.iter
        (fun shards ->
          let p = Shard.Partition.make ~strategy ~shards g in
          let seen = Array.make 36 0 in
          Array.iteri
            (fun s part ->
              Array.iter
                (fun u ->
                  seen.(u) <- seen.(u) + 1;
                  check_int "owner consistent" s (Shard.Partition.owner p u))
                part)
            p.Shard.Partition.parts;
          Array.iter (fun c -> check_int "covered once" 1 c) seen;
          let sizes = Array.map Array.length p.Shard.Partition.parts in
          let mn = Array.fold_left min max_int sizes
          and mx = Array.fold_left max 0 sizes in
          check_bool "balanced within one" true (mx - mn <= 1))
        [ 1; 2; 3; 5; 8 ])
    Shard.Partition.[ Contiguous; Round_robin; Bfs_blocks ]

let test_partition_stats () =
  let g = Graphs.Gen.cycle 16 in
  let p = Shard.Partition.make ~strategy:Shard.Partition.Contiguous ~shards:4 g in
  let s = Shard.Partition.stats p g in
  (* A cycle split into 4 contiguous arcs has exactly 4 cut edges. *)
  check_int "cycle cut" 4 s.Shard.Partition.cut_edges;
  check_int "edges partitioned" 16
    (s.Shard.Partition.cut_edges + s.Shard.Partition.internal_edges);
  (* Round-robin on a cycle cuts every edge. *)
  let p_rr = Shard.Partition.make ~strategy:Shard.Partition.Round_robin ~shards:4 g in
  let s_rr = Shard.Partition.stats p_rr g in
  check_int "round-robin cuts everything" 16 s_rr.Shard.Partition.cut_edges;
  (* BFS blocks on a cycle are contiguous arcs of the BFS order: the cut
     stays O(shards), far below the round-robin worst case. *)
  let p_bfs = Shard.Partition.make ~strategy:Shard.Partition.Bfs_blocks ~shards:4 g in
  let s_bfs = Shard.Partition.stats p_bfs g in
  check_bool "bfs cut small" true (s_bfs.Shard.Partition.cut_edges <= 8)

(* ---------- Pool ---------- *)

let test_pool_run_barrier () =
  Shard.Pool.with_pool ~domains:4 (fun pool ->
      let hits = Array.make 4 0 in
      Shard.Pool.run pool (fun w -> hits.(w) <- hits.(w) + 1);
      Shard.Pool.run pool (fun w -> hits.(w) <- hits.(w) + 1);
      Alcotest.(check (array int)) "each worker ran each phase" [| 2; 2; 2; 2 |] hits)

let test_pool_map () =
  Shard.Pool.with_pool ~domains:3 (fun pool ->
      let out = Shard.Pool.map pool (fun x -> x * x) (Array.init 20 Fun.id) in
      Alcotest.(check (array int))
        "squares in order"
        (Array.init 20 (fun i -> i * i))
        out)

let test_pool_exception_propagates () =
  check_bool "exception re-raised" true
    (try
       Shard.Pool.with_pool ~domains:2 (fun pool ->
           Shard.Pool.run pool (fun w -> if w = 1 then failwith "boom"));
       false
     with Failure m -> m = "boom")

(* ---------- Engine equivalence ---------- *)

type algo = { label : string; make : Graphs.Graph.t -> unit -> Core.Balancer.t }

let deterministic_algos =
  [
    { label = "rotor-router";
      make = (fun g () -> Core.Rotor_router.make g ~self_loops:(Graphs.Graph.degree g)) };
    { label = "rotor-router*";
      make = (fun g () -> Core.Rotor_router_star.make g) };
    { label = "send-floor";
      make = (fun g () -> Core.Send_floor.make g ~self_loops:1) };
    { label = "send-round";
      make =
        (fun g () -> Core.Send_round.make g ~self_loops:(2 * Graphs.Graph.degree g)) };
  ]

let run_both ?audit ?sample_every ?stop_at_discrepancy ?strategy ~shards ~graph
    ~algo ~init ~steps () =
  let seq =
    Core.Engine.run ?audit ?sample_every ?stop_at_discrepancy ~graph
      ~balancer:(algo.make graph ()) ~init ~steps ()
  in
  let par =
    Shard.Shard_engine.run ?audit ?sample_every ?stop_at_discrepancy ?strategy
      ~shards ~graph ~make_balancer:(algo.make graph) ~init ~steps ()
  in
  (seq, par)

let test_equivalence_fixed_families () =
  let graphs =
    [
      ("cycle24", Graphs.Gen.cycle 24);
      ("torus5x5", Graphs.Gen.torus [ 5; 5 ]);
      ("hypercube4", Graphs.Gen.hypercube 4);
    ]
  in
  List.iter
    (fun (gname, g) ->
      let n = Graphs.Graph.n g in
      let init = Core.Loads.point_mass ~n ~total:(37 * n) in
      List.iter
        (fun algo ->
          List.iter
            (fun shards ->
              let label = Printf.sprintf "%s/%s/%d-shards" gname algo.label shards in
              let seq, par = run_both ~shards ~graph:g ~algo ~init ~steps:40 () in
              check_result_equal label seq par)
            [ 1; 2; 4; 8 ])
        deterministic_algos)
    graphs

let test_equivalence_strategies_and_audit () =
  let g = Graphs.Gen.torus [ 6; 6 ] in
  let init = Core.Loads.bimodal ~n:36 ~high:97 ~low:3 in
  List.iter
    (fun strategy ->
      List.iter
        (fun algo ->
          let label =
            Printf.sprintf "%s/%s" algo.label (Shard.Partition.strategy_name strategy)
          in
          let seq, par =
            run_both ~audit:true ~sample_every:7 ~strategy ~shards:3 ~graph:g ~algo
              ~init ~steps:25 ()
          in
          check_result_equal label seq par;
          match (seq.Core.Engine.fairness, par.Core.Engine.fairness) with
          | Some a, Some b ->
            check_int (label ^ ": audit observations") a.Core.Fairness.observations
              b.Core.Fairness.observations;
            check_int (label ^ ": audit delta") a.Core.Fairness.cumulative_delta
              b.Core.Fairness.cumulative_delta;
            check_bool (label ^ ": audit round-fair") a.Core.Fairness.round_fair
              b.Core.Fairness.round_fair;
            check_bool (label ^ ": audit eq3") true
              (Float.equal a.Core.Fairness.eq3_deviation b.Core.Fairness.eq3_deviation)
          | _ -> Alcotest.fail (label ^ ": audit report missing"))
        deterministic_algos)
    Shard.Partition.[ Contiguous; Round_robin; Bfs_blocks ]

let test_equivalence_early_stop () =
  let g = Graphs.Gen.complete 8 in
  let init = Core.Loads.point_mass ~n:8 ~total:800 in
  let algo = List.hd deterministic_algos in
  let seq, par =
    run_both ~stop_at_discrepancy:20 ~shards:4 ~graph:g ~algo ~init ~steps:10_000 ()
  in
  check_bool "stopped early" true (seq.Core.Engine.reached_target <> None);
  check_result_equal "early-stop" seq par

let test_more_shards_than_nodes () =
  let g = Graphs.Gen.cycle 5 in
  let init = [| 50; 0; 0; 0; 0 |] in
  let algo = List.hd deterministic_algos in
  let seq, par = run_both ~shards:8 ~graph:g ~algo ~init ~steps:12 () in
  check_result_equal "8 shards on 5 nodes" seq par

let prop_equivalence_random_regular =
  QCheck.Test.make
    ~name:"Shard_engine ≡ Core.Engine on random regular graphs (all shard counts)"
    ~count:30
    QCheck.(
      quad (int_range 8 40) (int_range 3 6) (int_range 1 8) (int_range 0 10_000))
    (fun (n, d, shards, total) ->
      let n = if (n * d) mod 2 = 1 then n + 1 else n in
      let g = Graphs.Gen.random_regular (Prng.Splitmix.create 99) ~n ~d in
      let init = Core.Loads.uniform_random (Prng.Splitmix.create 7) ~n ~total in
      List.for_all
        (fun algo ->
          let seq, par = run_both ~shards ~graph:g ~algo ~init ~steps:15 () in
          seq.Core.Engine.final_loads = par.Core.Engine.final_loads
          && seq.Core.Engine.series = par.Core.Engine.series
          && seq.Core.Engine.min_load_seen = par.Core.Engine.min_load_seen)
        deterministic_algos)

(* ---------- Checkpoint ---------- *)

let temp_ckpt name = Filename.concat (Filename.get_temp_dir_name ()) name

exception Killed

let test_checkpoint_roundtrip_golden () =
  let g = Graphs.Gen.torus [ 5; 5 ] in
  let n = 25 in
  let init = Core.Loads.point_mass ~n ~total:2500 in
  let path = temp_ckpt "loadbal_test_ckpt_golden.bin" in
  List.iter
    (fun algo ->
      let make_balancer = algo.make g in
      let uninterrupted =
        Shard.Shard_engine.run ~shards:2 ~graph:g ~make_balancer ~init ~steps:30 ()
      in
      (* Run with periodic checkpoints; kill the run dead at step 19 by
         raising from the hook.  The latest surviving checkpoint is the
         one written after step 18. *)
      (try
         ignore
           (Shard.Shard_engine.run ~shards:2 ~graph:g ~make_balancer:(algo.make g)
              ~checkpoint:{ Shard.Shard_engine.path; every = 6 }
              ~hook:(fun t _ -> if t = 19 then raise Killed)
              ~init ~steps:30 ())
       with Killed -> ());
      let snap = Shard.Checkpoint.load ~path in
      check_int (algo.label ^ ": checkpoint step") 18 snap.Shard.Checkpoint.step;
      let resumed =
        Shard.Shard_engine.run ~shards:2 ~graph:g ~make_balancer:(algo.make g)
          ~resume:snap ~init ~steps:30 ()
      in
      check_result_equal (algo.label ^ ": resumed vs uninterrupted") uninterrupted
        resumed;
      Sys.remove path)
    deterministic_algos

let test_checkpoint_resume_different_shards () =
  (* State is stored per node, so a snapshot from an 8-shard run must
     resume correctly on 3 shards (and vice versa). *)
  let g = Graphs.Gen.hypercube 4 in
  let n = 16 in
  let init = Core.Loads.bimodal ~n ~high:300 ~low:4 in
  let path = temp_ckpt "loadbal_test_ckpt_reshard.bin" in
  let algo = List.hd deterministic_algos in
  let uninterrupted =
    Core.Engine.run ~graph:g ~balancer:(algo.make g ()) ~init ~steps:40 ()
  in
  (try
     ignore
       (Shard.Shard_engine.run ~shards:8 ~graph:g ~make_balancer:(algo.make g)
          ~checkpoint:{ Shard.Shard_engine.path; every = 10 }
          ~hook:(fun t _ -> if t = 25 then raise Killed)
          ~init ~steps:40 ())
   with Killed -> ());
  let snap = Shard.Checkpoint.load ~path in
  let resumed =
    Shard.Shard_engine.run ~shards:3 ~graph:g ~make_balancer:(algo.make g)
      ~resume:snap ~init ~steps:40 ()
  in
  check_result_equal "reshard resume vs sequential" uninterrupted resumed;
  Sys.remove path

let test_checkpoint_corrupt_rejected () =
  let path = temp_ckpt "loadbal_test_ckpt_corrupt.bin" in
  let oc = open_out_bin path in
  output_string oc "not a checkpoint at all";
  close_out oc;
  check_bool "corrupt rejected" true
    (try
       ignore (Shard.Checkpoint.load ~path);
       false
     with Shard.Checkpoint.Checkpoint_error _ -> true);
  (* Shorter than the magic header: the reader must not leak End_of_file. *)
  let oc = open_out_bin path in
  output_string oc "garbage";
  close_out oc;
  check_bool "truncated rejected" true
    (try
       ignore (Shard.Checkpoint.load ~path);
       false
     with Shard.Checkpoint.Checkpoint_error _ -> true);
  Sys.remove path;
  check_bool "missing rejected" true
    (try
       ignore (Shard.Checkpoint.load ~path:(temp_ckpt "loadbal_no_such_ckpt.bin"));
       false
     with Shard.Checkpoint.Checkpoint_error _ -> true)

let test_checkpoint_checksum_detects_bitflip () =
  let g = Graphs.Gen.cycle 12 in
  let init = Core.Loads.point_mass ~n:12 ~total:600 in
  let path = temp_ckpt "loadbal_test_ckpt_bitflip.bin" in
  let algo = List.hd deterministic_algos in
  (try
     ignore
       (Shard.Shard_engine.run ~shards:2 ~graph:g ~make_balancer:(algo.make g)
          ~checkpoint:{ Shard.Shard_engine.path; every = 5 }
          ~hook:(fun t _ -> if t = 7 then raise Killed)
          ~init ~steps:20 ())
   with Killed -> ());
  (* Flip one bit in the middle of the marshalled payload. *)
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string contents in
  let i = Bytes.length b - (Bytes.length b / 4) in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  (match Shard.Checkpoint.load ~path with
  | (_ : Shard.Checkpoint.snapshot) -> Alcotest.fail "bit flip not detected"
  | exception Shard.Checkpoint.Checkpoint_error (Shard.Checkpoint.Bad_checksum _) ->
    ()
  | exception Shard.Checkpoint.Checkpoint_error e ->
    Alcotest.fail
      ("expected Bad_checksum, got: " ^ Shard.Checkpoint.error_message e));
  Sys.remove path

let test_checkpoint_prev_fallback_golden () =
  (* Golden recovery path: the primary checkpoint is truncated mid-write;
     recover must fall back to the rotated [.prev] copy and the resumed
     run must be bit-identical to the uninterrupted one. *)
  let g = Graphs.Gen.torus [ 5; 5 ] in
  let init = Core.Loads.bimodal ~n:25 ~high:211 ~low:9 in
  let path = temp_ckpt "loadbal_test_ckpt_prevfall.bin" in
  let algo = List.hd deterministic_algos in
  let uninterrupted =
    Shard.Shard_engine.run ~shards:2 ~graph:g ~make_balancer:(algo.make g) ~init
      ~steps:30 ()
  in
  (* Checkpoints land after steps 6, 12 and 18; the rotation keeps 12 as
     [.prev] once 18 is published, then the hook kills the run. *)
  (try
     ignore
       (Shard.Shard_engine.run ~shards:2 ~graph:g ~make_balancer:(algo.make g)
          ~checkpoint:{ Shard.Shard_engine.path; every = 6 }
          ~hook:(fun t _ -> if t = 19 then raise Killed)
          ~init ~steps:30 ())
   with Killed -> ());
  check_bool "rotated copy exists" true
    (Sys.file_exists (Shard.Checkpoint.prev_path path));
  (* Intact primary: recover picks it and rejects nothing. *)
  let r = Shard.Checkpoint.recover ~retries:0 ~path () in
  check_bool "intact primary chosen" true (r.Shard.Checkpoint.source = Shard.Checkpoint.Primary);
  check_int "intact primary step" 18 r.Shard.Checkpoint.snapshot.Shard.Checkpoint.step;
  check_int "nothing rejected" 0 (List.length r.Shard.Checkpoint.rejected);
  (* Truncate the primary as if the writer died mid-write. *)
  let contents = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub contents 0 (String.length contents / 2)));
  let r = Shard.Checkpoint.recover ~retries:0 ~path () in
  check_bool "fell back to .prev" true
    (r.Shard.Checkpoint.source = Shard.Checkpoint.Rotated);
  check_int "rotated snapshot step" 12 r.Shard.Checkpoint.snapshot.Shard.Checkpoint.step;
  check_bool "primary rejection recorded" true
    (List.exists (fun (p, _) -> p = path) r.Shard.Checkpoint.rejected);
  let resumed =
    Shard.Shard_engine.run ~shards:2 ~graph:g ~make_balancer:(algo.make g)
      ~resume:r.Shard.Checkpoint.snapshot ~init ~steps:30 ()
  in
  check_result_equal "resume from .prev vs uninterrupted" uninterrupted resumed;
  Sys.remove path;
  Sys.remove (Shard.Checkpoint.prev_path path);
  (* Both copies gone: recover surfaces the full rejected-file report —
     one Missing entry per file tried, plus the attempt count. *)
  check_bool "recover with nothing left fails with the report" true
    (try
       ignore (Shard.Checkpoint.recover ~retries:0 ~path ());
       false
     with
     | Shard.Checkpoint.Checkpoint_error
         (Shard.Checkpoint.Unrecoverable { path = p; attempts; rejected }) ->
       p = path && attempts = 1
       && List.length rejected = 2
       && List.for_all
            (fun (_, e) ->
              match e with Shard.Checkpoint.Missing _ -> true | _ -> false)
            rejected)

let test_unresumable_balancer_rejected () =
  (* Mimic is stateful without a persist capability: asking for
     checkpoints must fail fast, not produce broken snapshots. *)
  let g = Graphs.Gen.cycle 8 in
  let init = Core.Loads.point_mass ~n:8 ~total:64 in
  check_bool "mimic rejected" true
    (try
       ignore
         (Shard.Shard_engine.run ~shards:2 ~graph:g
            ~make_balancer:(fun () -> Baselines.Mimic.make g ~self_loops:2 ~init)
            ~checkpoint:
              { Shard.Shard_engine.path = temp_ckpt "loadbal_never.bin"; every = 5 }
            ~init ~steps:10 ())
       |> ignore;
       false
     with Shard.Checkpoint.Checkpoint_error _ -> true)

let () =
  Alcotest.run "shard"
    [
      ( "partition",
        [
          Alcotest.test_case "covers all nodes, balanced" `Quick
            test_partition_covers_all;
          Alcotest.test_case "cut-edge statistics" `Quick test_partition_stats;
        ] );
      ( "pool",
        [
          Alcotest.test_case "run is a barrier" `Quick test_pool_run_barrier;
          Alcotest.test_case "map preserves order" `Quick test_pool_map;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_exception_propagates;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "fixed families × algos × 1/2/4/8 shards" `Quick
            test_equivalence_fixed_families;
          Alcotest.test_case "strategies × audit parity" `Quick
            test_equivalence_strategies_and_audit;
          Alcotest.test_case "early stop parity" `Quick test_equivalence_early_stop;
          Alcotest.test_case "more shards than nodes" `Quick
            test_more_shards_than_nodes;
          QCheck_alcotest.to_alcotest prop_equivalence_random_regular;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "kill/restore round-trip golden" `Quick
            test_checkpoint_roundtrip_golden;
          Alcotest.test_case "resume with different shard count" `Quick
            test_checkpoint_resume_different_shards;
          Alcotest.test_case "corrupt/missing files rejected" `Quick
            test_checkpoint_corrupt_rejected;
          Alcotest.test_case "checksum detects bit flip" `Quick
            test_checkpoint_checksum_detects_bitflip;
          Alcotest.test_case "truncated primary falls back to .prev" `Quick
            test_checkpoint_prev_fallback_golden;
          Alcotest.test_case "unresumable balancer rejected" `Quick
            test_unresumable_balancer_rejected;
        ] );
    ]
