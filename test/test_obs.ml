(* Tests for lib/obs: the metrics registry, snapshot timeline, profiler,
   engine probes (including the φ/φ′ cross-check against
   Core.Potential), the Prometheus/JSONL export — and the property the
   whole subsystem stands on: probes only observe, so every engine is
   bit-identical with probes on and off. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Metrics --- *)

let test_counter () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:r "lb_test_total" in
  check_int "fresh" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.inc c 3;
  Obs.Metrics.inc c 4;
  check_int "after incs" 7 (Obs.Metrics.counter_value c);
  check_bool "negative inc rejected" true
    (try
       Obs.Metrics.inc c (-1);
       false
     with Invalid_argument _ -> true);
  (* set_counter mirrors an external monotone value and never rewinds. *)
  Obs.Metrics.set_counter c 5;
  check_int "set_counter cannot rewind" 7 (Obs.Metrics.counter_value c);
  Obs.Metrics.set_counter c 12;
  check_int "set_counter advances" 12 (Obs.Metrics.counter_value c)

let test_interning () =
  let r = Obs.Metrics.create () in
  let a = Obs.Metrics.counter ~registry:r ~labels:[ ("k", "v") ] "lb_i_total" in
  let b = Obs.Metrics.counter ~registry:r ~labels:[ ("k", "v") ] "lb_i_total" in
  Obs.Metrics.inc a 1;
  Obs.Metrics.inc b 1;
  check_int "same cell" 2 (Obs.Metrics.counter_value a);
  let other = Obs.Metrics.counter ~registry:r ~labels:[ ("k", "w") ] "lb_i_total" in
  check_int "different labels, different cell" 0 (Obs.Metrics.counter_value other);
  check_bool "kind clash rejected" true
    (try
       ignore (Obs.Metrics.gauge ~registry:r ~labels:[ ("k", "v") ] "lb_i_total");
       false
     with Invalid_argument _ -> true);
  check_bool "bad name rejected" true
    (try
       ignore (Obs.Metrics.counter ~registry:r "99 bad name");
       false
     with Invalid_argument _ -> true)

let test_gauge_and_reset () =
  let r = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge ~registry:r "lb_g" in
  Obs.Metrics.set g 4.25;
  check_float "gauge set" 4.25 (Obs.Metrics.gauge_value g);
  let c = Obs.Metrics.counter ~registry:r "lb_c_total" in
  Obs.Metrics.inc c 9;
  Obs.Metrics.reset ~registry:r ();
  check_float "gauge zeroed" 0.0 (Obs.Metrics.gauge_value g);
  check_int "counter zeroed" 0 (Obs.Metrics.counter_value c);
  (* Registration survives the reset: the handle still updates the
     registry's cell. *)
  Obs.Metrics.inc c 2;
  check_int "handle still live" 2 (Obs.Metrics.counter_value c)

let test_histogram () =
  let r = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~registry:r "lb_h_seconds" in
  List.iter (Obs.Metrics.observe h) [ 0.001; 0.003; 0.5; 100.0; 0.0 ];
  check_int "count" 5 (Obs.Metrics.histogram_count h);
  check_float "sum" 100.504 (Obs.Metrics.histogram_sum h);
  match Obs.Metrics.snapshot ~registry:r () with
  | [ { Obs.Metrics.value = Obs.Metrics.Histogram_value { cumulative; count; _ }; _ } ] ->
    check_int "snapshot count" 5 count;
    (* Cumulative counts are non-decreasing and end at (+inf, count). *)
    let rec monotone prev = function
      | [] -> Alcotest.fail "empty cumulative list"
      | [ (ub, c) ] ->
        check_bool "last bound is +inf" true (ub = infinity);
        check_int "last cumulative is total" 5 c
      | (_, c) :: rest ->
        check_bool "monotone" true (c >= prev);
        monotone c rest
    in
    monotone 0 cumulative
  | _ -> Alcotest.fail "expected exactly one histogram sample"

let test_snapshot_sorted () =
  let r = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter ~registry:r "lb_z_total");
  ignore (Obs.Metrics.counter ~registry:r "lb_a_total");
  ignore (Obs.Metrics.counter ~registry:r ~labels:[ ("engine", "b") ] "lb_m_total");
  ignore (Obs.Metrics.counter ~registry:r ~labels:[ ("engine", "a") ] "lb_m_total");
  let names =
    List.map (fun s -> (s.Obs.Metrics.name, s.Obs.Metrics.labels))
      (Obs.Metrics.snapshot ~registry:r ())
  in
  Alcotest.(check (list (pair string (list (pair string string)))))
    "sorted by (name, labels)"
    [
      ("lb_a_total", []);
      ("lb_m_total", [ ("engine", "a") ]);
      ("lb_m_total", [ ("engine", "b") ]);
      ("lb_z_total", []);
    ]
    names

(* --- Timeline --- *)

let test_timeline_ring () =
  let t = Obs.Timeline.create ~capacity:3 in
  check_int "empty" 0 (Obs.Timeline.length t);
  Alcotest.(check (option int)) "no last" None (Obs.Timeline.last t);
  List.iter (Obs.Timeline.push t) [ 1; 2; 3 ];
  Alcotest.(check (array int)) "full, in order" [| 1; 2; 3 |] (Obs.Timeline.to_array t);
  List.iter (Obs.Timeline.push t) [ 4; 5 ];
  Alcotest.(check (array int)) "oldest overwritten" [| 3; 4; 5 |]
    (Obs.Timeline.to_array t);
  check_int "dropped" 2 (Obs.Timeline.dropped t);
  Alcotest.(check (option int)) "last" (Some 5) (Obs.Timeline.last t);
  Obs.Timeline.clear t;
  check_int "cleared" 0 (Obs.Timeline.length t);
  check_int "dropped reset" 0 (Obs.Timeline.dropped t);
  check_bool "capacity >= 1 enforced" true
    (try
       ignore (Obs.Timeline.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* --- Prof --- *)

let test_prof () =
  Obs.Prof.reset ();
  Obs.Prof.set_enabled false;
  check_int "disabled records nothing"
    0
    (Obs.Prof.time "ghost" (fun () -> List.length (Obs.Prof.phases ())));
  Obs.Prof.set_enabled true;
  for _ = 1 to 3 do
    Obs.Prof.time "work" (fun () -> Sys.opaque_identity (Array.make 64 0)) |> ignore
  done;
  let sp = Obs.Prof.start "other" in
  Obs.Prof.stop sp;
  (match Obs.Prof.phases () with
  | [] -> Alcotest.fail "no phases recorded"
  | phases ->
    check_int "two phases" 2 (List.length phases);
    let work = List.find (fun p -> p.Obs.Prof.name = "work") phases in
    check_int "calls accumulated" 3 work.Obs.Prof.calls;
    check_bool "time is non-negative" true (work.Obs.Prof.seconds >= 0.0);
    check_bool "allocation observed" true (work.Obs.Prof.minor_words > 0.0));
  (* Exception safety: the span still closes. *)
  (try Obs.Prof.time "boom" (fun () -> failwith "x") with Failure _ -> ());
  let boom = List.find (fun p -> p.Obs.Prof.name = "boom") (Obs.Prof.phases ()) in
  check_int "span closed on exception" 1 boom.Obs.Prof.calls;
  check_bool "report has lines" true (List.length (Obs.Prof.report_lines ()) > 2);
  Obs.Prof.set_enabled false;
  Obs.Prof.reset ();
  check_int "reset" 0 (List.length (Obs.Prof.phases ()))

(* --- Probe: potentials cross-check and timeline --- *)

let test_probe_potentials_match_core () =
  let prng = Prng.Splitmix.create 42 in
  let registry = Obs.Metrics.create () in
  for trial = 1 to 20 do
    let n = 4 + Prng.Splitmix.int prng 60 in
    let d_plus = 1 + Prng.Splitmix.int prng 12 in
    let loads = Array.init n (fun _ -> Prng.Splitmix.int prng 50) in
    Obs.Probe.enable ~registry ~every:1 ();
    Obs.Probe.on_round ~engine:"core" ~d_plus ~step:1 ~tokens_moved:0
      ~discrepancy:0 ~max_load:0 ~min_load:0 ~loads;
    let snap =
      match Obs.Probe.timeline () with
      | [| s |] -> s
      | a -> Alcotest.failf "expected 1 snapshot, got %d" (Array.length a)
    in
    Obs.Probe.disable ();
    let c = snap.Obs.Probe.c_threshold in
    check_int
      (Printf.sprintf "trial %d: phi matches Core.Potential.phi" trial)
      (Core.Potential.phi ~d_plus ~c loads)
      snap.Obs.Probe.phi;
    check_int
      (Printf.sprintf "trial %d: phi' matches Core.Potential.phi'" trial)
      (Core.Potential.phi' ~d_plus ~s:0 ~c loads)
      snap.Obs.Probe.phi_prime;
    check_int
      (Printf.sprintf "trial %d: total" trial)
      (Core.Loads.total loads) snap.Obs.Probe.total
  done

let test_probe_cadence_and_sink () =
  let registry = Obs.Metrics.create () in
  Obs.Probe.enable ~registry ~every:5 ~timeline_capacity:8 ();
  let sunk = ref [] in
  Obs.Probe.set_sink (Some (fun s -> sunk := s.Obs.Probe.step :: !sunk));
  let loads = [| 3; 1 |] in
  for step = 1 to 23 do
    Obs.Probe.on_round ~engine:"core" ~d_plus:2 ~step ~tokens_moved:1
      ~discrepancy:2 ~max_load:3 ~min_load:1 ~loads
  done;
  (* Snapshots land only on steps 5, 10, 15, 20 … *)
  Alcotest.(check (list int)) "sink saw the cadence" [ 20; 15; 10; 5 ] !sunk;
  check_int "timeline holds them" 4 (Array.length (Obs.Probe.timeline ()));
  (* … but the cheap counters saw every round. *)
  let rounds =
    Obs.Metrics.counter ~registry ~labels:[ ("engine", "core") ] "lb_rounds_total"
  in
  check_int "every round counted" 23 (Obs.Metrics.counter_value rounds);
  Obs.Probe.disable ();
  check_int "disabled timeline is empty" 0 (Array.length (Obs.Probe.timeline ()));
  (* Probes are inert when disabled. *)
  Obs.Probe.on_round ~engine:"core" ~d_plus:2 ~step:99 ~tokens_moved:1
    ~discrepancy:2 ~max_load:3 ~min_load:1 ~loads;
  check_int "no update while disabled" 23 (Obs.Metrics.counter_value rounds)

(* --- Export --- *)

let test_prometheus_format () =
  let registry = Obs.Metrics.create () in
  let c1 =
    Obs.Metrics.counter ~registry ~help:"Rounds." ~labels:[ ("engine", "core") ]
      "lb_rounds_total"
  in
  let c2 =
    Obs.Metrics.counter ~registry ~help:"Rounds." ~labels:[ ("engine", "net") ]
      "lb_rounds_total"
  in
  Obs.Metrics.inc c1 7;
  Obs.Metrics.inc c2 9;
  let g = Obs.Metrics.gauge ~registry ~help:"Gap with \"quotes\" and \\." "lb_gap" in
  Obs.Metrics.set g 1.5;
  let h = Obs.Metrics.histogram ~registry ~help:"H." "lb_h_seconds" in
  Obs.Metrics.observe h 0.25;
  let text = Obs.Export.prometheus ~registry () in
  check_bool "single HELP per metric name" true
    (contains ~needle:"# HELP lb_rounds_total Rounds." text
    && not
         (contains
            ~needle:
              "# HELP lb_rounds_total Rounds.\n\
               lb_rounds_total{engine=\"core\"} 7\n\
               # HELP lb_rounds_total"
            text));
  check_bool "TYPE counter" true (contains ~needle:"# TYPE lb_rounds_total counter" text);
  check_bool "core sample" true (contains ~needle:"lb_rounds_total{engine=\"core\"} 7" text);
  check_bool "net sample" true (contains ~needle:"lb_rounds_total{engine=\"net\"} 9" text);
  check_bool "gauge sample" true (contains ~needle:"lb_gap 1.5" text);
  check_bool "histogram bucket series" true (contains ~needle:"lb_h_seconds_bucket{le=" text);
  check_bool "+Inf bucket" true (contains ~needle:"le=\"+Inf\"} 1" text);
  check_bool "histogram sum" true (contains ~needle:"lb_h_seconds_sum 0.25" text);
  check_bool "histogram count" true (contains ~needle:"lb_h_seconds_count 1" text);
  check_bool "help escapes backslash" true
    (contains ~needle:"Gap with \"quotes\" and \\\\." text)

let test_export_write_and_json () =
  let registry = Obs.Metrics.create () in
  Obs.Metrics.inc (Obs.Metrics.counter ~registry "lb_w_total") 3;
  let path = Filename.temp_file "obs_test" ".prom" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Export.write ~path ~registry ();
      let ic = open_in path in
      let content =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check_string "file matches renderer" (Obs.Export.prometheus ~registry ()) content);
  let snap =
    {
      Obs.Probe.at = 1.5;
      engine = "core";
      step = 42;
      discrepancy = 7;
      max_load = 20;
      min_load = 13;
      total = 640;
      c_threshold = 3;
      phi = 11;
      phi_prime = 5;
      tokens_moved = 1234;
    }
  in
  let json = Obs.Export.snapshot_json snap in
  check_bool "single line" true (not (String.contains json '\n'));
  List.iter
    (fun needle -> check_bool needle true (contains ~needle json))
    [
      "\"engine\": \"core\"";
      "\"step\": 42";
      "\"discrepancy\": 7";
      "\"phi\": 11";
      "\"phi_prime\": 5";
      "\"tokens_moved\": 1234";
    ]

let test_sigusr1_deferred_to_poll () =
  (* The SIGUSR1 handler is async-signal-safe: it only sets a flag, so
     nothing may be written until the next round boundary calls poll. *)
  let registry = Obs.Metrics.create () in
  Obs.Metrics.inc (Obs.Metrics.counter ~registry "lb_scrape_total") 9;
  let path = Filename.temp_file "obs_test_usr1" ".prom" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      check_bool "handler installed" true
        (Obs.Export.install_sigusr1 ~path ~registry ());
      Unix.kill (Unix.getpid ()) Sys.sigusr1;
      check_bool "no write before the round boundary" false (Sys.file_exists path);
      Obs.Export.poll ();
      check_bool "poll serviced the request" true (Sys.file_exists path);
      Sys.remove path;
      (* No pending request: poll is a no-op. *)
      Obs.Export.poll ();
      check_bool "poll without a request writes nothing" false
        (Sys.file_exists path))

(* --- Probes only observe: engines are bit-identical on/off --- *)

let with_probes_off f =
  Obs.Probe.disable ();
  f ()

let with_probes_on f =
  (* A throwaway registry so these property runs don't pollute the
     default one other tests read. *)
  Obs.Probe.enable ~registry:(Obs.Metrics.create ()) ~every:3 ();
  Fun.protect ~finally:Obs.Probe.disable f

let result_fingerprint (r : Core.Engine.result) =
  (Array.to_list r.Core.Engine.final_loads, r.Core.Engine.steps_run,
   Array.to_list r.Core.Engine.series, r.Core.Engine.min_load_seen)

let equiv_core =
  QCheck.Test.make ~count:30 ~name:"core engine bit-identical with probes on"
    QCheck.(triple (int_range 8 40) (int_range 1 60) small_nat)
    (fun (n, steps, seed) ->
      let g = Graphs.Gen.random_regular (Prng.Splitmix.create (seed + 1)) ~n:(2 * n) ~d:4 in
      let init =
        Core.Loads.uniform_random (Prng.Splitmix.create (seed + 2)) ~n:(2 * n)
          ~total:(64 * n)
      in
      let run () =
        Core.Engine.run ~graph:g
          ~balancer:(Core.Rotor_router.make g ~self_loops:4)
          ~init ~steps ()
      in
      result_fingerprint (with_probes_off run)
      = result_fingerprint (with_probes_on run))

let equiv_faults =
  QCheck.Test.make ~count:20 ~name:"faults engine bit-identical with probes on"
    QCheck.(triple (int_range 8 32) (int_range 10 40) small_nat)
    (fun (n, steps, seed) ->
      let g = Graphs.Gen.cycle (4 * n) in
      let init =
        Core.Loads.uniform_random (Prng.Splitmix.create (seed + 3)) ~n:(4 * n)
          ~total:(32 * n)
      in
      let plan =
        [
          {
            Faults.Schedule.step = 1 + (steps / 2);
            event =
              Faults.Schedule.Crash
                {
                  node = seed mod (4 * n);
                  state = Faults.Schedule.Wipe_state;
                  tokens = Faults.Schedule.Spill_tokens;
                };
          };
        ]
      in
      let run () =
        let report =
          Faults.Engine.run ~graph:g
            ~make_balancer:(fun () -> Core.Rotor_router.make g ~self_loops:2)
            ~plan ~init ~steps ()
        in
        ( result_fingerprint report.Faults.Engine.result,
          List.map
            (fun (e : Faults.Engine.episode) ->
              (e.Faults.Engine.step, e.Faults.Engine.recovered_at,
               e.Faults.Engine.worst_discrepancy))
            report.Faults.Engine.episodes,
          report.Faults.Engine.final_total )
      in
      with_probes_off run = with_probes_on run)

let equiv_net =
  QCheck.Test.make ~count:15 ~name:"net engine bit-identical with probes on"
    QCheck.(triple (int_range 4 6) (int_range 10 40) small_nat)
    (fun (r, steps, seed) ->
      let g = Graphs.Gen.hypercube r in
      let n = Graphs.Graph.n g in
      let init =
        Core.Loads.uniform_random (Prng.Splitmix.create (seed + 4)) ~n ~total:(16 * n)
      in
      let config =
        {
          Net.Async_engine.default_config with
          Net.Async_engine.channel =
            { Net.Channel.drop = 0.1; dup = 0.05; reorder = 0.1; delay = 1 };
          staleness = 1;
          seed = seed + 5;
        }
      in
      let run () =
        let report =
          Net.Async_engine.run ~config ~graph:g
            ~balancer:(Core.Send_floor.make g ~self_loops:r)
            ~init ~steps ()
        in
        ( result_fingerprint report.Net.Async_engine.result,
          report.Net.Async_engine.final_total,
          report.Net.Async_engine.degraded_rounds,
          report.Net.Async_engine.drain_rounds )
      in
      with_probes_off run = with_probes_on run)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "interning" `Quick test_interning;
          Alcotest.test_case "gauge and reset" `Quick test_gauge_and_reset;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
        ] );
      ( "timeline",
        [ Alcotest.test_case "ring buffer" `Quick test_timeline_ring ] );
      ("prof", [ Alcotest.test_case "spans" `Quick test_prof ]);
      ( "probe",
        [
          Alcotest.test_case "potentials match Core.Potential" `Quick
            test_probe_potentials_match_core;
          Alcotest.test_case "cadence and sink" `Quick test_probe_cadence_and_sink;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
          Alcotest.test_case "write + snapshot json" `Quick
            test_export_write_and_json;
          Alcotest.test_case "sigusr1 deferred to poll" `Quick
            test_sigusr1_deferred_to_poll;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest equiv_core;
          QCheck_alcotest.to_alcotest equiv_faults;
          QCheck_alcotest.to_alcotest equiv_net;
        ] );
    ]
