(* The benchmark harness (deliverable (d)).

   One section per table/figure-equivalent of the paper — E1 (Table 1)
   through E10, see DESIGN.md §4 — plus Bechamel microbenchmarks of the
   engine's per-step throughput for each algorithm family.

   Usage:
     dune exec bench/main.exe                 # full suite + microbenchmarks
     dune exec bench/main.exe -- --quick      # smoke-test sizes
     dune exec bench/main.exe -- e3 e7        # selected experiments
     dune exec bench/main.exe -- micro        # microbenchmarks only
     dune exec bench/main.exe -- shard        # sharded-engine strong scaling
     dune exec bench/main.exe -- faults       # fault-recovery sweep (BENCH_faults.json)
     dune exec bench/main.exe -- net          # unreliable-network sweep (BENCH_net.json)
     dune exec bench/main.exe -- obs          # probes-on overhead (BENCH_obs.json)
     dune exec bench/main.exe -- workload     # open-system stability sweep (BENCH_workload.json)
     dune exec bench/main.exe -- dist         # forked-cluster throughput + recovery (BENCH_dist.json)
     dune exec bench/main.exe -- --csv out.csv e1
*)

let microbench_tests () =
  let open Bechamel in
  let mk_engine_test ~name ~graph ~balancer_of ~init ~steps =
    Test.make ~name
      (Staged.stage (fun () ->
           let balancer = balancer_of () in
           ignore (Core.Engine.run ~graph ~balancer ~init ~steps ())))
  in
  let n = 1024 in
  let d = 8 in
  let g = Graphs.Gen.random_regular (Prng.Splitmix.create 1) ~n ~d in
  let init = Core.Loads.point_mass ~n ~total:(16 * n) in
  let steps = 8 in
  [
    mk_engine_test ~name:"rotor-router/1024n-8steps" ~graph:g
      ~balancer_of:(fun () -> Core.Rotor_router.make g ~self_loops:d)
      ~init ~steps;
    mk_engine_test ~name:"rotor-router*/1024n-8steps" ~graph:g
      ~balancer_of:(fun () -> Core.Rotor_router_star.make g)
      ~init ~steps;
    mk_engine_test ~name:"send-floor/1024n-8steps" ~graph:g
      ~balancer_of:(fun () -> Core.Send_floor.make g ~self_loops:d)
      ~init ~steps;
    mk_engine_test ~name:"send-round/1024n-8steps" ~graph:g
      ~balancer_of:(fun () -> Core.Send_round.make g ~self_loops:(2 * d))
      ~init ~steps;
    mk_engine_test ~name:"mimic/1024n-8steps" ~graph:g
      ~balancer_of:(fun () -> Baselines.Mimic.make g ~self_loops:d ~init)
      ~init ~steps;
    mk_engine_test ~name:"random-extra/1024n-8steps" ~graph:g
      ~balancer_of:(fun () ->
        Baselines.Random_extra.make (Prng.Splitmix.create 2) g ~self_loops:d)
      ~init ~steps;
    Test.make ~name:"continuous/1024n-8steps"
      (Staged.stage
         (let finit = Array.map float_of_int init in
          fun () ->
            ignore
              (Baselines.Continuous.run ~graph:g ~self_loops:d ~init:finit ~steps ())));
    Test.make ~name:"spectral-gap/torus16x16"
      (Staged.stage
         (let gt = Graphs.Gen.torus [ 16; 16 ] in
          fun () -> ignore (Graphs.Spectral.eigenvalue_gap gt ~self_loops:4)));
    Test.make ~name:"dimexch-circuit/1024n-8steps"
      (Staged.stage (fun () ->
           ignore
             (Baselines.Dimexch.run Baselines.Dimexch.Balancing_circuit g ~init ~steps)));
    Test.make ~name:"irregular-rotor/wheel256-8steps"
      (Staged.stage
         (let wg = Irregular.Igraph.wheel 256 in
          let cap = 2 * Irregular.Igraph.max_degree wg in
          let winit = Array.make 256 16 in
          fun () ->
            let balancer = Irregular.Ibalancer.rotor_router wg ~capacity:cap in
            ignore (Irregular.Iengine.run ~graph:wg ~balancer ~init:winit ~steps ())));
    Test.make ~name:"weighted-rotor/256n-8steps"
      (Staged.stage
         (let wg = Graphs.Gen.torus [ 16; 16 ] in
          let winit =
            Hetero.Wtokens.uniform_random (Prng.Splitmix.create 7) ~n:256 ~tokens:2048
              ~max_weight:4
          in
          fun () ->
            ignore
              (Hetero.Wtokens.run Hetero.Wtokens.Oblivious ~graph:wg ~self_loops:4
                 ~init:winit ~steps)));
    Test.make ~name:"rotor-walk-cover/torus16x16"
      (Staged.stage
         (let wg = Graphs.Gen.torus [ 16; 16 ] in
          fun () ->
            ignore (Rotorwalk.Walk.cover_time (Rotorwalk.Walk.create wg) ~start:0)));
  ]

(* Strong-scaling section: the sharded engine at 1/2/4/8 domains on
   random 8-regular graphs of n ∈ {2¹⁴, 2¹⁷, 2²⁰}, reported as
   steps/sec and written to BENCH_shard.json.  The step budget per cell
   is inversely proportional to n so every cell does comparable work. *)
let run_shard_scaling ?(json_path = "BENCH_shard.json") ~quick () =
  let sizes = if quick then [ 1 lsl 10; 1 lsl 12 ] else [ 1 lsl 14; 1 lsl 17; 1 lsl 20 ] in
  let domain_counts = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let d = 8 in
  Printf.printf
    "\n=== Strong scaling: sharded engine (rotor-router, d=%d, host cores=%d) ===\n"
    d
    (Domain.recommended_domain_count ());
  Printf.printf "%-10s %-8s %-8s %12s %14s %10s\n" "n" "domains" "steps" "wall (s)"
    "steps/sec" "speedup";
  let rows = ref [] in
  List.iter
    (fun n ->
      let g = Graphs.Gen.random_regular (Prng.Splitmix.create 11) ~n ~d in
      let init = Core.Loads.point_mass ~n ~total:(16 * n) in
      let steps = max 4 ((1 lsl 22) / n) in
      let base_rate = ref nan in
      List.iter
        (fun domains ->
          let t0 = Unix.gettimeofday () in
          let result =
            Shard.Shard_engine.run ~strategy:Shard.Partition.Bfs_blocks
              ~shards:domains ~graph:g
              ~make_balancer:(fun () -> Core.Rotor_router.make g ~self_loops:d)
              ~init ~steps ()
          in
          let elapsed = Unix.gettimeofday () -. t0 in
          assert (result.Core.Engine.steps_run = steps);
          let rate = float_of_int steps /. elapsed in
          if domains = 1 then base_rate := rate;
          let speedup = rate /. !base_rate in
          Printf.printf "%-10d %-8d %-8d %12.3f %14.1f %9.2fx\n" n domains steps
            elapsed rate speedup;
          rows := (n, domains, steps, elapsed, rate, speedup) :: !rows)
        domain_counts)
    sizes;
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n  \"bench\": \"shard-strong-scaling\",\n  \"algo\": \"rotor-router\",\n\
    \  \"degree\": %d,\n  \"partition\": \"bfs-blocks\",\n  \"host_cores\": %d,\n\
    \  \"note\": \"speedup_vs_1 is bounded above by host_cores\",\n\
    \  \"results\": [\n"
    d
    (Domain.recommended_domain_count ());
  let rows = List.rev !rows in
  List.iteri
    (fun i (n, domains, steps, elapsed, rate, speedup) ->
      Printf.fprintf oc
        "    {\"n\": %d, \"domains\": %d, \"steps\": %d, \"seconds\": %.4f, \
         \"steps_per_sec\": %.2f, \"speedup_vs_1\": %.3f}%s\n"
        n domains steps elapsed rate speedup
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "strong-scaling results written to %s\n" json_path

(* Fault-recovery section: the Faultsweep scenarios (crash with state
   wiped/kept, load shock, edge outage) for the stateful rotor-router vs
   the stateless send-floor on ring/torus/hypercube, written to
   BENCH_faults.json.  The recovery tolerance is the Theorem 2.3 band. *)
let run_fault_recovery ?(json_path = "BENCH_faults.json") ~quick () =
  Printf.printf "\n=== Fault recovery: rotor-router vs send-floor (Thm 2.3 band) ===\n";
  let t0 = Unix.gettimeofday () in
  let points = Harness.Faultsweep.sweep ~quick () in
  let elapsed = Unix.gettimeofday () -. t0 in
  Harness.Faultsweep.print_table points;
  (* Per-algorithm mean recovery, counting only points that actually had
     a fault episode and recovered — a sweep where nothing recovered (or
     nothing faulted) reports n/a instead of dividing by zero. *)
  let algos =
    List.sort_uniq compare
      (List.map (fun (p : Harness.Faultsweep.point) -> p.Harness.Faultsweep.algo) points)
  in
  List.iter
    (fun algo ->
      let recovered =
        List.filter_map
          (fun (p : Harness.Faultsweep.point) ->
            if p.Harness.Faultsweep.algo = algo && p.Harness.Faultsweep.episodes > 0
            then p.Harness.Faultsweep.recovery
            else None)
          points
      in
      match recovered with
      | [] -> Printf.printf "mean recovery (%s): n/a (no recovered episodes)\n" algo
      | ks ->
        Printf.printf "mean recovery (%s): %.1f steps over %d points\n" algo
          (float_of_int (List.fold_left ( + ) 0 ks) /. float_of_int (List.length ks))
          (List.length ks))
    algos;
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n  \"bench\": \"fault-recovery\",\n  \"eps\": \"theorem-2.3 band \
     d*min(sqrt(log n/mu), sqrt n)\",\n  \"quick\": %b,\n  \"seconds\": %.3f,\n\
    \  \"results\": [\n"
    quick elapsed;
  let last = List.length points - 1 in
  List.iteri
    (fun i (p : Harness.Faultsweep.point) ->
      Printf.fprintf oc
        "    {\"graph\": %S, \"algo\": %S, \"fault\": %S, \"eps\": %d, \
         \"pre\": %d, \"shock\": %d, \"worst\": %d, \"episodes\": %d, \
         \"recovery_steps\": %s, \"conserved\": %b}%s\n"
        p.Harness.Faultsweep.graph p.Harness.Faultsweep.algo
        p.Harness.Faultsweep.scenario p.Harness.Faultsweep.eps
        p.Harness.Faultsweep.pre p.Harness.Faultsweep.shock
        p.Harness.Faultsweep.worst p.Harness.Faultsweep.episodes
        (match p.Harness.Faultsweep.recovery with
        | Some k -> string_of_int k
        | None -> "null")
        p.Harness.Faultsweep.conserved
        (if i = last then "" else ","))
    points;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "fault-recovery results written to %s\n" json_path

(* Unreliable-network section: the Netsweep degradation grid (drop ×
   delay × backoff for rotor-router / rotor-router* / quasirandom on
   torus, hypercube and a random-regular expander), written to
   BENCH_net.json.  Inflation is relative to the Theorem 2.3 band on a
   reliable network; retx_overhead is retransmissions per first-copy
   message — the traffic cost of the exactly-once guarantee. *)
let run_net_degradation ?(json_path = "BENCH_net.json") ~quick () =
  Printf.printf
    "\n=== Unreliable network: discrepancy inflation vs Thm 2.3 band ===\n";
  let t0 = Unix.gettimeofday () in
  let points = Harness.Netsweep.sweep ~quick () in
  let elapsed = Unix.gettimeofday () -. t0 in
  Harness.Netsweep.print_table points;
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n  \"bench\": \"net-degradation\",\n  \"band\": \"theorem-2.3 band \
     d*min(sqrt(log n/mu), sqrt n)\",\n  \"staleness\": 2,\n  \"quick\": %b,\n\
    \  \"seconds\": %.3f,\n  \"results\": [\n"
    quick elapsed;
  let last = List.length points - 1 in
  List.iteri
    (fun i (p : Harness.Netsweep.point) ->
      Printf.fprintf oc
        "    {\"graph\": %S, \"algo\": %S, \"drop\": %g, \"delay\": %d, \
         \"backoff\": %S, \"band\": %d, \"final\": %d, \"inflation\": %.4f, \
         \"retx_overhead\": %.4f, \"degraded_rounds\": %d, \"drain_rounds\": %d, \
         \"drained\": %b, \"conserved\": %b}%s\n"
        p.Harness.Netsweep.graph p.Harness.Netsweep.algo p.Harness.Netsweep.drop
        p.Harness.Netsweep.delay p.Harness.Netsweep.backoff
        p.Harness.Netsweep.band p.Harness.Netsweep.final
        p.Harness.Netsweep.inflation p.Harness.Netsweep.retx_overhead
        p.Harness.Netsweep.degraded_rounds p.Harness.Netsweep.drain_rounds
        p.Harness.Netsweep.drained p.Harness.Netsweep.conserved
        (if i = last then "" else ","))
    points;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "net-degradation results written to %s\n" json_path

(* Observability-overhead section: rotor-router on torus / hypercube /
   random-regular expander, probes off vs on (snapshot cadence 16),
   best-of-3 wall clock each way, written to BENCH_obs.json.  Probes
   must be free in both senses: the final load vectors are asserted
   bit-identical, and the wall-clock overhead must stay under 5%. *)
let obs_budget_pct = 5.0

let run_obs_overhead ?(json_path = "BENCH_obs.json") ~quick () =
  let cells =
    if quick then
      [
        ("torus-16x16", Graphs.Gen.torus [ 16; 16 ]);
        ("hypercube-8", Graphs.Gen.hypercube 8);
        ( "random-8reg-1024",
          Graphs.Gen.random_regular (Prng.Splitmix.create 21) ~n:1024 ~d:8 );
      ]
    else
      [
        ("torus-64x64", Graphs.Gen.torus [ 64; 64 ]);
        ("hypercube-12", Graphs.Gen.hypercube 12);
        ( "random-8reg-4096",
          Graphs.Gen.random_regular (Prng.Splitmix.create 21) ~n:4096 ~d:8 );
      ]
  in
  Printf.printf
    "\n=== Observability overhead: probes off vs on (rotor-router, every=16) ===\n";
  Printf.printf "%-20s %-8s %-8s %10s %10s %10s\n" "graph" "n" "steps" "off (s)"
    "on (s)" "overhead";
  let rows = ref [] in
  List.iter
    (fun (label, g) ->
      let n = Graphs.Graph.n g in
      let d = Graphs.Graph.degree g in
      let init = Core.Loads.point_mass ~n ~total:(16 * n) in
      let steps = max 64 ((if quick then 1 lsl 20 else 1 lsl 23) / n) in
      let once () =
        let balancer = Core.Rotor_router.make g ~self_loops:d in
        let t0 = Unix.gettimeofday () in
        let r = Core.Engine.run ~graph:g ~balancer ~init ~steps () in
        (Unix.gettimeofday () -. t0, r.Core.Engine.final_loads)
      in
      (* Paired measurement: each rep times an off run immediately
         followed by an on run, so machine drift hits both sides alike;
         the overhead is the median of the per-rep on/off ratios, which
         shrugs off the occasional rep a GC or scheduler blip inflates. *)
      let reps = 7 in
      let ratios = ref [] in
      let off_s = ref infinity and on_s = ref infinity in
      let off_loads = ref [||] and on_loads = ref [||] in
      for rep = 0 to reps do
        Obs.Probe.disable ();
        let t_off, l_off = once () in
        Obs.Probe.enable ~every:16 ();
        let t_on, l_on = once () in
        if rep > 0 then begin
          (* rep 0 is warmup: first touches of the graph and balancer
             arrays go through cold caches. *)
          ratios := (t_on /. t_off) :: !ratios;
          if t_off < !off_s then off_s := t_off;
          if t_on < !on_s then on_s := t_on;
          off_loads := l_off;
          on_loads := l_on
        end
      done;
      Obs.Probe.disable ();
      let median =
        let a = Array.of_list !ratios in
        Array.sort Float.compare a;
        a.(Array.length a / 2)
      in
      let off_s = !off_s and on_s = !on_s in
      let off_loads = !off_loads and on_loads = !on_loads in
      if off_loads <> on_loads then
        failwith
          (Printf.sprintf
             "obs-overhead: %s: probes changed the result (loads differ)" label);
      let overhead = (median -. 1.0) *. 100.0 in
      Printf.printf "%-20s %-8d %-8d %10.4f %10.4f %9.2f%%\n" label n steps off_s
        on_s overhead;
      rows := (label, n, d, steps, off_s, on_s, overhead) :: !rows)
    cells;
  let rows = List.rev !rows in
  let max_overhead =
    List.fold_left (fun a (_, _, _, _, _, _, o) -> Float.max a o) neg_infinity rows
  in
  let within = max_overhead < obs_budget_pct in
  Printf.printf "max overhead: %.2f%% (budget %.0f%%) — %s\n" max_overhead
    obs_budget_pct
    (if within then "within budget" else "OVER BUDGET");
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n  \"bench\": \"obs-overhead\",\n  \"algo\": \"rotor-router\",\n\
    \  \"every\": 16,\n  \"budget_pct\": %.1f,\n  \"quick\": %b,\n\
    \  \"results\": [\n"
    obs_budget_pct quick;
  let last = List.length rows - 1 in
  List.iteri
    (fun i (label, n, d, steps, off_s, on_s, overhead) ->
      Printf.fprintf oc
        "    {\"graph\": %S, \"n\": %d, \"d\": %d, \"steps\": %d, \
         \"off_seconds\": %.4f, \"on_seconds\": %.4f, \"overhead_pct\": %.2f, \
         \"bit_identical\": true}%s\n"
        label n d steps off_s on_s overhead
        (if i = last then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n  \"max_overhead_pct\": %.2f,\n  \"within_budget\": %b\n}\n"
    max_overhead within;
  close_out oc;
  Printf.printf "obs-overhead results written to %s\n" json_path;
  if not within then exit 1

(* Open-system workload section: the Loadsweep λ-grid (Poisson arrivals
   vs per-node service rate µ) for rotor-router and send-round on torus
   and hypercube, written to BENCH_workload.json together with the three
   stability-shape verdicts E17 asserts: bounded-and-conserved below
   capacity, λ-monotone steady band, divergence detected above. *)
let run_workload_sweep ?(json_path = "BENCH_workload.json") ~quick () =
  Printf.printf
    "\n=== Open-system workload: steady-state band vs arrival rate ===\n";
  let t0 = Unix.gettimeofday () in
  let points = Harness.Loadsweep.sweep ~quick () in
  let elapsed = Unix.gettimeofday () -. t0 in
  Harness.Loadsweep.print_table points;
  let stable = Harness.Loadsweep.stable_below_capacity points in
  let diverged = Harness.Loadsweep.divergence_detected points in
  let monotone = Harness.Loadsweep.monotone_in_lambda points in
  Printf.printf
    "below capacity bounded: %b; lambda-monotone: %b; above capacity diverged: %b\n"
    stable monotone diverged;
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n  \"bench\": \"workload-stability\",\n  \"model\": \"poisson(lambda) \
     arrivals vs per-node service rate mu\",\n  \"quick\": %b,\n\
    \  \"seconds\": %.3f,\n  \"results\": [\n"
    quick elapsed;
  let last = List.length points - 1 in
  List.iteri
    (fun i (p : Harness.Loadsweep.point) ->
      Printf.fprintf oc
        "    {\"graph\": %S, \"algo\": %S, \"ratio\": %.2f, \"lambda\": %.1f, \
         \"mu\": %d, \"band\": %d, \"steady_mean\": %.2f, \"steady_p95\": %.2f, \
         \"steady_p99\": %.2f, \"inflight_mean\": %.1f, \"overload_p99\": %.2f, \
         \"throughput\": %.1f, \"diverged\": %b, \"conserved\": %b}%s\n"
        p.Harness.Loadsweep.graph p.Harness.Loadsweep.algo
        p.Harness.Loadsweep.ratio p.Harness.Loadsweep.lambda
        p.Harness.Loadsweep.mu p.Harness.Loadsweep.band
        p.Harness.Loadsweep.steady_mean p.Harness.Loadsweep.steady_p95
        p.Harness.Loadsweep.steady_p99 p.Harness.Loadsweep.inflight_mean
        p.Harness.Loadsweep.overload_p99 p.Harness.Loadsweep.throughput
        p.Harness.Loadsweep.diverged p.Harness.Loadsweep.conserved
        (if i = last then "" else ","))
    points;
  Printf.fprintf oc
    "  ],\n  \"below_capacity_bounded\": %b,\n  \"lambda_monotone\": %b,\n\
    \  \"above_capacity_diverged\": %b\n}\n"
    stable monotone diverged;
  close_out oc;
  Printf.printf "workload-stability results written to %s\n" json_path;
  if not (stable && diverged && monotone) then exit 1

(* Scenario-language section: generator + checker + compiler + double
   execution (the replay-determinism probe) over a seeded stream of
   well-typed scenarios, written to BENCH_scenario.json.  This is the
   same machinery as `lb_scn fuzz` (E18), measured as scenarios/sec and
   gated on the universal invariants. *)
let run_scenario_fuzz ?(json_path = "BENCH_scenario.json") ~quick () =
  Printf.printf "\n=== Scenario language: fuzz throughput + invariants ===\n";
  let count = if quick then 300 else 2000 in
  let seed = 42 in
  let kinds = Hashtbl.create 8 in
  let violations = ref 0 in
  let t0 = Unix.gettimeofday () in
  for index = 0 to count - 1 do
    let sc = Scenario.Gen.scenario ~seed ~index in
    match Scenario.Check.scenario ~at:Scenario.Ast.no_pos sc with
    | Error _ -> incr violations
    | Ok t -> (
      match (Scenario.Compile.execute t, Scenario.Compile.execute t) with
      | Ok a, Ok b ->
        let k = Scenario.Compile.kind t in
        Hashtbl.replace kinds k (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k));
        if
          not
            (a.Scenario.Compile.conserved && a.Scenario.Compile.drained
           && a.Scenario.Compile.final_loads = b.Scenario.Compile.final_loads)
        then incr violations
      | Error _, _ | _, Error _ -> incr violations)
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let kind_list =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds [])
  in
  Printf.printf "%d scenarios (x2 executions) in %.3f s — %.0f scenarios/sec\n" count
    elapsed
    (float_of_int count /. elapsed);
  List.iter (fun (k, v) -> Printf.printf "  %-20s %d\n" k v) kind_list;
  Printf.printf "invariant violations: %d\n" !violations;
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n  \"bench\": \"scenario-fuzz\",\n  \"invariants\": \"conservation, drain, \
     replay bit-determinism\",\n  \"quick\": %b,\n  \"seed\": %d,\n\
    \  \"scenarios\": %d,\n  \"seconds\": %.3f,\n  \"scenarios_per_sec\": %.1f,\n\
    \  \"kinds\": {%s},\n  \"violations\": %d\n}\n"
    quick seed count elapsed
    (float_of_int count /. elapsed)
    (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) kind_list))
    !violations;
  close_out oc;
  Printf.printf "scenario-fuzz results written to %s\n" json_path;
  if !violations > 0 then exit 1

(* Distributed-runtime section: real forked lb_node clusters over
   loopback sockets (lib/dist), at 2/4/8 shards.  Each shard count runs
   three ways — lossless (steady-state round throughput), chaos (5%
   frame drop plus a kill -9 of shard 1 a third of the way in), and
   coord-crash (the COORDINATOR is SIGKILLed a third of the way in and
   its replacement recovers by WAL replay).  The reported stall is the
   longest inter-commit gap, which brackets detection + abort + respawn
   + re-admission (chaos) or WAL replay + re-hello + resume
   (coord-crash; measured from the WAL itself, the one observer that
   survives the coordinator).  The coordinator's exact token
   conservation check gates every run; written to BENCH_dist.json. *)
let run_dist_cluster ?(json_path = "BENCH_dist.json") ~quick () =
  Printf.printf
    "\n=== Distributed runtime: forked shard processes over loopback ===\n";
  let built =
    match
      Dist.Setup.build
        { Dist.Setup.graph = "hypercube:5"; init = "point:8192";
          algo = "rotor-router"; seed = 1; self_loops = None }
    with
    | Ok b -> b
    | Error e -> failwith ("dist bench: " ^ e)
  in
  let rounds = if quick then 40 else 150 in
  let shard_counts = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let kill_round = rounds / 3 in
  let mkdtemp () =
    let base = Filename.get_temp_dir_name () in
    let rec go k =
      let d = Printf.sprintf "%s/bench_dist.%d.%d" base (Unix.getpid ()) k in
      match Unix.mkdir d 0o700 with
      | () -> d
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
    in
    go 0
  in
  let rmdir_r d =
    Array.iter
      (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
      (Sys.readdir d);
    try Unix.rmdir d with Unix.Unix_error _ -> ()
  in
  Dist.Launch.ignore_sigpipe ();
  let max_gap times =
    (* newest-first list of commit timestamps *)
    let rec gaps acc = function
      | a :: (b :: _ as rest) -> gaps (Float.max acc (a -. b)) rest
      | _ -> acc
    in
    gaps 0.0 times
  in
  let node_cfg_for ~shards ~ckpt_dir ~loss ~port shard =
    { Dist.Node.shard; shards; port; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init;
      make_balancer = built.Dist.Setup.make_balancer; rounds; ckpt_dir;
      loss; protocol = Net.Protocol.default_config; tick = 0.01;
      hb_interval = 0.03; metrics_port = None; reconnects = 8;
      graceful_term = false; injection = Dist.Node.No_injection;
      verbose = false }
  in
  (* lossless / chaos: coordinator in this process (Launch supervisor);
     the commit-hook clock feeds the stall metric directly. *)
  let run_launch ~shards ~chaos =
    let ckpt_dir = mkdtemp () in
    let listen_fd, port = Dist.Transport.listen_loopback () in
    let loss =
      if chaos then
        { Dist.Loss.drop = 0.05; delay_prob = 0.; delay_max = 0.; seed = 5;
          partitions = [] }
      else Dist.Loss.none
    in
    let node_cfg = node_cfg_for ~shards ~ckpt_dir ~loss ~port in
    let sup = Dist.Launch.create ~listen_fd ~node_cfg ~shards ~verbose:false in
    Dist.Launch.spawn_all sup;
    let commit_times = ref [] in
    let on_commit round =
      commit_times := Unix.gettimeofday () :: !commit_times;
      if chaos && round = kill_round then Dist.Launch.kill sup 1
    in
    let cfg =
      { Dist.Coord.shards; rounds; graph = built.Dist.Setup.graph;
        init = built.Dist.Setup.init; balancer_name = built.Dist.Setup.name;
        listen_fd; suspect_timeout = 0.25; band = None; out_path = None;
        metrics_port = None;
        respawn =
          Some (fun s -> Dist.Launch.reap sup; Dist.Launch.spawn sup s);
        on_commit = Some on_commit; deadline = Some 120.; wal = None;
        graceful_term = false; verbose = false }
    in
    let t0 = Unix.gettimeofday () in
    let code =
      Fun.protect
        ~finally:(fun () -> Dist.Launch.shutdown sup)
        (fun () -> Dist.Coord.main cfg)
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    rmdir_r ckpt_dir;
    (code, elapsed, max_gap !commit_times)
  in
  (* coord-crash: everything (coordinator included) forked under Super;
     the coordinator is SIGKILLed at kill_round and its replacement
     replays the WAL.  The stall comes from the WAL's own Commit
     timestamps — the recovery gap is the largest one. *)
  let run_coord_crash ~shards =
    let ckpt_dir = mkdtemp () in
    let wal_path = Filename.concat ckpt_dir "coord.wal" in
    let coord_cfg ~listen_fd =
      { Dist.Coord.shards; rounds; graph = built.Dist.Setup.graph;
        init = built.Dist.Setup.init; balancer_name = built.Dist.Setup.name;
        listen_fd; suspect_timeout = 0.25; band = None; out_path = None;
        metrics_port = None; respawn = None; on_commit = None;
        deadline = Some 120.; wal = Some wal_path; graceful_term = false;
        verbose = false }
    in
    let t0 = Unix.gettimeofday () in
    let code =
      Dist.Super.run
        { Dist.Super.shards;
          node_cfg =
            (fun ~port shard ->
              node_cfg_for ~shards ~ckpt_dir ~loss:Dist.Loss.none ~port shard);
          coord_cfg; wal_path;
          faults = [ Dist.Super.Kill_coord { round = kill_round } ];
          deadline = Some 150.; coord_respawns = 1; node_respawns = 3;
          verbose = false }
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let stall =
      match Dist.Wal.commit_times ~path:wal_path with
      | Ok times -> max_gap (List.rev times) (* oldest first -> newest first *)
      | Error _ -> 0.0
    in
    rmdir_r ckpt_dir;
    (code, elapsed, stall)
  in
  let run_once ~shards ~mode =
    match mode with
    | `Lossless -> run_launch ~shards ~chaos:false
    | `Chaos -> run_launch ~shards ~chaos:true
    | `Coord_crash -> run_coord_crash ~shards
  in
  Printf.printf "%-8s %-12s %8s %12s %14s %6s\n" "shards" "mode" "rounds"
    "rounds/sec" "max stall (s)" "ok";
  let mode_name = function
    | `Lossless -> "lossless"
    | `Chaos -> "chaos"
    | `Coord_crash -> "coord-crash"
  in
  let rows = ref [] in
  let all_ok = ref true in
  List.iter
    (fun shards ->
      List.iter
        (fun mode ->
          let code, elapsed, stall = run_once ~shards ~mode in
          let ok = code = 0 in
          if not ok then all_ok := false;
          let rps = float rounds /. elapsed in
          Printf.printf "%-8d %-12s %8d %12.1f %14.3f %6b\n" shards
            (mode_name mode) rounds rps stall ok;
          rows := (shards, mode, elapsed, rps, stall, code) :: !rows)
        [ `Lossless; `Chaos; `Coord_crash ])
    shard_counts;
  let rows = List.rev !rows in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n  \"bench\": \"dist-cluster\",\n  \"graph\": \"hypercube:5\",\n\
    \  \"algo\": \"%s\",\n  \"chaos\": \"drop 0.05 + kill -9 shard 1 at \
     round %d\",\n  \"coord_crash\": \"kill -9 coordinator at round %d, \
     WAL-replay restart\",\n  \"rounds\": %d,\n  \"quick\": %b,\n\
    \  \"results\": [\n"
    built.Dist.Setup.name kill_round kill_round rounds quick;
  let last = List.length rows - 1 in
  List.iteri
    (fun i (shards, mode, elapsed, rps, stall, code) ->
      Printf.fprintf oc
        "    {\"shards\": %d, \"mode\": %S, \"seconds\": %.3f, \
         \"rounds_per_sec\": %.1f, \"max_commit_stall_s\": %.3f, \
         \"exit_code\": %d, \"conserved\": %b}%s\n"
        shards (mode_name mode) elapsed rps stall code (code = 0)
        (if i = last then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"all_conserved\": %b\n}\n" !all_ok;
  close_out oc;
  Printf.printf "dist-cluster results written to %s\n" json_path;
  if not !all_ok then exit 1

let run_microbenchmarks () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "\n=== Microbenchmarks: engine step throughput (Bechamel) ===\n";
  Printf.printf "%-32s %14s %10s\n" "benchmark" "time/run" "r²";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
          in
          let pretty =
            if time_ns > 1e6 then Printf.sprintf "%.3f ms" (time_ns /. 1e6)
            else if time_ns > 1e3 then Printf.sprintf "%.3f µs" (time_ns /. 1e3)
            else Printf.sprintf "%.1f ns" time_ns
          in
          Printf.printf "%-32s %14s %10.4f\n" name pretty r2)
        analyzed)
    (List.map (fun t -> Test.make_grouped ~name:"" [ t ]) (microbench_tests ()))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let csv_path =
    let rec find = function
      | "--csv" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let rec drop_csv = function
    | "--csv" :: _ :: rest -> drop_csv rest
    | x :: rest -> x :: drop_csv rest
    | [] -> []
  in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) (drop_csv args)
  in
  let want_micro = selected = [] || List.mem "micro" selected in
  let want_shard = selected = [] || List.mem "shard" selected in
  let want_faults = selected = [] || List.mem "faults" selected in
  let want_net = selected = [] || List.mem "net" selected in
  let want_obs = selected = [] || List.mem "obs" selected in
  let want_workload = selected = [] || List.mem "workload" selected in
  let want_scenario = selected = [] || List.mem "scenario" selected in
  let want_dist = selected = [] || List.mem "dist" selected in
  let experiment_ids =
    match
      List.filter
        (fun a ->
          let a = String.lowercase_ascii a in
          a <> "micro" && a <> "shard" && a <> "faults" && a <> "net" && a <> "obs"
          && a <> "workload" && a <> "scenario" && a <> "dist")
        selected
    with
    | [] when selected = [] -> List.map (fun e -> e.Harness.Suite.id) Harness.Suite.all
    | ids -> ids
  in
  Printf.printf
    "Load-balancing benchmark harness — reproduction of Berenbrink et al.,\n\
     \"Improved Analysis of Deterministic Load-Balancing Schemes\" (PODC 2015).\n";
  if quick then Printf.printf "(quick mode: reduced sizes)\n";
  (* dist first: it forks shard processes, and OCaml 5 forbids
     Unix.fork once anything else (shard scaling, suite experiments
     with --shards) has spawned domains. *)
  if want_dist then run_dist_cluster ~quick ();
  let csv_rows = ref [] in
  List.iter
    (fun id ->
      match Harness.Suite.run_by_id ~quick id with
      | Ok rows -> csv_rows := !csv_rows @ rows
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2)
    experiment_ids;
  (match csv_path with
  | Some path ->
    Harness.Csv.write ~path
      ~header:[ "experiment"; "c1"; "c2"; "c3"; "c4"; "c5"; "c6"; "c7"; "c8"; "c9" ]
      ~rows:
        (List.map
           (fun r ->
             let pad = List.init (max 0 (10 - List.length r)) (fun _ -> "") in
             let r = r @ pad in
             List.filteri (fun i _ -> i < 10) r)
           !csv_rows);
    Printf.printf "\nCSV written to %s\n" path
  | None -> ());
  if want_shard then run_shard_scaling ~quick ();
  if want_faults then run_fault_recovery ~quick ();
  if want_net then run_net_degradation ~quick ();
  if want_obs then run_obs_overhead ~quick ();
  if want_workload then run_workload_sweep ~quick ();
  if want_scenario then run_scenario_fuzz ~quick ();
  if want_micro then run_microbenchmarks ()
